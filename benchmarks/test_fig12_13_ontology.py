"""Figures 12-13 — ontology schema and case-study instances."""

from repro.experiments import fig12_13_ontology

from benchmarks.conftest import run_once


def test_fig12_13_ontology(benchmark, show):
    table = run_once(benchmark, fig12_13_ontology)
    show(table)
    rows = dict(zip(table.column("Property"), table.column("Value")))
    assert rows["schema classes"] == 10           # Figure 12
    assert rows["Activity instances"] == 13       # A1..A13
    assert rows["Transition instances"] == 15     # TR1..TR15
    assert rows["Data instances"] == 12           # D1..D12
    assert rows["Service instances"] == 4         # POD, P3DR, POR, PSF
