"""Figure 1 — the core/end-user service architecture census."""

from repro.experiments import fig1_architecture

from benchmarks.conftest import run_once

CORE_TYPES = (
    "information", "brokerage", "matchmaking", "monitoring", "ontology",
    "storage", "authentication", "scheduling", "simulation", "planning",
    "coordination",
)


def test_fig01_architecture(benchmark, show):
    table = run_once(benchmark, fig1_architecture)
    show(table)
    rows = dict(zip(table.column("Kind"), table.column("Count")))
    # Exactly one of each Figure-1 core service...
    for kind in CORE_TYPES:
        assert rows[kind] == 1, kind
    # ...plus application containers hosting end-user services and the UI.
    assert rows["application-container"] == 4
    assert rows["end-user"] >= 4
    assert rows["user-interface"] == 1
