"""Micro-benchmarks: throughput of the hot kernels.

These are the performance-regression guards (no paper counterpart): the
parser, the structured-recovery algorithm, symbolic plan simulation, GP
generations, the DES engine and the reconstruction kernels.
"""

import numpy as np

from repro.plan import process_to_tree, random_tree, tree_to_process
from repro.planner import EvaluationEngine, GPConfig, GPPlanner, PlanEvaluator
from repro.process import parse_process, unparse
from repro.sim import Engine
from repro.virolab import (
    make_dataset,
    make_phantom,
    p3dr,
    planning_problem,
    plan_tree,
    pod,
    process_description,
)

FIG10_TEXT = unparse(
    __import__("repro.process", fromlist=["process_to_ast"]).process_to_ast(
        process_description()
    )
)


def test_bench_parse_fig10(benchmark):
    ast = benchmark(parse_process, FIG10_TEXT)
    assert len(ast.activity_names()) == 7


def test_bench_structure_recovery(benchmark):
    pd = process_description()
    tree = benchmark(process_to_tree, pd)
    assert tree.size == 10


def test_bench_tree_elaboration(benchmark):
    tree = plan_tree()
    pd = benchmark(tree_to_process, tree)
    assert len(pd.transitions) == 15


def test_bench_plan_simulation(benchmark):
    problem = planning_problem()
    evaluator = PlanEvaluator(problem)
    tree = plan_tree()

    def evaluate():
        evaluator.clear_cache()
        return evaluator(tree)

    fitness = benchmark(evaluate)
    assert fitness.validity == 1.0


def _bench_population(count=60, seed=0):
    problem = planning_problem()
    rng = np.random.default_rng(seed)
    activities = list(problem.activity_names)
    trees = [
        random_tree(activities, max_size=40, rng=rng, max_branch=4)
        for _ in range(count)
    ]
    return problem, trees


def test_bench_evaluate_many_serial(benchmark):
    """Population-60 batch through the engine's in-process backend
    (cache cleared per round so every round simulates)."""
    problem, trees = _bench_population()
    engine = EvaluationEngine(problem)

    def run():
        engine.evaluator.clear_cache()
        return engine.evaluate_many(trees)

    fits = benchmark(run)
    assert len(fits) == 60


def test_bench_evaluate_many_parallel(benchmark):
    """Same batch through the process-pool backend (2 workers, warm pool).

    On a single-core host this measures dispatch overhead rather than a
    speedup; compare against the serial benchmark and BENCH_planner.json.
    """
    problem, trees = _bench_population()
    with EvaluationEngine(problem, workers=2, worker_cache_size=0) as engine:
        engine.evaluate_many(trees[:2])  # warm up the pool outside timing

        def run():
            engine.evaluator.clear_cache()
            return engine.evaluate_many(trees)

        fits = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(fits) == 60
    assert fits == EvaluationEngine(problem).evaluate_many(trees)


def test_bench_evaluate_many_dedup(benchmark):
    """Population-60 batch with only 12 unique structures: measures how
    much in-batch dedup shaves off vs. the all-unique serial benchmark."""
    problem, unique = _bench_population(count=12)
    trees = [unique[i % 12] for i in range(60)]
    engine = EvaluationEngine(problem)

    def run():
        engine.evaluator.clear_cache()
        return engine.evaluate_many(trees)

    fits = benchmark(run)
    assert len(fits) == 60
    assert engine.evaluations % 12 == 0


def test_bench_random_tree_generation(benchmark):
    rng = np.random.default_rng(0)
    activities = list(planning_problem().activity_names)
    tree = benchmark(random_tree, activities, None, 40, rng)
    assert 1 <= tree.size <= 40


def test_bench_gp_generation(benchmark):
    """One full GP generation (population 60) on the case-study problem."""
    problem = planning_problem()
    cfg = GPConfig(population_size=60, generations=1)

    def one_run():
        return GPPlanner(cfg, rng=0).plan(problem)

    result = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert result.best_fitness.overall > 0


def test_bench_des_engine_events(benchmark):
    """Throughput of the event loop: 10k chained timer events."""

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_bench_projection_matching(benchmark):
    phantom = make_phantom(size=24, seed=0)
    dataset = make_dataset(phantom, count=16, noise_sigma=0.0, seed=1)
    orientations, scores = benchmark.pedantic(
        pod, args=(dataset.images, phantom), kwargs={"directions": 64, "inplane": 8},
        rounds=2, iterations=1,
    )
    assert scores.mean() > 0.8


def test_bench_reconstruction(benchmark):
    phantom = make_phantom(size=24, seed=0)
    dataset = make_dataset(phantom, count=16, noise_sigma=0.0, seed=1)
    model = benchmark.pedantic(
        p3dr, args=(dataset.images, dataset.true_rotations),
        rounds=2, iterations=1,
    )
    assert model.shape == (24, 24, 24)
