"""Table 2 — the Section-5 experiment: 10 GP runs at Table-1 settings.

Paper values: average fitness 0.928, validity fitness 1.0, goal fitness
1.0, average solution size 9.7.  Shape targets (DESIGN.md): the planner
must *consistently* find valid, goal-reaching plans (validity/goal ~1.0),
with compact solutions (size ~10) and overall fitness ~0.92-0.96.
"""

from repro.experiments import table2

from benchmarks.conftest import run_once


def test_table2_planning(benchmark, show):
    result = run_once(benchmark, lambda: table2(runs=10, base_seed=0))
    show(result.table)

    # Goal fitness: every run must plan to the case's result set.
    assert result.avg_goal == 1.0
    # Validity: the paper claims 1.0 in all ten runs; we tolerate one
    # near-miss run but the average must stay >= 0.98.
    assert result.avg_validity >= 0.98
    assert result.solved_runs >= 9
    # Compact plans, matching "an average size of less than ten nodes".
    assert 4.0 <= result.avg_size <= 13.0
    # Overall fitness in the paper's band.
    assert 0.90 <= result.avg_fitness <= 0.97
