"""Ablation A4 — GP vs random search, hill climbing, forward search.

Run at the paper's full Table-1 budget: the comparison is budget-sensitive
(at strongly reduced budgets random search is competitive with GP — a
negative result recorded in EXPERIMENTS.md), and the claim being tested is
the paper's own configuration.
"""

from repro.experiments import baseline_comparison
from repro.planner import GPConfig
from repro.virolab import planning_problem
from repro.workloads import chain_problem, distractor_problem

from benchmarks.conftest import run_once

CFG = GPConfig()  # full Table-1 settings


def test_ablation_baselines(benchmark, show):
    table = run_once(
        benchmark,
        lambda: baseline_comparison(
            problems=(planning_problem(), chain_problem(6), distractor_problem(4, 6)),
            seeds=range(3),
            config=CFG,
        ),
    )
    show(table)
    by_key = {
        (problem, planner): (solve, fitness)
        for problem, planner, solve, fitness, budget in table.rows
    }
    for problem in ("3DSD", "chain-6", "distractor-4x6"):
        gp_solve, gp_fit = by_key[(problem, "GP (paper)")]
        rnd_solve, rnd_fit = by_key[(problem, "random search")]
        hc_solve, hc_fit = by_key[(problem, "hill climbing")]
        # Shape target: at the paper's budget, GP wins against both
        # stochastic baselines on every problem family.
        assert gp_fit >= rnd_fit - 1e-9, problem
        assert gp_fit >= hc_fit - 1e-9, problem
    # GP reliably solves the case-study problem at this budget (Table 2).
    assert by_key[("3DSD", "GP (paper)")][0] >= 2 / 3
    # Classical forward search is optimal on these fully-observable
    # symbolic problems — the honest comparison the paper omits.
    for problem in ("3DSD", "chain-6", "distractor-4x6"):
        fwd_solve, _ = by_key[(problem, "forward search")]
        assert fwd_solve == 1.0
