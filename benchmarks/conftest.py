"""Benchmark-suite helpers.

Every benchmark regenerates one paper table/figure (or an ablation) with
pytest-benchmark timing the driver, prints the regenerated rows, and
asserts the *shape* targets from DESIGN.md — who wins, what is perfect,
roughly how large — never the authors' absolute numbers.

Heavy drivers run once (``pedantic`` with one round); micro-benchmarks use
the default calibrated timing loop.
"""

import pytest


def run_once(benchmark, fn):
    """Time *fn* exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print a Table under a separating blank line (visible with -s and in
    captured output on failure)."""

    def _show(table):
        print()
        print(table.render())
        return table

    return _show
