"""Table 1 — parameter settings (asserts code defaults == paper values)."""

from repro.experiments import table1
from repro.planner import GPConfig

from benchmarks.conftest import run_once


def test_table1_config(benchmark, show):
    table = run_once(benchmark, table1)
    show(table)
    rows = dict(zip(table.column("Parameters"), table.column("Values")))
    assert rows == {
        "Population Size": 200,
        "Number of Generation": 20,
        "Crossover Rate": 0.7,
        "Mutation Rate": 0.001,
        "Smax": 40,
        "wv": 0.2,
        "wg": 0.5,
    }
    # the implied wr (weights sum to 1)
    assert GPConfig().weights.efficiency == 0.3
