"""Figures 10-11 — the case-study process description and plan tree."""

from repro.experiments import fig10_11_case_study

from benchmarks.conftest import run_once


def test_fig10_11_casestudy(benchmark, show):
    table = run_once(benchmark, fig10_11_case_study)
    show(table)
    rows = dict(zip(table.column("Property"), table.column("Value")))
    # The paper's exact census: 7 end-user + 6 flow-control activities,
    # 15 transitions (TR1..TR15), plan tree of 10 nodes.
    assert rows["end-user activities"] == 7
    assert rows["flow-control activities"] == 6
    assert rows["transitions"] == 15
    assert rows["plan-tree size"] == 10
    assert rows["tree recovered from graph matches Figure 11"] is True
