"""Ablation A3 — population x generations budget."""

from repro.experiments import budget_sweep
from repro.planner import GPConfig

from benchmarks.conftest import run_once


def test_ablation_population(benchmark, show):
    table = run_once(
        benchmark,
        lambda: budget_sweep(
            seeds=range(3),
            settings=((20, 5), (60, 10), (150, 15)),
        ),
    )
    show(table)
    fitness = table.column("avg fitness")
    # More budget never hurts much: the largest setting beats the smallest.
    assert fitness[-1] >= fitness[0] - 0.02
    evals = table.column("avg evals")
    assert evals[-1] > evals[0]
