"""Ablation A1 — fitness-weight sensitivity (wv/wg/wr).

Run at the paper's full Table-1 budget: at reduced budgets the GP does not
converge reliably for any weighting, which would confound the comparison.
"""

from repro.experiments import weight_sweep
from repro.planner import GPConfig

from benchmarks.conftest import run_once

CFG = GPConfig()  # full Table-1 settings


def test_ablation_weights(benchmark, show):
    table = run_once(benchmark, lambda: weight_sweep(seeds=range(3), config=CFG))
    show(table)
    rows = {
        (wv, wg): (solve, size)
        for wv, wg, wr, solve, size, fitness in table.rows
    }
    # The paper's weights must solve reliably at the paper's budget.
    paper_solve, paper_size = rows[(0.2, 0.5)]
    assert paper_solve >= 2 / 3
    # With no efficiency pressure (wr = 0) plans bloat: Eq. 3 is what keeps
    # solutions compact below the hard Smax bound.
    _, bloated_size = rows[(0.5, 0.5)]
    assert bloated_size > paper_size
