"""E2E — the full case study: real reconstruction on the simulated grid.

Regenerates the Section-4 computation exactly as Figure 10 prescribes,
with the real POD / P3DR / POR / PSF numerics running in application
containers and Cons1 steering the Choice/Merge loop.
"""

import numpy as np

from repro.errors import ServiceError
from repro.experiments.harness import Table
from repro.virolab import (
    planning_problem,
    process_description,
    setup_virolab_case,
    virolab_grid,
)

from benchmarks.conftest import run_once


def _enact():
    env, core, fleet = virolab_grid(containers=3)
    case = setup_virolab_case(core.storage, size=24, count=40, seed=0)
    outcome = {}

    def main():
        try:
            reply = yield from core.coordination.call(
                "coordination",
                "execute-task",
                {
                    "process": process_description(),
                    "initial_data": case["initial_data"],
                    "payload_keys": case["payload_keys"],
                    "work": case["work"],
                    "problem": planning_problem(),
                    "task": "3DSD",
                },
            )
            outcome.update(reply)
        except ServiceError as exc:  # pragma: no cover - surfaced by asserts
            outcome["error"] = str(exc)

    env.engine.spawn(main(), "user")
    env.run(max_events=5_000_000)
    return env, core, case, outcome


def test_e2e_enactment(benchmark, show):
    env, core, case, outcome = run_once(benchmark, _enact)
    assert "error" not in outcome, outcome.get("error")

    record = core.coordination.records[0]
    loop_iterations = next(
        int(d.split()[0]) for t, k, d in record.events if k == "loop-done"
    )
    model = core.storage.get(outcome["payload_keys"]["D9"])
    truth_corr = float(
        np.corrcoef(model.ravel(), case["phantom"].ravel())[0, 1]
    )

    table = Table(
        "E2E. Figure-10 enactment with real reconstruction numerics",
        ("Metric", "Value"),
    )
    table.add("status", outcome["status"])
    table.add("activities run", outcome["activities_run"])
    table.add("loop iterations (Cons1)", loop_iterations)
    table.add("final resolution (A)", outcome["data"]["D12"]["Value"])
    table.add("model-truth correlation", truth_corr)
    table.add("simulated makespan (s)", env.engine.now)
    table.add("messages exchanged", env.trace.total_recorded)
    show(table)

    assert outcome["status"] == "completed"
    assert outcome["data"]["D12"]["Value"] <= 8.0  # the case's goal
    assert loop_iterations >= 1
    assert truth_corr > 0.5
    # activity count = 2 + 5 * iterations (POD + P3DR1 + per-loop POR,
    # 3xP3DR, PSF)
    assert outcome["activities_run"] == 2 + 5 * loop_iterations
