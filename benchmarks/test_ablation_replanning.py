"""Ablation A5 — re-planning robustness under container failure injection."""

from repro.experiments import replanning_sweep

from benchmarks.conftest import run_once


def test_ablation_replanning(benchmark, show):
    table = run_once(
        benchmark,
        lambda: replanning_sweep(
            failure_rates=(0.0, 0.2, 0.4), cases=4, containers=3
        ),
    )
    show(table)
    completed = {
        (rate, mode): done
        for rate, mode, done, acts, replans in table.rows
    }
    # No failures -> everything completes either way.
    assert completed[(0.0, "on")] == 1.0
    assert completed[(0.0, "off")] == 1.0
    # Under failures, re-planning completes at least as many cases.
    for rate in (0.2, 0.4):
        assert completed[(rate, "on")] >= completed[(rate, "off")]
