"""Figures 8-9 — crossover and mutation on plan trees."""

from repro.experiments import fig8_crossover, fig9_mutation

from benchmarks.conftest import run_once


def test_fig08_crossover(benchmark, show):
    table = run_once(benchmark, fig8_crossover)
    show(table)
    sizes = dict(zip(table.column("Role"), table.column("Size")))
    assert (
        sizes["parent a"] + sizes["parent b"]
        == sizes["child a"] + sizes["child b"]
    )
    trees = dict(zip(table.column("Role"), table.column("Tree")))
    assert trees["child a"] != trees["parent a"]


def test_fig09_mutation(benchmark, show):
    table = run_once(benchmark, fig9_mutation)
    show(table)
    trees = dict(zip(table.column("Role"), table.column("Tree")))
    assert trees["mutated"] != trees["original"]
    sizes = dict(zip(table.column("Role"), table.column("Size")))
    assert sizes["mutated"] <= 40
