"""Ablations A6-A8 — the Section-1/2 extension subsystems."""

import pytest

from repro.experiments import checkpoint_value, transfer_tradeoff

from benchmarks.conftest import run_once


def test_ablation_transfer_tradeoff(benchmark, show):
    table = run_once(benchmark, transfer_tradeoff)
    show(table)
    winners = dict(zip(table.column("bandwidth (Mb/s)"), table.column("winner")))
    # Shape: compression wins on slow links, plain wins on fast ones, with
    # a single crossover in between.
    assert winners[1.0] == "compressed"
    assert winners[10000.0] == "plain"
    sequence = [w for _, w in sorted(winners.items())]
    flips = sum(1 for a, b in zip(sequence, sequence[1:]) if a != b)
    assert flips == 1


def test_ablation_checkpoint_value(benchmark, show):
    table = run_once(benchmark, lambda: checkpoint_value(seeds=range(3)))
    show(table)
    rows = {
        rate: (plain, ckpt, speedup)
        for rate, plain, ckpt, speedup in table.rows
    }
    # No failures: checkpointing costs only its bookkeeping (< 10%).
    plain0, ckpt0, _ = rows[0.0]
    assert ckpt0 <= plain0 * 1.10
    # Heavy failures: checkpointing wins clearly.
    _, _, speedup_high = rows[0.8]
    assert speedup_high > 1.3


def test_ablation_scalability(benchmark, show):
    from repro.experiments import scalability_sweep

    table = run_once(benchmark, scalability_sweep)
    show(table)
    makespans = dict(zip(table.column("containers"), table.column("makespan (s)")))
    # Monotone improvement up to the workflow's concurrency width (3)...
    assert makespans[1] > makespans[2] > makespans[3]
    # ...then a plateau: the Figure-10 critical path caps the speedup.
    assert abs(makespans[6] - makespans[3]) < 0.05 * makespans[3]
    # The 3-container makespan sits at the theoretical critical path:
    # (POD + P3DR1 + 3*(POR + P3DR + PSF)) / speed = 175s at speed 2.
    assert makespans[3] == pytest.approx(175.0, rel=0.05)
