"""Figure 3 — the eight-step re-planning message flow."""

from repro.experiments import fig3_replanning_protocol

from benchmarks.conftest import run_once


def test_fig03_replanning_protocol(benchmark, show):
    table, trace = run_once(benchmark, fig3_replanning_protocol)
    show(table)
    kinds = [(t[0], t[1], t[3]) for t in trace]

    def index(step):
        assert step in kinds, f"missing protocol step {step}"
        return kinds.index(step)

    # Steps 1-8 of Figure 3, in causal order (steps 4-7 repeat per
    # activity/container; we check first occurrences).
    s1 = index(("coordination", "planning", "replan"))
    s2 = index(("planning", "information", "lookup"))
    s3 = index(("information", "planning", "lookup"))
    s4 = index(("planning", "brokerage", "find-containers"))
    s5 = index(("brokerage", "planning", "find-containers"))
    s6 = index(("planning", "ac1", "can-execute"))
    s7 = index(("ac1", "planning", "can-execute"))
    s8 = index(("planning", "coordination", "replan"))
    assert s1 < s2 < s3 < s4 < s5 < s6 < s7 < s8
    # and the reply is the LAST message of the conversation set
    assert kinds[-1] == ("planning", "coordination", "replan")
