"""Figure 2 — the planning <-> coordination exchange (2 messages)."""

from repro.experiments import fig2_planning_protocol

from benchmarks.conftest import run_once


def test_fig02_planning_protocol(benchmark, show):
    table, trace = run_once(benchmark, fig2_planning_protocol)
    show(table)
    # Exactly the two Figure-2 messages between the two services.
    assert [(t[0], t[1], t[2], t[3]) for t in trace] == [
        ("coordination", "planning", "request", "plan"),
        ("planning", "coordination", "inform", "plan"),
    ]
