"""Record planner-performance numbers to BENCH_planner.json.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_bench.py [--out BENCH_planner.json]

Measures, on the Section-5 case-study problem:

* ``evaluate_many`` on a population-60 batch — serial backend vs. the
  process-pool backend (pool warmed outside timing, worker-side caching
  off so every round simulates);
* the same batch with only 12 unique structures (in-batch dedup);
* a seeded GP run with the shared fitness cache vs. the identical run
  with caching disabled (unique-simulation counts);
* one full Table-1-budget GP generation sequence at population 60.

Each PR can re-run this and diff against the committed JSON to keep a
perf trajectory.  Timings are medians of --rounds repetitions; the host
block records the CPU budget the numbers were taken under (a single-core
host cannot show a parallel win — the dispatch overhead is then the
honest number).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time

import numpy as np

from repro.plan import random_tree
from repro.planner import EvaluationEngine, GPConfig, GPPlanner, PlanEvaluator
from repro.virolab import planning_problem


def _population(problem, count, seed=0):
    rng = np.random.default_rng(seed)
    activities = list(problem.activity_names)
    return [
        random_tree(activities, max_size=40, rng=rng, max_branch=4)
        for _ in range(count)
    ]


def _time(fn, rounds):
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "rounds": rounds,
    }


def bench_evaluate_many(problem, rounds, workers):
    trees = _population(problem, 60)
    out = {}

    serial = EvaluationEngine(problem)

    def serial_run():
        serial.evaluator.clear_cache()
        serial.evaluate_many(trees)

    out["serial_60"] = _time(serial_run, rounds)

    with EvaluationEngine(
        problem, workers=workers, worker_cache_size=0
    ) as engine:
        engine.evaluate_many(trees[:2])  # warm the pool outside timing

        def parallel_run():
            engine.evaluator.clear_cache()
            engine.evaluate_many(trees)

        out[f"parallel_60_workers{workers}"] = _time(parallel_run, rounds)
        out["pool_error"] = engine.pool_error

    unique = _population(problem, 12)
    dup_trees = [unique[i % 12] for i in range(60)]
    dedup = EvaluationEngine(problem)

    def dedup_run():
        dedup.evaluator.clear_cache()
        dedup.evaluate_many(dup_trees)

    out["dedup_60_of_12_unique"] = _time(dedup_run, rounds)
    return out


def bench_cache_effect(problem):
    cfg = GPConfig(population_size=60, generations=10)
    cached = GPPlanner(cfg, rng=0).plan(problem)
    uncached = GPPlanner(cfg, rng=0).plan(
        problem, evaluator=PlanEvaluator(problem, cache_size=0)
    )
    assert cached.best_fitness == uncached.best_fitness
    return {
        "evaluator_calls": uncached.cache_hits + uncached.cache_misses,
        "simulations_in_batch_dedup_only": uncached.evaluations,
        "simulations_with_shared_cache": cached.evaluations,
        "cache_hit_rate": cached.cache_hit_rate,
        "eval_time_cached_s": cached.eval_time,
        "eval_time_uncached_s": uncached.eval_time,
    }


def bench_gp_run(problem, rounds):
    cfg = GPConfig(population_size=60, generations=10)

    def run():
        GPPlanner(cfg, rng=1).plan(problem)

    return _time(run, rounds)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_planner.json")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="pool size for the parallel measurement",
    )
    args = parser.parse_args(argv)

    problem = planning_problem()
    record = {
        "benchmark": "GP planner evaluation engine",
        "problem": problem.name,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "evaluate_many": bench_evaluate_many(problem, args.rounds, args.workers),
        "cache_effect_pop60_gen10": bench_cache_effect(problem),
        "gp_run_pop60_gen10": bench_gp_run(problem, max(2, args.rounds // 2)),
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
