"""Record performance numbers (planner, bus, enactment, obs, analysis).

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_bench.py \\
        [--suite all|planner|bus|enact|obs|analysis]

The **planner** suite (BENCH_planner.json) measures, on the Section-5
case-study problem:

* ``evaluate_many`` on a population-60 batch — serial backend vs. the
  process-pool backend (pool warmed outside timing, worker-side caching
  off so every round simulates);
* the same batch with only 12 unique structures (in-batch dedup);
* a seeded GP run with the shared fitness cache vs. the identical run
  with caching disabled (unique-simulation counts);
* one full Table-1-budget GP generation sequence at population 60.

The **bus** suite (BENCH_bus.json) measures message-fabric throughput:

* one-way fire-and-forget routing (router + mailbox + trace + metrics),
  at the default trace capacity and at a tiny bounded capacity (eviction
  on the hot path);
* sequential RPC round trips through ``Agent.call`` (request, handler
  dispatch, reply, latency histogram).

The **enact** suite (BENCH_enact.json) measures end-to-end enactment
throughput on the ``many_cases`` workload (K concurrent cases of one
workflow through the full matchmaking -> scheduling -> container path):

* the default configuration (tracing on, no caches — traces stay
  byte-identical to the pre-optimization code);
* the legacy one-event-at-a-time kernel (``batched=False``), the
  comparison row for the batched dispatch path;
* the per-enactment-recompile configuration (``program_cache_size=0``),
  isolating the compiled-program cache's contribution;
* the all-knobs throughput configuration (tracing off, fact / match /
  candidate caches, metrics off, async reports, coalesced resumption),
  plus the cache-hit counters of one instrumented run;
* the ``parallel=N`` multi-environment driver row and a 1k-case serial
  stress row (the ``--min-stress-cases-per-s`` floor gate watches the
  latter, host-fingerprint-matched like the obs gate);
* the batched-vs-legacy byte-identity gate (also standalone via
  ``--verify-traces``), recorded into the JSON itself.

The **shard** suite (BENCH_shard.json) measures the sharded
multi-coordinator grid on a 10k-case ``many_cases`` population:

* one row per shard count in {1, 2, 4, 8} — fast-path knobs, cases
  assigned to shards by consistent hash of the case id, one process per
  shard (``run_many_cases(shards=N)``);
* the scaling table relative to the single-shard row (the
  ``--min-shard-scaling`` floor gate watches the 8-shard entry,
  host-fingerprint-matched like the other gates);
* the shards=1 byte-identity gate: the single-shard sharded grid must
  produce exactly the unsharded grid's message trace (also enforced by
  ``--verify-traces``).

The **obs** suite (BENCH_obs.json) measures the span-telemetry layer's
cost on the same workload:

* the default spans-off configuration against the committed pre-obs
  baseline — the ``--max-disabled-overhead`` gate fails the run when the
  regression exceeds the given percentage (host-fingerprint-matched
  only, since cross-host medians are not comparable);
* spans-on and spans-on-plus-gauges configurations (the honest price of
  full recording);
* one instrumented run's span accounting, case-0 profile coverage, and
  gauge summaries.

The **analysis** suite (BENCH_analysis.json) measures the semantic
workflow verifier:

* full-pass analyzer throughput (structure + conditions + dataflow +
  resolvability) on the Figure-10 case-study process against the
  case-study knowledge base — and asserts it stays finding-free;
* a seeded GP run with the static pre-filter off vs. on (the ``exact``
  default): best fitness, plan and per-generation history must be
  identical, while ``analysis_rejected`` records how many candidate
  simulations the filter made unnecessary.

The **planlib** suite (BENCH_planlib.json) measures the persistent plan
library's warm-start path on the repeated-goal ``plan_mix`` workload:

* cold (``library="off"``) vs warm (``library="on"``) per-request
  planning-latency percentiles (p50/p95), plus the warm-hit-path
  percentiles and the p50 speedup (the ``--min-warm-speedup`` floor
  gate, host-fingerprint-matched like the other gates);
* the hit / repair / seed / miss ladder counters of the warm run and of
  a third run with a mid-run service kill (the repair leg);
* the library-off byte-identity gate: a grid with a library wired but
  ``GPConfig.library="off"`` must produce exactly the unwired grid's
  message trace and GP results (enforced unconditionally).

The **prov** suite (BENCH_prov.json) measures the case flight recorder:

* journal-off (the default) against the committed pre-prov baseline —
  the ``--max-journal-overhead`` gate fails the run when the regression
  exceeds the given percentage (host-fingerprint-matched only);
* record-only and full-mirror rows (the honest price of each mode);
* a 1k-case record-only append-throughput stress row (events/s) on the
  fast-path knobs;
* the enacted ``plan_mix`` acceptance workload replayed case-by-case
  from storage blobs alone — replay wall time plus the journal-vs-span
  agreement, enforced at >= 0.95 per case unconditionally;
* the record-only byte-identity gate (also enforced by
  ``--verify-traces``), recorded into the JSON itself.

Each PR can re-run this and diff against the committed JSON to keep a
perf trajectory.  Timings are medians of --rounds repetitions; the host
block records the CPU budget the numbers were taken under (a single-core
host cannot show a parallel win — the dispatch overhead is then the
honest number).
"""

from __future__ import annotations

import argparse
import os

import numpy as np

from bench_util import (
    enforce_gate,
    host_fingerprint as _host,
    time_fn as _time,
    trace_rows,
    write_record as _write,
)
from repro.plan import random_tree
from repro.planner import EvaluationEngine, GPConfig, GPPlanner, PlanEvaluator
from repro.virolab import planning_problem


def _population(problem, count, seed=0):
    rng = np.random.default_rng(seed)
    activities = list(problem.activity_names)
    return [
        random_tree(activities, max_size=40, rng=rng, max_branch=4)
        for _ in range(count)
    ]


def bench_evaluate_many(problem, rounds, workers):
    trees = _population(problem, 60)
    out = {}

    serial = EvaluationEngine(problem)

    def serial_run():
        serial.evaluator.clear_cache()
        serial.evaluate_many(trees)

    out["serial_60"] = _time(serial_run, rounds)

    with EvaluationEngine(
        problem, workers=workers, worker_cache_size=0
    ) as engine:
        engine.evaluate_many(trees[:2])  # warm the pool outside timing

        def parallel_run():
            engine.evaluator.clear_cache()
            engine.evaluate_many(trees)

        out[f"parallel_60_workers{workers}"] = _time(parallel_run, rounds)
        out["pool_error"] = engine.pool_error

    unique = _population(problem, 12)
    dup_trees = [unique[i % 12] for i in range(60)]
    dedup = EvaluationEngine(problem)

    def dedup_run():
        dedup.evaluator.clear_cache()
        dedup.evaluate_many(dup_trees)

    out["dedup_60_of_12_unique"] = _time(dedup_run, rounds)
    return out


def bench_cache_effect(problem):
    cfg = GPConfig(population_size=60, generations=10)
    cached = GPPlanner(cfg, rng=0).plan(problem)
    uncached = GPPlanner(cfg, rng=0).plan(
        problem, evaluator=PlanEvaluator(problem, cache_size=0)
    )
    assert cached.best_fitness == uncached.best_fitness
    return {
        "evaluator_calls": uncached.cache_hits + uncached.cache_misses,
        "simulations_in_batch_dedup_only": uncached.evaluations,
        "simulations_with_shared_cache": cached.evaluations,
        "cache_hit_rate": cached.cache_hit_rate,
        "eval_time_cached_s": cached.eval_time,
        "eval_time_uncached_s": uncached.eval_time,
    }


def bench_gp_run(problem, rounds):
    cfg = GPConfig(population_size=60, generations=10)

    def run():
        GPPlanner(cfg, rng=1).plan(problem)

    return _time(run, rounds)


def _bus_env(trace_capacity=None):
    from repro.grid import Agent, GridEnvironment

    env = GridEnvironment(trace_capacity=trace_capacity)

    class Sink(Agent):
        def handle_ping(self, message):
            return {"pong": True}

    Sink(env, "sink", "core")
    driver = Agent(env, "driver", "core")
    return env, driver


def bench_bus_throughput(rounds, oneway_count=5_000, rpc_count=2_000):
    """Message-fabric throughput: routing, delivery, tracing, metrics."""
    from repro.grid import Message, Performative

    out = {}

    def oneway(trace_capacity):
        def run():
            env, driver = _bus_env(trace_capacity)
            for _ in range(oneway_count):
                driver.send(
                    Message(
                        sender="driver",
                        receiver="sink",
                        performative=Performative.INFORM,
                        action="event",
                    )
                )
            env.run()

        return run

    for label, capacity in (("default_trace", None), ("trace_capacity_256", 256)):
        timing = _time(oneway(capacity), rounds)
        timing["messages_per_s"] = oneway_count / timing["median_s"]
        out[f"oneway_{oneway_count}_{label}"] = timing

    def rpc_run():
        env, driver = _bus_env()

        def main():
            for _ in range(rpc_count):
                yield from driver.call("sink", "ping")

        env.engine.spawn(main(), "main")
        env.run()

    timing = _time(rpc_run, rounds)
    timing["roundtrips_per_s"] = rpc_count / timing["median_s"]
    out[f"rpc_roundtrip_{rpc_count}"] = timing
    return out


#: Pre-PR reference point for the enact suite, measured on the grading
#: host immediately before the throughput layer landed (commit 65ff5fe,
#: 32 cases / 4 containers / 3 rounds, median of 5): kept in the JSON so
#: the speedup is computable without checking out the old tree.
PRE_PR_BASELINE = {
    "median_s": 0.4497,
    "min_s": 0.3987,
    "rounds": 5,
    "commit": "65ff5fe",
    "note": "same workload driver, pre-optimization enactment path",
}

#: Every throughput knob at once: tracing off, all three TTL caches
#: effectively run-long, metrics registry off, one-way performance
#: reports, and coalesced same-tick resumption.  This is the configuration
#: the 10x acceptance target is measured on; each knob is individually
#: opt-in and individually measured in the counters rows.
FAST_PATH_KNOBS = {
    "tracing": False,
    "match_cache_ttl": 120.0,
    "sched_cache_ttl": 120.0,
    "coord_cache_ttl": 120.0,
    "metrics": False,
    "async_reports": True,
    "coalesce": True,
}

#: Host-fingerprinted reference for the 1k-case stress row.  The
#: ``--min-stress-cases-per-s`` floor gate is enforced only when the
#: current host matches this fingerprint — cross-host rates say nothing
#: about regression.  Measured on the grading host (serial fast path,
#: gc frozen during samples).
STRESS_REFERENCE = {
    "cases": 1000,
    "containers": 8,
    "cases_per_s": 525.0,
    "host": {
        "cpu_count": 1,
        "platform": "Linux-6.18.5-fc-v20-x86_64-with-glibc2.36",
    },
    "note": "serial fast-path stress row, grading host",
}


def verify_trace_identity(cases=8, containers=4):
    """Byte-identity gate: batched vs legacy dispatch, default tracing.

    Runs the default-configuration workload once on the batched kernel and
    once on the legacy one-event-at-a-time kernel (``batched=False``) and
    requires the full observable record to match byte-for-byte: every
    delivered message's time, endpoints, performative, action,
    conversation / message / trace / parent ids and content, plus the
    per-case outcomes, completion count and makespan.  Engine event counts
    are recorded but *excluded* from identity — the batched kernel resumes
    all waiters of one signal with a single event, so its internal event
    count is lower by construction while the observable record is
    unchanged.
    """
    from repro.workloads import run_many_cases

    def observable(batched):
        result = run_many_cases(
            cases=cases, containers=containers, batched=batched
        )
        return {
            "trace": trace_rows(result["env"]),
            "outcomes": repr(result["outcomes"]),
            "completed": result["completed"],
            "makespan": result["makespan"],
            "engine_events": result["engine_events"],
        }

    batched = observable(True)
    legacy = observable(False)
    identical = (
        batched["trace"] == legacy["trace"]
        and batched["outcomes"] == legacy["outcomes"]
        and batched["completed"] == legacy["completed"]
        and batched["makespan"] == legacy["makespan"]
    )
    gate = {
        "cases": cases,
        "containers": containers,
        "identical": identical,
        "messages_compared": len(batched["trace"]),
        "completed": batched["completed"],
        "batched_engine_events": batched["engine_events"],
        "legacy_engine_events": legacy["engine_events"],
    }
    if not identical:
        for index, (one, other) in enumerate(
            zip(batched["trace"], legacy["trace"])
        ):
            if one != other:
                gate["first_divergence"] = {
                    "index": index,
                    "batched": one,
                    "legacy": other,
                }
                break
        else:
            gate["first_divergence"] = {
                "index": min(len(batched["trace"]), len(legacy["trace"])),
                "batched_len": len(batched["trace"]),
                "legacy_len": len(legacy["trace"]),
            }
    return gate


def _workload_fingerprint(result):
    """Everything observable about a workload run, for identity gates."""
    return {
        "trace": trace_rows(result["env"]),
        "outcomes": repr(result["outcomes"]),
        "completed": result["completed"],
        "makespan": result["makespan"],
        "engine_events": result["engine_events"],
    }


def verify_sharded_trace_identity(cases=8, containers=4):
    """Byte-identity gate: the unsharded grid vs ``shards=1``.

    The single-shard sharded environment keeps every well-known service
    name, constructs agents in the same order, and resolves every ring
    rewrite to the identity — so the default-configuration workload must
    produce exactly the same delivered-message trace and per-case
    outcomes through the sharded bootstrap and routing seam as through
    ``standard_environment``.
    """
    from repro.workloads import run_many_cases

    default = _workload_fingerprint(
        run_many_cases(cases=cases, containers=containers)
    )
    sharded = _workload_fingerprint(
        run_many_cases(cases=cases, containers=containers, shards=1)
    )
    identical = (
        default["trace"] == sharded["trace"]
        and default["outcomes"] == sharded["outcomes"]
        and default["completed"] == sharded["completed"]
        and default["makespan"] == sharded["makespan"]
    )
    gate = {
        "cases": cases,
        "containers": containers,
        "identical": identical,
        "messages_compared": len(default["trace"]),
        "completed": default["completed"],
    }
    if not identical:
        for index, (one, other) in enumerate(
            zip(default["trace"], sharded["trace"])
        ):
            if one != other:
                gate["first_divergence"] = {
                    "index": index,
                    "default": one,
                    "sharded": other,
                }
                break
        else:
            gate["first_divergence"] = {
                "index": min(len(default["trace"]), len(sharded["trace"])),
                "default_len": len(default["trace"]),
                "sharded_len": len(sharded["trace"]),
            }
    return gate


def bench_enact(rounds, cases=32, containers=4, stress_cases=1000):
    """End-to-end enactment throughput on the many_cases workload."""
    from repro.workloads import run_many_cases

    out = {"cases": cases, "containers": containers}

    configs = {
        # Default path: byte-identical traces, program cache on.
        "default_tracing": {},
        # Pre-batching kernel (one-event heap dispatch, per-waiter resume
        # events): the same observable run, kept as the comparison row and
        # exercised by the trace gate below.
        "legacy_kernel": {"batched": False},
        # Program cache disabled: recompile per enactment (the old shape).
        "no_program_cache": {"program_cache_size": 0},
        # Throughput path: every knob at once (see FAST_PATH_KNOBS).
        "optimized_fast_path": dict(FAST_PATH_KNOBS),
    }
    for label, knobs in configs.items():
        timing = _time(lambda knobs=knobs: run_many_cases(
            cases=cases, containers=containers, **knobs
        ), rounds)
        timing["cases_per_s"] = cases / timing["median_s"]
        out[label] = timing

    # Multi-environment parallel driver: deterministic shard merge over a
    # process pool.  On a single-core host this row honestly records the
    # dispatch overhead rather than a win (see the module docstring).
    workers = max(2, min(4, os.cpu_count() or 1))
    parallel_rounds = max(1, min(rounds, 3))
    timing = _time(lambda: run_many_cases(
        cases=cases, containers=containers, parallel=workers,
        **FAST_PATH_KNOBS,
    ), parallel_rounds)
    timing["cases_per_s"] = cases / timing["median_s"]
    result = run_many_cases(
        cases=cases, containers=containers, parallel=workers,
        **FAST_PATH_KNOBS,
    )
    timing["pool_error"] = result["pool_error"]
    timing["shards"] = result["shards"]
    timing["completed"] = result["completed"]
    out[f"parallel_x{workers}"] = timing

    # 1k-case stress row: same fast path, more contention (makespan grows
    # with the case count, so the rate is lower than the 32-case row —
    # that is the honest sustained number the CI floor gate watches).
    stress_rounds = 1 if rounds <= 2 else 3
    timing = _time(lambda: run_many_cases(
        cases=stress_cases,
        containers=STRESS_REFERENCE["containers"],
        **FAST_PATH_KNOBS,
    ), stress_rounds)
    timing["cases"] = stress_cases
    timing["containers"] = STRESS_REFERENCE["containers"]
    timing["cases_per_s"] = stress_cases / timing["median_s"]
    out["stress_1k"] = timing

    # One instrumented run: completion + cache-hit counters via the
    # metrics registry prove the caches actually carried the load (same
    # knobs as the fast path but with the registry left on).
    instrumented = dict(FAST_PATH_KNOBS)
    instrumented["metrics"] = True
    result = run_many_cases(cases=cases, containers=containers, **instrumented)
    out["counters_optimized"] = result["counters"]
    out["counters_optimized"]["completed_cases"] = result["completed"]
    out["counters_optimized"]["activities_run"] = result["activities_run"]
    out["counters_optimized"]["engine_events"] = result["engine_events"]
    result = run_many_cases(cases=cases, containers=containers)
    out["counters_default"] = result["counters"]

    # The byte-identity gate result is part of the record itself, so the
    # committed JSON carries the proof alongside the numbers.
    out["trace_gate"] = verify_trace_identity(
        cases=min(cases, 8), containers=containers
    )

    out["pre_pr_baseline"] = dict(PRE_PR_BASELINE)
    out["stress_reference"] = dict(STRESS_REFERENCE)
    baseline = PRE_PR_BASELINE["median_s"]
    out["speedup_default_vs_pre_pr"] = baseline / out["default_tracing"]["median_s"]
    out["speedup_legacy_vs_pre_pr"] = baseline / out["legacy_kernel"]["median_s"]
    out["speedup_optimized_vs_pre_pr"] = (
        baseline / out["optimized_fast_path"]["median_s"]
    )
    return out


#: Host-fingerprinted reference for the shard suite's scaling-floor gate:
#: ``--min-shard-scaling`` compares the 8-shard row's throughput against
#: the 1-shard row and is enforced only on a matching host.  On the
#: single-core grading host the win comes from superlinear cost avoidance
#: (eight small environments beat one 10k-case environment on scheduler
#: scan and heap growth), not from parallelism.
SHARD_REFERENCE = {
    "cases": 10_000,
    "containers": 8,
    "host": {
        "cpu_count": 1,
        "platform": "Linux-6.18.5-fc-v20-x86_64-with-glibc2.36",
    },
    "note": "fast-path 10k-case rows, grading host",
}

#: Shard counts measured by the shard suite.
SHARD_COUNTS = (1, 2, 4, 8)


def bench_shard(rounds, cases=10_000, containers=8):
    """Sharded-grid scaling: the 10k-case workload at 1/2/4/8 shards."""
    from repro.workloads import run_many_cases, shard_assignment

    out = {"cases": cases, "containers": containers}
    # The big rows cost minutes each; medians over many rounds would not
    # change the scaling story.
    shard_rounds = 1 if rounds <= 3 else 2
    rates = {}
    for shards in SHARD_COUNTS:
        holder = {}

        def run(shards=shards, holder=holder):
            holder["result"] = run_many_cases(
                cases=cases,
                containers=containers,
                shards=shards,
                **FAST_PATH_KNOBS,
            )

        timing = _time(run, shard_rounds)
        result = holder["result"]
        timing["cases_per_s"] = cases / timing["median_s"]
        timing["completed"] = result["completed"]
        if shards > 1:
            timing["pool_error"] = result["pool_error"]
            timing["case_spread"] = {
                entry["shard"]: entry["cases"] for entry in result["shards"]
            }
        rates[shards] = timing["cases_per_s"]
        out[f"shards_{shards}"] = timing

    out["scaling_vs_1_shard"] = {
        f"shards_{shards}": rates[shards] / rates[1] for shards in SHARD_COUNTS
    }
    out["assignment_spread_10k"] = {
        label: len(indices)
        for label, indices in shard_assignment(cases, max(SHARD_COUNTS)).items()
    }
    # The shards=1 byte-identity gate is part of the record itself.
    out["trace_gate_shards1"] = verify_sharded_trace_identity()
    out["shard_reference"] = dict(SHARD_REFERENCE)
    return out


#: Pre-PR reference point for the obs suite, measured on the grading host
#: immediately before the span-telemetry layer landed (commit 882c84e,
#: 32 cases / 4 containers, median of 7): the disabled-overhead gate
#: compares against this — but only when the host fingerprint matches,
#: since cross-host medians say nothing about regression.
PRE_OBS_BASELINE = {
    "median_s": 0.306,
    "min_s": 0.282,
    "rounds": 7,
    "commit": "882c84e",
    "host": {
        "cpu_count": 1,
        "platform": "Linux-6.18.5-fc-v19-x86_64-with-glibc2.36",
    },
    "note": "many_cases default config, pre span-instrumentation tree",
}


def bench_obs(rounds, cases=32, containers=4):
    """Span-telemetry overhead: disabled (the default) must stay free."""
    from repro.obs.profile import case_profile
    from repro.workloads import run_many_cases

    out = {"cases": cases, "containers": containers}

    configs = {
        # Default path: recording off; must track PRE_OBS_BASELINE.
        "spans_off": {},
        # Full recording: every layer opens/closes spans.
        "spans_on": {"spans": True},
        # Recording plus periodic gauge sampling.
        "spans_on_gauges": {"spans": True, "gauge_period": 5.0},
    }
    for label, knobs in configs.items():
        timing = _time(lambda knobs=knobs: run_many_cases(
            cases=cases, containers=containers, **knobs
        ), rounds)
        timing["cases_per_s"] = cases / timing["median_s"]
        out[label] = timing

    baseline = PRE_OBS_BASELINE["median_s"]
    out["pre_obs_baseline"] = dict(PRE_OBS_BASELINE)
    out["disabled_overhead_pct"] = (
        (out["spans_off"]["median_s"] - baseline) / baseline * 100.0
    )
    out["enabled_overhead_pct"] = (
        (out["spans_on"]["median_s"] - out["spans_off"]["median_s"])
        / out["spans_off"]["median_s"] * 100.0
    )

    # One instrumented run proves the recording is complete and balanced:
    # every span pairs, and the profile attributes the case window.
    result = run_many_cases(
        cases=cases, containers=containers, spans=True, gauge_period=5.0
    )
    out["span_accounting"] = result["spans"]
    profile = case_profile(result["env"].spans, case="case-0")
    out["profile_case0"] = {
        "coverage": profile["coverage"],
        "duration": profile["duration"],
        "spans": profile["spans"],
    }
    gauges = result["env"].gauges.summary()
    out["gauges"] = {
        name: series
        for name, series in gauges.items()
        if name in ("spans.open", "transfers.inflight")
        or name.endswith("slots_in_use")
    }
    return out


def bench_analysis(rounds, iterations=200):
    """Semantic-analyzer throughput and the GP pre-filter's effect."""
    from repro.analysis import analyze_process, concurrency_findings
    from repro.virolab import (
        DATA_CLASSIFICATIONS,
        INITIAL_DATA,
        case_study_kb,
        process_description,
    )

    out = {}
    pd = process_description()
    kb = case_study_kb()
    initial = set(INITIAL_DATA)

    def analyze_all():
        for _ in range(iterations):
            analyze_process(
                pd,
                kb=kb,
                initial_data=initial,
                classifications=DATA_CLASSIFICATIONS,
            )

    timing = _time(analyze_all, rounds)
    timing["analyses_per_s"] = iterations / timing["median_s"]
    out[f"full_pass_figure10_x{iterations}"] = timing
    findings = analyze_process(
        pd, kb=kb, initial_data=initial, classifications=DATA_CLASSIFICATIONS
    )
    # Zero-false-positive gate: the shipped case study must stay clean.
    assert not findings, [str(f) for f in findings]
    out["figure10_findings"] = len(findings)

    # Concurrency verifier alone: region recovery + interference +
    # deadlock + critical path over the Figure-10 fork, per process.
    def concurrency_all():
        for _ in range(iterations):
            concurrency_findings(pd)

    timing = _time(concurrency_all, rounds)
    timing["analyses_per_s"] = iterations / timing["median_s"]
    out[f"concurrency_pass_figure10_x{iterations}"] = timing
    assert concurrency_findings(pd) == []

    # GP pre-filter: exact mode must leave the run byte-identical while
    # measurably reducing simulator work.
    problem = planning_problem()
    runs = {}
    for mode in ("off", "exact"):
        cfg = GPConfig(population_size=60, generations=8, static_filter=mode)
        timing = _time(lambda cfg=cfg: GPPlanner(cfg, rng=7).plan(problem), rounds)
        result = GPPlanner(cfg, rng=7).plan(problem)
        runs[mode] = result
        timing["evaluations"] = result.evaluations
        timing["analysis_rejected"] = result.analysis_rejected
        timing["best_overall"] = result.best_fitness.overall
        out[f"gp_pop60_gen8_filter_{mode}"] = timing
    off, exact = runs["off"], runs["exact"]
    assert exact.best_fitness == off.best_fitness
    assert exact.best_plan.struct_key() == off.best_plan.struct_key()
    assert exact.history == off.history
    assert exact.evaluations == off.evaluations
    assert exact.analysis_rejected > 0 and off.analysis_rejected == 0
    out["traces_identical"] = True
    out["simulations_avoided"] = exact.analysis_rejected
    out["simulations_avoided_pct"] = (
        exact.analysis_rejected / exact.evaluations * 100.0
    )

    # Race filter mode on the plan_mix problem (analyze_a/analyze_b both
    # produce "insight" from distinct services, so CONCURRENT pairings
    # statically interfere): how many extra simulations the fork-
    # interference floor skips on top of the doomed check.  Race mode
    # changes traces by design (floored fitness), so this row reports
    # counts, not identity.
    from repro.workloads.plan_mix import plan_mix_problem

    mix_problem = plan_mix_problem(0)
    mix_runs = {}
    for mode in ("exact", "race"):
        cfg = GPConfig(
            population_size=60, generations=8, smax=12, static_filter=mode
        )
        result = GPPlanner(cfg, rng=7).plan(mix_problem)
        mix_runs[mode] = result
        out[f"gp_plan_mix_filter_{mode}"] = {
            "evaluations": result.evaluations,
            "analysis_rejected": result.analysis_rejected,
            "race_rejected": result.race_rejected,
            "best_overall": result.best_fitness.overall,
        }
    race = mix_runs["race"]
    assert mix_runs["exact"].race_rejected == 0
    assert race.race_rejected > 0
    out["race_simulations_additionally_skipped_pct"] = (
        race.race_rejected / race.evaluations * 100.0
    )

    out["race_witness"] = _witness_precision()
    return out


def _witness_precision():
    """Enact a deliberately racy two-branch fork under ``journal=True``
    and replay the journal against the static conflicts.

    The intake gate would (correctly) refuse the specimen on its E601,
    so the bench tolerates that code for this one grid — the point is to
    measure how many statically-flagged races the runtime record bears
    out (confirmed / checkable = the witness precision)."""
    from repro.analysis import interference_conflicts, race_witness
    from repro.grid.container import EndUserService
    from repro.process.builder import WorkflowBuilder
    from repro.process.model import Activity
    from repro.services.bootstrap import standard_environment

    library = {
        "WA": Activity("WA", service="SVA", inputs=("d0",), outputs=("r",)),
        "WB": Activity("WB", service="SVB", inputs=("d0",), outputs=("r",)),
    }
    pd = (
        WorkflowBuilder("racy-fork")
        .fork(lambda b: b.activity("WA"), lambda b: b.activity("WB"))
        .build(library)
    )
    conflicts = interference_conflicts(pd)
    services = [
        EndUserService("SVA", work=3.0, effects={"r": {"Status": "ready"}}),
        EndUserService("SVB", work=5.0, effects={"r": {"Status": "ready"}}),
    ]
    env, core, _ = standard_environment(services, containers=2, journal=True)
    core.coordination.tolerated_findings = (
        core.coordination.tolerated_findings | {"E601", "W602"}
    )
    outcome = {}

    def enact():
        outcome["reply"] = yield from core.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": pd,
                "initial_data": {"d0": {"Status": "ready"}},
                "task": "racy-0",
            },
        )

    env.engine.spawn(enact(), "driver")
    env.run(max_events=2_000_000)
    assert outcome["reply"]["status"] == "completed"
    report = race_witness(env.journal.events("racy-0"), conflicts)
    return {
        "static_conflicts": len(conflicts),
        "confirmed": report.confirmed,
        "refuted": report.refuted,
        "unobserved": report.unobserved,
        "checkable": report.checkable,
        "precision": report.precision,
        "verdicts": [v.to_dict() for v in report.verdicts],
    }


#: Host-fingerprinted reference for the concurrency-witness gate: on the
#: grading host the racy-fork specimen's two branches always overlap, so
#: every checkable static race must be journal-confirmed.  The
#: ``--min-witness-precision`` floor is enforced only on this host.
ANALYSIS_REFERENCE = {
    "witness_precision": 1.0,
    "host": {
        "cpu_count": 1,
        "platform": "Linux-6.18.5-fc-v20-x86_64-with-glibc2.36",
    },
    "note": "racy two-branch fork enacted with journal=True, grading host",
}


#: Host-fingerprinted reference for the plan-library warm-start suite.
#: The ``--min-warm-speedup`` floor gate is enforced only when the current
#: host matches this fingerprint.  Measured on the grading host (24
#: requests over 4 goal variants, population 40 / 8 generations).
PLANLIB_REFERENCE = {
    "requests": 24,
    "distinct": 4,
    "warm_speedup_p50": 30.0,
    "host": {
        "cpu_count": 1,
        "platform": "Linux-6.18.5-fc-v20-x86_64-with-glibc2.36",
    },
    "note": "cold GP p50 over warm hit-path p50, grading host",
}


def _latency_percentiles(samples):
    """p50/p95 of per-request planning latencies (nearest-rank)."""
    ordered = sorted(samples)

    def pct(p):
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1)))]

    return {"p50_s": pct(50), "p95_s": pct(95), "n": len(ordered)}


def verify_library_off_identity(requests=8, distinct=4):
    """Byte-identity gate: library wired but ``library="off"`` vs unwired.

    ``GPConfig.library="off"`` must leave the planning service on the
    pre-library code path exactly — same GP populations (hence fitness and
    replies), same default message trace — even when a :class:`PlanLibrary`
    and knowledge base are wired into the grid.  The unwired half of the
    pair runs the original handler body with zero generator yields, i.e.
    the pre-PR behavior.
    """
    from repro.workloads import run_plan_mix

    def observable(wired):
        result = run_plan_mix(
            requests=requests,
            distinct=distinct,
            library="off",
            wire_disabled_library=wired,
        )
        return {
            "trace": trace_rows(result["env"]),
            "fitness": result["fitness"],
            "sources": result["sources"],
            "solved": result["solved"],
            "makespan": result["makespan"],
        }

    wired = observable(True)
    plain = observable(False)
    identical = wired == plain
    gate = {
        "requests": requests,
        "identical": identical,
        "messages_compared": len(plain["trace"]),
    }
    if not identical:
        for index, (one, other) in enumerate(
            zip(wired["trace"], plain["trace"])
        ):
            if one != other:
                gate["first_divergence"] = {
                    "index": index,
                    "wired_off": one,
                    "unwired": other,
                }
                break
        else:
            gate["first_divergence"] = {
                "wired_len": len(wired["trace"]),
                "unwired_len": len(plain["trace"]),
                "fitness_equal": wired["fitness"] == plain["fitness"],
            }
    return gate


def bench_planlib(requests=24, distinct=4):
    """Plan-library warm-start: cold vs warm latency plus the ladder counts.

    Three runs of the repeated-goal ``plan_mix`` traffic:

    * cold — ``library="off"``, every request is a full GP run (the
      baseline percentiles);
    * warm — ``library="on"``, first occurrences miss or seed, repeats are
      analyzer-verified hits (the warm-hit percentiles and the speedup);
    * stale — warm plus a mid-run service kill, exercising the repair leg.
    """
    from repro.workloads import run_plan_mix

    out = {"requests": requests, "distinct": distinct}

    cold = run_plan_mix(requests=requests, distinct=distinct, library="off")
    out["cold_library_off"] = {
        **_latency_percentiles(cold["latencies"]),
        "solved": cold["solved"],
    }

    warm = run_plan_mix(requests=requests, distinct=distinct, library="on")
    hit_latencies = [
        latency
        for latency, source in zip(warm["latencies"], warm["sources"])
        if source in ("hit", "repair")
    ]
    out["warm_library_on"] = {
        **_latency_percentiles(warm["latencies"]),
        "solved": warm["solved"],
        "library_entries": warm["library_entries"],
        "sources": warm["sources"],
    }
    out["warm_hit_path"] = _latency_percentiles(hit_latencies)
    out["counts"] = warm["counts"]
    out["warm_speedup_p50"] = (
        out["cold_library_off"]["p50_s"] / out["warm_hit_path"]["p50_s"]
        if out["warm_hit_path"]["p50_s"] > 0
        else 0.0
    )

    stale = run_plan_mix(
        requests=requests,
        distinct=distinct,
        library="on",
        kill_after=max(1, requests // 2),
    )
    out["repair_leg"] = {
        "killed_service": stale["killed"],
        "counts": stale["counts"],
        "sources": stale["sources"],
        "solved": stale["solved"],
    }

    out["planlib_reference"] = dict(PLANLIB_REFERENCE)
    out["library_off_identity"] = verify_library_off_identity()
    return out


#: Host-fingerprinted reference for the flight-recorder overhead gate:
#: the default (journal off) many_cases median measured immediately
#: before the journal hooks landed in coordination / containers /
#: transfer.  ``--max-journal-overhead`` compares the current
#: journal-off median against this on the matching host only.
PRE_PROV_BASELINE = {
    "median_s": 0.176,
    "min_s": 0.166,
    "rounds": 7,
    "host": {
        "cpu_count": 1,
        "platform": "Linux-6.18.5-fc-v20-x86_64-with-glibc2.36",
    },
    "note": "many_cases default config, pre journal-instrumentation tree",
}


def verify_journal_trace_identity(cases=8, containers=4):
    """Byte-identity gate: journal record-only vs journal off.

    Record-only journaling (``journal="record"``) appends events purely
    in Python — no storage RPCs, no simulation events — so the full
    observable record (every delivered message plus per-case outcomes
    and makespan) must match a journal-off run byte-for-byte.  (The
    mirror mode ``journal=True`` adds real store RPCs at case end and is
    deliberately excluded: its traffic is the documented price of
    persistence.)
    """
    from repro.workloads import run_many_cases

    def observable(journal):
        result = run_many_cases(
            cases=cases, containers=containers, journal=journal
        )
        return {
            "trace": trace_rows(result["env"]),
            "outcomes": repr(result["outcomes"]),
            "completed": result["completed"],
            "makespan": result["makespan"],
        }

    recorded = observable("record")
    plain = observable(False)
    identical = recorded == plain
    gate = {
        "cases": cases,
        "containers": containers,
        "identical": identical,
        "messages_compared": len(plain["trace"]),
    }
    if not identical:
        for index, (one, other) in enumerate(
            zip(recorded["trace"], plain["trace"])
        ):
            if one != other:
                gate["first_divergence"] = {
                    "index": index,
                    "journal_record": one,
                    "journal_off": other,
                }
                break
        else:
            gate["first_divergence"] = {
                "record_len": len(recorded["trace"]),
                "off_len": len(plain["trace"]),
                "outcomes_equal": recorded["outcomes"] == plain["outcomes"],
            }
    return gate


def bench_prov(rounds, cases=32, containers=4, stress_cases=1000):
    """Flight-recorder cost: journal modes, append throughput, replay.

    * journal-off (the default) against the committed pre-prov baseline
      (the ``--max-journal-overhead`` gate watches this row);
    * record-only and full-mirror rows (the honest price of each mode);
    * a 1k-case record-only stress row on the fast-path knobs — events
      appended per second is the journal's append throughput;
    * the enacted ``plan_mix`` acceptance workload: every case's journal
      replayed from its storage blob alone, wall time recorded, and the
      journal-vs-span agreement enforced at >= 0.95 per case
      (unconditionally — agreement is host-independent).
    """
    import time as _walltime

    from repro.obs.provenance import journal_replay
    from repro.workloads import run_many_cases, run_plan_mix

    out = {"cases": cases, "containers": containers}

    # One untimed run first: the 1% overhead gate is tighter than the
    # cold-process warm-up penalty (imports, allocator, bytecode), which
    # would otherwise land entirely on the first-timed config.
    run_many_cases(cases=cases, containers=containers)

    configs = {
        "journal_off": {},
        "journal_record": {"journal": "record"},
        "journal_mirror": {"journal": True},
    }
    for label, knobs in configs.items():
        timing = _time(lambda knobs=knobs: run_many_cases(
            cases=cases, containers=containers, **knobs
        ), rounds)
        timing["cases_per_s"] = cases / timing["median_s"]
        out[label] = timing

    baseline = PRE_PROV_BASELINE["median_s"]
    out["pre_prov_baseline"] = dict(PRE_PROV_BASELINE)
    out["journal_disabled_overhead_pct"] = (
        (out["journal_off"]["median_s"] - baseline) / baseline * 100.0
    )
    out["record_overhead_pct"] = (
        (out["journal_record"]["median_s"] - out["journal_off"]["median_s"])
        / out["journal_off"]["median_s"] * 100.0
    )
    out["mirror_overhead_pct"] = (
        (out["journal_mirror"]["median_s"] - out["journal_off"]["median_s"])
        / out["journal_off"]["median_s"] * 100.0
    )

    # Append throughput: 1k cases on the fast-path knobs, record-only.
    started = _walltime.perf_counter()
    stress = run_many_cases(
        cases=stress_cases, containers=8, journal="record", **FAST_PATH_KNOBS
    )
    elapsed = _walltime.perf_counter() - started
    stats = stress["journal"]
    out["stress_1k_record"] = {
        "cases": stress_cases,
        "completed": stress["completed"],
        "elapsed_s": elapsed,
        "events_appended": stats["appended"],
        "events_per_s": stats["appended"] / elapsed if elapsed > 0 else 0.0,
        "cases_per_s": stress_cases / elapsed if elapsed > 0 else 0.0,
    }

    # Replay: the enacted plan_mix acceptance workload, rebuilt from
    # storage blobs alone and cross-checked against live spans.
    mix = run_plan_mix(
        requests=8, distinct=4, enact=True, journal=True, spans=True
    )
    services, env = mix["services"], mix["env"]
    replays = []
    started = _walltime.perf_counter()
    for index in range(mix["requests"]):
        replay = journal_replay(
            services.storage, f"mix-{index}", recorder=env.spans
        )
        replays.append(replay)
    replay_elapsed = _walltime.perf_counter() - started
    agreements = [r["agreement"]["agreement"] for r in replays]
    out["replay"] = {
        "cases": mix["requests"],
        "completed": mix["completed"],
        "plan_sources": mix["sources"],
        "journal_events": mix["journal"]["appended"],
        "wall_s": replay_elapsed,
        "events_per_s": (
            sum(r["events"] for r in replays) / replay_elapsed
            if replay_elapsed > 0
            else 0.0
        ),
        "agreement_min": min(agreements),
        "agreements": agreements,
    }

    out["journal_trace_identity"] = verify_journal_trace_identity()
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=(
            "all",
            "planner",
            "bus",
            "enact",
            "obs",
            "analysis",
            "shard",
            "planlib",
            "prov",
        ),
        default="all",
    )
    parser.add_argument("--out", default="BENCH_planner.json")
    parser.add_argument("--bus-out", default="BENCH_bus.json")
    parser.add_argument("--enact-out", default="BENCH_enact.json")
    parser.add_argument("--obs-out", default="BENCH_obs.json")
    parser.add_argument("--analysis-out", default="BENCH_analysis.json")
    parser.add_argument("--shard-out", default="BENCH_shard.json")
    parser.add_argument("--planlib-out", default="BENCH_planlib.json")
    parser.add_argument("--prov-out", default="BENCH_prov.json")
    parser.add_argument(
        "--max-journal-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if the prov suite's journal-off median exceeds "
        "the committed pre-prov baseline by more than PCT percent; only "
        "enforced when the host fingerprint matches the baseline host",
    )
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail (exit 1) if the planlib suite's warm-hit p50 latency is "
        "not at least FACTOR times below the cold (library-off) p50; only "
        "enforced when the host fingerprint matches the committed planlib "
        "reference host",
    )
    parser.add_argument(
        "--min-witness-precision",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail (exit 1) if the analysis suite's race-witness precision "
        "(journal-confirmed over checkable static races) falls below "
        "FRACTION; only enforced when the host fingerprint matches the "
        "committed analysis reference host",
    )
    parser.add_argument(
        "--shard-cases",
        type=int,
        default=10_000,
        help="population size for the shard suite's scaling rows",
    )
    parser.add_argument(
        "--min-shard-scaling",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail (exit 1) if the shard suite's 8-shard row is less than "
        "FACTOR times the 1-shard row's throughput; only enforced when "
        "the host fingerprint matches the committed shard reference host",
    )
    parser.add_argument(
        "--max-disabled-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if the obs suite's spans-off median exceeds "
        "the committed pre-obs baseline by more than PCT percent; only "
        "enforced when the host fingerprint matches the baseline host",
    )
    parser.add_argument(
        "--min-stress-cases-per-s",
        type=float,
        default=None,
        metavar="RATE",
        help="fail (exit 1) if the enact suite's 1k-case stress row falls "
        "below RATE cases/s; only enforced when the host fingerprint "
        "matches the committed stress reference host",
    )
    parser.add_argument(
        "--verify-traces",
        action="store_true",
        help="after the enact suite, run the default-tracing workload on "
        "both the batched and the legacy dispatch paths and fail (exit 1) "
        "unless the delivered-message traces and per-case outcomes are "
        "byte-identical",
    )
    parser.add_argument("--cases", type=int, default=32)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="pool size for the parallel measurement",
    )
    args = parser.parse_args(argv)

    if args.suite in ("all", "planner"):
        problem = planning_problem()
        record = {
            "benchmark": "GP planner evaluation engine",
            "problem": problem.name,
            "host": _host(),
            "evaluate_many": bench_evaluate_many(
                problem, args.rounds, args.workers
            ),
            "cache_effect_pop60_gen10": bench_cache_effect(problem),
            "gp_run_pop60_gen10": bench_gp_run(problem, max(2, args.rounds // 2)),
        }
        _write(args.out, record)

    if args.suite in ("all", "bus"):
        record = {
            "benchmark": "message bus throughput",
            "host": _host(),
            "throughput": bench_bus_throughput(args.rounds),
        }
        _write(args.bus_out, record)

    if args.suite in ("all", "enact"):
        host = _host()
        record = {
            "benchmark": "enactment throughput (many_cases workload)",
            "host": host,
            "enact": bench_enact(args.rounds, cases=args.cases),
        }
        _write(args.enact_out, record)
        if args.verify_traces:
            gate = verify_trace_identity(cases=args.cases)
            if not gate["identical"]:
                print(
                    "FAIL: batched and legacy dispatch diverge: "
                    f"{gate.get('first_divergence')}"
                )
                return 1
            print(
                "trace gate passed: batched and legacy dispatch "
                f"byte-identical over {gate['messages_compared']} messages "
                f"({gate['cases']} cases)"
            )
            gate = verify_sharded_trace_identity(cases=args.cases)
            if not gate["identical"]:
                print(
                    "FAIL: unsharded and shards=1 grids diverge: "
                    f"{gate.get('first_divergence')}"
                )
                return 1
            print(
                "shard trace gate passed: unsharded and shards=1 grids "
                f"byte-identical over {gate['messages_compared']} messages "
                f"({gate['cases']} cases)"
            )
            gate = verify_journal_trace_identity(cases=args.cases)
            if not gate["identical"]:
                print(
                    "FAIL: record-only journal diverges from journal-off: "
                    f"{gate.get('first_divergence')}"
                )
                return 1
            print(
                "journal trace gate passed: record-only and journal-off "
                f"byte-identical over {gate['messages_compared']} messages "
                f"({gate['cases']} cases)"
            )
        if args.min_stress_cases_per_s is not None and not enforce_gate(
            "stress floor (--min-stress-cases-per-s)",
            record["enact"]["stress_1k"]["cases_per_s"],
            args.min_stress_cases_per_s,
            host,
            STRESS_REFERENCE["host"],
            mode="min",
            unit=" cases/s",
            fmt="{:.0f}",
        ):
            return 1

    if args.suite in ("all", "shard"):
        host = _host()
        record = {
            "benchmark": "sharded-grid scaling (many_cases workload)",
            "host": host,
            "shard": bench_shard(args.rounds, cases=args.shard_cases),
        }
        _write(args.shard_out, record)
        if not record["shard"]["trace_gate_shards1"]["identical"]:
            print(
                "FAIL: unsharded and shards=1 grids diverge: "
                f"{record['shard']['trace_gate_shards1'].get('first_divergence')}"
            )
            return 1
        if args.min_shard_scaling is not None and not enforce_gate(
            f"{max(SHARD_COUNTS)}-shard scaling (--min-shard-scaling)",
            record["shard"]["scaling_vs_1_shard"][f"shards_{max(SHARD_COUNTS)}"],
            args.min_shard_scaling,
            host,
            SHARD_REFERENCE["host"],
            mode="min",
            unit="x",
        ):
            return 1

    if args.suite in ("all", "analysis"):
        host = _host()
        record = {
            "benchmark": "semantic workflow verifier (analysis package)",
            "host": host,
            "analysis": bench_analysis(args.rounds),
        }
        _write(args.analysis_out, record)
        if args.min_witness_precision is not None and not enforce_gate(
            "race-witness precision (--min-witness-precision)",
            record["analysis"]["race_witness"]["precision"],
            args.min_witness_precision,
            host,
            ANALYSIS_REFERENCE["host"],
            mode="min",
        ):
            return 1

    if args.suite in ("all", "obs"):
        host = _host()
        record = {
            "benchmark": "span telemetry overhead (many_cases workload)",
            "host": host,
            "obs": bench_obs(args.rounds, cases=args.cases),
        }
        _write(args.obs_out, record)
        if args.max_disabled_overhead is not None and not enforce_gate(
            "spans-off disabled-overhead (--max-disabled-overhead)",
            record["obs"]["disabled_overhead_pct"],
            args.max_disabled_overhead,
            host,
            PRE_OBS_BASELINE["host"],
            mode="max",
            unit="%",
            fmt="{:+.1f}",
        ):
            return 1

    if args.suite in ("all", "planlib"):
        host = _host()
        record = {
            "benchmark": "plan library warm-start (plan_mix workload)",
            "host": host,
            "planlib": bench_planlib(),
        }
        _write(args.planlib_out, record)
        gate = record["planlib"]["library_off_identity"]
        if not gate["identical"]:
            print(
                "FAIL: library-off grid diverges from the unwired grid: "
                f"{gate.get('first_divergence')}"
            )
            return 1
        if args.min_warm_speedup is not None and not enforce_gate(
            "warm-hit speedup (--min-warm-speedup)",
            record["planlib"]["warm_speedup_p50"],
            args.min_warm_speedup,
            host,
            PLANLIB_REFERENCE["host"],
            mode="min",
            unit="x",
        ):
            return 1

    if args.suite in ("all", "prov"):
        host = _host()
        record = {
            "benchmark": "case flight recorder (journal + provenance replay)",
            "host": host,
            "prov": bench_prov(args.rounds, cases=args.cases),
        }
        _write(args.prov_out, record)
        gate = record["prov"]["journal_trace_identity"]
        if not gate["identical"]:
            print(
                "FAIL: record-only journal diverges from journal-off: "
                f"{gate.get('first_divergence')}"
            )
            return 1
        agreement = record["prov"]["replay"]["agreement_min"]
        if agreement < 0.95:
            print(
                "FAIL: journal replay disagrees with live spans "
                f"(min agreement {agreement:.3f} < 0.95)"
            )
            return 1
        if args.max_journal_overhead is not None and not enforce_gate(
            "journal-off disabled-overhead (--max-journal-overhead)",
            record["prov"]["journal_disabled_overhead_pct"],
            args.max_journal_overhead,
            host,
            PRE_PROV_BASELINE["host"],
            mode="max",
            unit="%",
            fmt="{:+.1f}",
        ):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
