"""Shared scaffolding for the ``record_bench.py`` suites.

Every suite needs the same four pieces — gc-frozen median timing, a host
fingerprint for the committed JSON, the fingerprint-matched floor/ceiling
gate, and the write-and-echo JSON verdict — and before this module each
new suite copied them.  One definition here keeps the enact / obs /
analysis / shard / planlib suites measuring and gating the same way.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import statistics
import time

__all__ = [
    "enforce_gate",
    "host_fingerprint",
    "same_host",
    "time_fn",
    "trace_rows",
    "write_record",
]


def time_fn(fn, rounds):
    """Median-of-*rounds* wall time of ``fn()`` with the gc frozen.

    Collect before and freeze the collector during each sample: cyclic-gc
    pauses landing inside a sample were the dominant variance source on
    single-core hosts (spreads of 2x for identical configs).
    """
    samples = []
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(rounds):
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
            gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
        else:
            gc.disable()
    return {
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "rounds": rounds,
    }


def host_fingerprint():
    """The host block recorded into every committed BENCH_*.json."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def same_host(host, reference) -> bool:
    """Whether *host* matches a committed reference fingerprint.

    Python patch version is deliberately excluded: medians are comparable
    across interpreter patches, not across CPU budgets or kernels.
    """
    return (
        host["cpu_count"] == reference["cpu_count"]
        and host["platform"] == reference["platform"]
    )


def enforce_gate(
    label,
    value,
    bound,
    host,
    reference_host,
    *,
    mode="min",
    unit="",
    fmt="{:.2f}",
) -> bool:
    """Host-fingerprinted performance gate.

    Skips (and passes) when *host* does not match *reference_host* —
    cross-host medians say nothing about regression.  Otherwise requires
    ``value >= bound`` (``mode="min"``) or ``value <= bound``
    (``mode="max"``).  Prints the verdict either way and returns False
    only on an enforced failure, so callers can ``return 1``.
    """
    if not same_host(host, reference_host):
        print(
            f"{label} gate skipped: host differs from the reference host "
            f"({host['cpu_count']} cpus, {host['platform']})"
        )
        return True
    shown = fmt.format(value)
    failed = value < bound if mode == "min" else value > bound
    if failed:
        verb = "is below" if mode == "min" else "exceeds"
        print(f"FAIL: {label} {shown}{unit} {verb} the {bound}{unit} bound")
        return False
    relation = ">=" if mode == "min" else "<="
    print(f"{label} gate passed: {shown}{unit} {relation} {bound}{unit}")
    return True


def trace_rows(env):
    """Every delivered message of *env* as a comparable tuple row.

    The byte-identity gates compare these rows (plus workload outcomes):
    time, endpoints, performative, action, conversation / message / trace
    / parent ids and the repr of the content.
    """
    return [
        (
            event.time,
            message.sender,
            message.receiver,
            message.performative.value,
            message.action,
            message.conversation,
            message.message_id,
            message.trace_id,
            message.parent_id,
            repr(message.content),
        )
        for event in env.router.trace.events()
        for message in (event.message,)
    ]


def write_record(path, record):
    """Write the suite verdict JSON and echo it to stdout."""
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {path}")
