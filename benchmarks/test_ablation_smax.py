"""Ablation A2 — the Smax bloat bound (at the paper's full budget)."""

from repro.experiments import smax_sweep
from repro.planner import GPConfig

from benchmarks.conftest import run_once

CFG = GPConfig()  # full Table-1 settings


def test_ablation_smax(benchmark, show):
    table = run_once(
        benchmark,
        lambda: smax_sweep(seeds=range(3), smax_values=(20, 40, 80), config=CFG),
    )
    show(table)
    sizes = dict(zip(table.column("Smax"), table.column("avg size")))
    solve = dict(zip(table.column("Smax"), table.column("solve rate")))
    # Plans always respect the bound.
    for smax, size in sizes.items():
        assert size <= smax
    # Smax = 40 (the paper's choice) solves reliably at the paper's budget.
    assert solve[40] >= 2 / 3
