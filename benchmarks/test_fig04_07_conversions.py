"""Figures 4-7 — process description <-> plan tree conversion motifs."""

from repro.experiments import fig4_to_7_conversions

from benchmarks.conftest import run_once


def test_fig04_07_conversions(benchmark, show):
    table = run_once(benchmark, fig4_to_7_conversions)
    show(table)
    assert table.column("Round-trip") == ["ok"] * 4
    trees = dict(zip(table.column("Figure"), table.column("Plan tree")))
    assert trees["Figure 4 (sequential)"] == "Sequential[A, B, C]"
    assert trees["Figure 5 (concurrent)"] == "Concurrent[A, B]"
    assert trees["Figure 6 (selective)"] == "Selective[A, B]"
    assert trees["Figure 7 (iterative)"] == "Iterative[A, B]"
