"""The ``many_cases`` enactment workload: K concurrent cases, one workflow.

A production coordination service is "a proxy for the end-user" — it does
not enact one case at a time but many concurrently, usually instances of
the *same* process description (the paper's case study is one workflow
that every virology user runs against their own data).  This workload
reproduces that shape on the simulated grid:

* one shared process description — ingest, a three-way fork, an iterative
  refinement loop steered by a live case-data condition, and a final
  Choice between a fast and a full publishing route;
* K cases, each with its own initial data (half take the fast route, half
  the full route), all enacted concurrently by one coordination service;
* a container fleet that hosts every end-user service, so matchmaking and
  scheduling run the full candidate-ranking path on every dispatch.

It is the benchmark workload for the enactment throughput layer (see
``benchmarks/record_bench.py --suite enact``): the same workflow enacted
K times is exactly the case the coordinator's compiled-program cache, the
matchmaker's candidate cache and the router fast path are built for.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.errors import WorkloadError
from repro.grid.container import EndUserService
from repro.grid.sharding import ShardRing
from repro.process.builder import WorkflowBuilder
from repro.process.conditions import Atom, Relation
from repro.process.model import Activity, ProcessDescription
from repro.services.bootstrap import sharded_environment, standard_environment

__all__ = [
    "many_cases_process",
    "many_cases_services",
    "many_cases_initial_data",
    "run_many_cases",
]


def _refine(props: dict[str, dict], payloads: dict[str, Any]):
    """One refinement pass: bump the model's Round counter (real data flow
    through the containers — the loop condition reads what this returns)."""
    current = int(props.get("model", {}).get("Round", 0))
    return {"model": {"Status": "ready", "Round": current + 1}}, {}


def many_cases_process(rounds: int = 3) -> ProcessDescription:
    """The shared workflow: ingest -> fork(3 parts) -> refine loop -> choice."""
    library = {
        "ingest": Activity("ingest", inputs=("src",), outputs=("base",)),
        "partA": Activity("partA", inputs=("base",), outputs=("pA",)),
        "partB": Activity("partB", inputs=("base",), outputs=("pB",)),
        "partC": Activity("partC", inputs=("base",), outputs=("pC",)),
        "refine": Activity(
            "refine", inputs=("pA", "pB", "pC", "model"), outputs=("model",)
        ),
        "publish_fast": Activity(
            "publish_fast", inputs=("model",), outputs=("out",)
        ),
        "publish_full": Activity(
            "publish_full", inputs=("model", "base"), outputs=("out",)
        ),
    }
    return (
        WorkflowBuilder(f"many-cases-{rounds}r")
        .activity("ingest")
        .fork(
            lambda b: b.activity("partA"),
            lambda b: b.activity("partB"),
            lambda b: b.activity("partC"),
        )
        .loop(Atom("model", "Round", Relation.LT, rounds), lambda b: b.activity("refine"))
        .choice(
            (
                Atom("src", "Mode", Relation.EQ, "fast"),
                lambda b: b.activity("publish_fast"),
            ),
            (None, lambda b: b.activity("publish_full")),
        )
        .build(library)
    )


def many_cases_services() -> list[EndUserService]:
    """End-user service definitions behind the workflow's activities."""
    ready = {"Status": "ready"}
    return [
        EndUserService("ingest", work=4.0, effects={"base": dict(ready)}),
        EndUserService("partA", work=6.0, effects={"pA": dict(ready)}),
        EndUserService("partB", work=6.0, effects={"pB": dict(ready)}),
        EndUserService("partC", work=6.0, effects={"pC": dict(ready)}),
        EndUserService("refine", work=5.0, compute=_refine),
        EndUserService("publish_fast", work=2.0, effects={"out": dict(ready)}),
        EndUserService(
            "publish_full", work=8.0, effects={"out": {"Status": "ready", "Archived": True}}
        ),
    ]


def many_cases_initial_data(index: int) -> dict[str, dict]:
    """Case *index*'s initial data; alternates the publishing route."""
    return {"src": {"Status": "ready", "Mode": "fast" if index % 2 == 0 else "full"}}


def run_many_cases(
    cases: int = 32,
    containers: int = 4,
    rounds: int = 3,
    tracing: bool = True,
    match_cache_ttl: float = 0.0,
    sched_cache_ttl: float = 0.0,
    coord_cache_ttl: float = 0.0,
    program_cache_size: int | None = None,
    max_events: int = 20_000_000,
    spans: bool = False,
    journal: bool | str = False,
    gauge_period: float = 0.0,
    batched: bool = True,
    coalesce: bool = False,
    metrics: bool = True,
    async_reports: bool = False,
    parallel: int = 0,
    first_case: int = 0,
    shards: int = 0,
    case_indices: Sequence[int] | None = None,
) -> dict[str, Any]:
    """Enact *cases* concurrent instances of the shared workflow.

    The throughput knobs map onto the enactment fast paths:
    ``tracing=False`` selects the router fast path (no TraceEvents),
    ``match_cache_ttl`` enables the matchmaker candidate cache,
    ``sched_cache_ttl`` the scheduler's candidate-fact cache and
    ``coord_cache_ttl`` the coordinator's ranked-match cache (all three
    wire up the broker's registry-changed push for invalidation), and
    ``program_cache_size`` overrides the coordinator's compiled-program
    cache (0 recompiles per enactment — the pre-compilation baseline).
    ``batched=False`` opts out of the engine's same-tick batch dispatch
    (the legacy heap kernel; the trace-identity gate compares both),
    ``coalesce=True`` resumes fired signals' waiters directly instead of
    through zero-delay wakeup events (deterministic, but intra-tick
    interleaving — and thus id streams — differ from the default), and
    ``metrics=False`` stops counter/histogram recording (trace-safe:
    metrics never influence behaviour; the returned ``counters`` are
    then all zero), and ``async_reports=True`` turns the coordinator's
    per-activity broker performance reports into one-way notifications.
    The two observability knobs: ``spans=True`` records workflow spans
    (``repro trace export`` / ``repro profile`` run on this), and
    ``gauge_period > 0`` samples sim-time gauges at that period.

    ``parallel=N`` (N > 1) partitions the case population into N
    contiguous shards and enacts each shard in its own process with its
    own environment — the multi-environment driver for very large
    populations.  Shard results merge deterministically (outcomes in
    global case order, counters summed, makespan = the slowest shard);
    ``env``/``services``/``fleet`` are ``None`` in the merged result
    since live environments do not cross process boundaries.  When a
    worker pool cannot be spawned the driver degrades to a serial
    in-process run of the same shards and reports ``pool_error``.

    ``first_case`` offsets the global case index (shard workers use it so
    every case keeps its population-level initial data and task name).

    ``shards=N`` (N > 1) runs the **sharded grid** instead: cases are
    assigned to N coordination shards by consistent hash of their case id
    (``case-<index>`` on the :class:`~repro.grid.sharding.ShardRing` over
    labels ``s0..s{N-1}`` — a fixed, population-independent mapping), and
    each shard enacts its slice in its own process with its own shard
    group.  Results merge exactly like ``parallel``'s.  ``shards=1`` runs
    serially in-process on a single-shard
    :func:`~repro.services.bootstrap.sharded_environment`, whose message
    stream is byte-identical to the unsharded grid — the trace-identity
    gate for the sharded bootstrap.  ``shards`` and ``parallel`` are
    mutually exclusive.  ``case_indices`` (used by shard workers) names
    the exact global case indices to enact, overriding the contiguous
    ``first_case`` range.

    Returns ``env``, ``services``, ``outcomes`` (per-case replies) and
    summary counts.  Raises :class:`WorkloadError` when any case fails —
    the workload is deterministic and must always complete.
    """
    if cases < 1:
        raise WorkloadError("many_cases needs at least one case")
    if case_indices is not None and len(case_indices) != cases:
        raise WorkloadError(
            f"many_cases: {cases} cases but {len(case_indices)} case_indices"
        )
    if shards > 1 and parallel > 1:
        raise WorkloadError("many_cases: shards and parallel are exclusive")
    if shards > 1:
        return _run_many_cases_sharded(
            cases=cases,
            containers=containers,
            rounds=rounds,
            tracing=tracing,
            match_cache_ttl=match_cache_ttl,
            sched_cache_ttl=sched_cache_ttl,
            coord_cache_ttl=coord_cache_ttl,
            program_cache_size=program_cache_size,
            max_events=max_events,
            spans=spans,
            journal=journal,
            gauge_period=gauge_period,
            batched=batched,
            coalesce=coalesce,
            metrics=metrics,
            async_reports=async_reports,
            first_case=first_case,
            shards=shards,
        )
    if parallel > 1:
        return _run_many_cases_parallel(
            cases=cases,
            containers=containers,
            rounds=rounds,
            tracing=tracing,
            match_cache_ttl=match_cache_ttl,
            sched_cache_ttl=sched_cache_ttl,
            coord_cache_ttl=coord_cache_ttl,
            program_cache_size=program_cache_size,
            max_events=max_events,
            spans=spans,
            journal=journal,
            gauge_period=gauge_period,
            batched=batched,
            coalesce=coalesce,
            metrics=metrics,
            async_reports=async_reports,
            parallel=parallel,
            first_case=first_case,
        )
    if shards == 1:
        grid = sharded_environment(
            many_cases_services(), shards=1, containers=containers,
            tracing=tracing, spans=spans, journal=journal,
            batched=batched, coalesce=coalesce,
        )
        env, services, fleet = grid.env, grid.services, grid.fleet
    else:
        env, services, fleet = standard_environment(
            many_cases_services(), containers=containers, tracing=tracing,
            spans=spans, journal=journal, batched=batched, coalesce=coalesce,
        )
    if not metrics:
        env.metrics.enabled = False
    if async_reports:
        services.coordination.async_reports = True
    if gauge_period > 0.0:
        env.attach_gauges(period=gauge_period)
    if program_cache_size is not None:
        services.coordination.program_cache_size = program_cache_size
    if match_cache_ttl > 0.0:
        services.matchmaking.enable_candidate_cache(
            match_cache_ttl, broker=services.brokerage
        )
    if sched_cache_ttl > 0.0:
        services.scheduling.enable_fact_cache(
            sched_cache_ttl, broker=services.brokerage
        )
    if coord_cache_ttl > 0.0:
        services.coordination.enable_match_cache(
            coord_cache_ttl, broker=services.brokerage
        )
    process = many_cases_process(rounds)
    outcomes: list[dict[str, Any] | None] = [None] * cases
    indices = (
        list(case_indices)
        if case_indices is not None
        else [first_case + index for index in range(cases)]
    )

    def enact_case(slot: int, index: int):
        reply = yield from services.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": process,
                "initial_data": many_cases_initial_data(index),
                "task": f"case-{index}",
            },
        )
        outcomes[slot] = reply

    for slot, index in enumerate(indices):
        env.engine.spawn(enact_case(slot, index), name=f"user-{index}")
    env.run(max_events=max_events)

    completed = sum(
        1 for o in outcomes if o is not None and o.get("status") == "completed"
    )
    if completed != cases:
        raise WorkloadError(
            f"many_cases: only {completed}/{cases} cases completed"
        )
    registry = env.metrics
    return {
        "env": env,
        "services": services,
        "fleet": fleet,
        "outcomes": outcomes,
        "cases": cases,
        "completed": completed,
        "activities_run": sum(o["activities_run"] for o in outcomes),
        "messages": env.trace.total_recorded,
        "makespan": env.engine.now,
        "engine_events": env.engine.events_processed,
        "spans": {
            "enabled": env.spans.enabled,
            "started": env.spans.total_started,
            "closed": env.spans.total_closed,
            "open": env.spans.open_count,
            "evicted": env.spans.evicted,
        },
        "journal": env.journal.stats(),
        "counters": {
            "program_cache_hit": registry.total("program_cache_hit"),
            "program_cache_miss": registry.total("program_cache_miss"),
            "match_cache_hit": registry.total("match_cache_hit"),
            "match_cache_miss": registry.total("match_cache_miss"),
            "match_cache_join": registry.total("match_cache_join"),
            "sched_fact_cache_hit": registry.total("sched_fact_cache_hit"),
            "sched_fact_cache_miss": registry.total("sched_fact_cache_miss"),
            "sched_fact_cache_join": registry.total("sched_fact_cache_join"),
            "coord_match_cache_hit": registry.total("coord_match_cache_hit"),
            "coord_match_cache_miss": registry.total("coord_match_cache_miss"),
            "coord_match_cache_join": registry.total("coord_match_cache_join"),
            "messages_sent": registry.total("messages_sent"),
            "messages_delivered": registry.total("messages_delivered"),
        },
    }


# -- multi-environment parallel driver ------------------------------------- #
def _shard_bounds(cases: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous (first_case, size) shards covering ``range(cases)``;
    earlier shards take the remainder so sizes differ by at most one."""
    shards = max(1, min(shards, cases))
    base, extra = divmod(cases, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, size))
        start += size
    return bounds


def _run_shard(kwargs: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: one serial shard, summarized picklably.

    Top-level (not a closure) so it crosses the process boundary; the
    live environment stays behind — only plain data comes back.
    """
    result = run_many_cases(**kwargs)
    return {
        "outcomes": result["outcomes"],
        "cases": result["cases"],
        "completed": result["completed"],
        "activities_run": result["activities_run"],
        "messages": result["messages"],
        "makespan": result["makespan"],
        "engine_events": result["engine_events"],
        "counters": result["counters"],
        "journal": result["journal"],
    }


def _merge_journal_stats(summaries: list[dict[str, Any]]) -> dict[str, Any]:
    """Sum per-shard journal accounting (counts add; enablement agrees
    across shards by construction)."""
    merged = {
        "enabled": any(s["journal"]["enabled"] for s in summaries),
        "mirror": any(s["journal"]["mirror"] for s in summaries),
    }
    for key in (
        "cases", "events", "appended", "flushed", "cases_evicted",
        "events_evicted", "events_lost", "unbound_dropped", "cases_synced",
    ):
        merged[key] = sum(s["journal"][key] for s in summaries)
    return merged


def _run_many_cases_parallel(
    *, cases: int, parallel: int, first_case: int, **workload: Any
) -> dict[str, Any]:
    """Partition the population into contiguous shards, enact each in its
    own process, and merge deterministically (shard order == case order)."""
    bounds = _shard_bounds(cases, parallel)
    shard_kwargs = [
        dict(
            workload,
            cases=size,
            first_case=first_case + start,
            parallel=0,
        )
        for start, size in bounds
    ]
    pool_error: str | None = None
    summaries: list[dict[str, Any]] | None = None
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=len(bounds)) as pool:
            # map() preserves submission order, so the merge below sees
            # shards exactly in global case order regardless of which
            # worker finishes first.
            summaries = list(pool.map(_run_shard, shard_kwargs))
    except Exception as exc:  # pragma: no cover - depends on host sandboxing
        pool_error = f"{type(exc).__name__}: {exc}"
        summaries = None
    if summaries is None:
        # Deterministic fallback: the same shards, serially, in-process —
        # identical merged outcomes, just no wall-clock overlap.
        summaries = [_run_shard(kwargs) for kwargs in shard_kwargs]

    outcomes: list[dict[str, Any] | None] = []
    counters: dict[str, int] = {}
    for summary in summaries:
        outcomes.extend(summary["outcomes"])
        for key, value in summary["counters"].items():
            counters[key] = counters.get(key, 0) + value
    completed = sum(summary["completed"] for summary in summaries)
    if completed != cases:
        raise WorkloadError(
            f"many_cases: only {completed}/{cases} cases completed"
        )
    return {
        "env": None,
        "services": None,
        "fleet": None,
        "outcomes": outcomes,
        "cases": cases,
        "completed": completed,
        "activities_run": sum(s["activities_run"] for s in summaries),
        "messages": sum(s["messages"] for s in summaries),
        "makespan": max(s["makespan"] for s in summaries),
        "engine_events": sum(s["engine_events"] for s in summaries),
        "parallel": len(bounds),
        "shards": [
            {"first_case": start, "cases": size}
            for start, size in bounds
        ],
        "pool_error": pool_error,
        "spans": {
            "enabled": False,
            "started": 0,
            "closed": 0,
            "open": 0,
            "evicted": 0,
        },
        "journal": _merge_journal_stats(summaries),
        "counters": counters,
    }


# -- sharded-grid driver ----------------------------------------------------- #
def shard_assignment(
    cases: int, shards: int, first_case: int = 0
) -> dict[str, list[int]]:
    """Global case indices per shard label, by consistent hash of the case
    id (``case-<index>``) over the ring of labels ``s0..s{shards-1}``.

    The mapping depends only on the case id and the shard count — never on
    the population size or enactment order — so any observer (the CLI, the
    bench, a test) can recompute where a case ran.
    """
    ring = ShardRing([f"s{index}" for index in range(shards)])
    assignment: dict[str, list[int]] = {label: [] for label in ring.shards}
    for index in range(first_case, first_case + cases):
        assignment[ring.owner(f"case-{index}")].append(index)
    return assignment


def _run_many_cases_sharded(
    *, cases: int, shards: int, first_case: int, **workload: Any
) -> dict[str, Any]:
    """Enact the population on the sharded grid: one process per shard,
    cases assigned by consistent hash, results merged deterministically."""
    assignment = shard_assignment(cases, shards, first_case)
    populated = [
        (label, indices) for label, indices in assignment.items() if indices
    ]
    shard_kwargs = [
        dict(
            workload,
            cases=len(indices),
            case_indices=indices,
            first_case=0,
            shards=1,
            parallel=0,
        )
        for _, indices in populated
    ]
    pool_error: str | None = None
    summaries: list[dict[str, Any]] | None = None
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=len(populated)) as pool:
            summaries = list(pool.map(_run_shard, shard_kwargs))
    except Exception as exc:  # pragma: no cover - depends on host sandboxing
        pool_error = f"{type(exc).__name__}: {exc}"
        summaries = None
    if summaries is None:
        summaries = [_run_shard(kwargs) for kwargs in shard_kwargs]

    # Outcomes go back into global case order regardless of which shard
    # carried them (the hash assignment interleaves indices).
    outcomes: list[dict[str, Any] | None] = [None] * cases
    counters: dict[str, int] = {}
    for (label, indices), summary in zip(populated, summaries):
        for index, outcome in zip(indices, summary["outcomes"]):
            outcomes[index - first_case] = outcome
        for key, value in summary["counters"].items():
            counters[key] = counters.get(key, 0) + value
    completed = sum(summary["completed"] for summary in summaries)
    if completed != cases:
        raise WorkloadError(
            f"many_cases: only {completed}/{cases} cases completed"
        )
    return {
        "env": None,
        "services": None,
        "fleet": None,
        "outcomes": outcomes,
        "cases": cases,
        "completed": completed,
        "activities_run": sum(s["activities_run"] for s in summaries),
        "messages": sum(s["messages"] for s in summaries),
        "makespan": max(s["makespan"] for s in summaries),
        "engine_events": sum(s["engine_events"] for s in summaries),
        "sharded": shards,
        "shards": [
            {"shard": label, "cases": len(indices)}
            for label, indices in populated
        ],
        "pool_error": pool_error,
        "spans": {
            "enabled": False,
            "started": 0,
            "closed": 0,
            "open": 0,
            "evicted": 0,
        },
        "journal": _merge_journal_stats(summaries),
        "counters": counters,
    }
