"""The ``many_cases`` enactment workload: K concurrent cases, one workflow.

A production coordination service is "a proxy for the end-user" — it does
not enact one case at a time but many concurrently, usually instances of
the *same* process description (the paper's case study is one workflow
that every virology user runs against their own data).  This workload
reproduces that shape on the simulated grid:

* one shared process description — ingest, a three-way fork, an iterative
  refinement loop steered by a live case-data condition, and a final
  Choice between a fast and a full publishing route;
* K cases, each with its own initial data (half take the fast route, half
  the full route), all enacted concurrently by one coordination service;
* a container fleet that hosts every end-user service, so matchmaking and
  scheduling run the full candidate-ranking path on every dispatch.

It is the benchmark workload for the enactment throughput layer (see
``benchmarks/record_bench.py --suite enact``): the same workflow enacted
K times is exactly the case the coordinator's compiled-program cache, the
matchmaker's candidate cache and the router fast path are built for.
"""

from __future__ import annotations

from typing import Any

from repro.errors import WorkloadError
from repro.grid.container import EndUserService
from repro.process.builder import WorkflowBuilder
from repro.process.conditions import Atom, Relation
from repro.process.model import Activity, ProcessDescription
from repro.services.bootstrap import standard_environment

__all__ = [
    "many_cases_process",
    "many_cases_services",
    "many_cases_initial_data",
    "run_many_cases",
]


def _refine(props: dict[str, dict], payloads: dict[str, Any]):
    """One refinement pass: bump the model's Round counter (real data flow
    through the containers — the loop condition reads what this returns)."""
    current = int(props.get("model", {}).get("Round", 0))
    return {"model": {"Status": "ready", "Round": current + 1}}, {}


def many_cases_process(rounds: int = 3) -> ProcessDescription:
    """The shared workflow: ingest -> fork(3 parts) -> refine loop -> choice."""
    library = {
        "ingest": Activity("ingest", inputs=("src",), outputs=("base",)),
        "partA": Activity("partA", inputs=("base",), outputs=("pA",)),
        "partB": Activity("partB", inputs=("base",), outputs=("pB",)),
        "partC": Activity("partC", inputs=("base",), outputs=("pC",)),
        "refine": Activity(
            "refine", inputs=("pA", "pB", "pC", "model"), outputs=("model",)
        ),
        "publish_fast": Activity(
            "publish_fast", inputs=("model",), outputs=("out",)
        ),
        "publish_full": Activity(
            "publish_full", inputs=("model", "base"), outputs=("out",)
        ),
    }
    return (
        WorkflowBuilder(f"many-cases-{rounds}r")
        .activity("ingest")
        .fork(
            lambda b: b.activity("partA"),
            lambda b: b.activity("partB"),
            lambda b: b.activity("partC"),
        )
        .loop(Atom("model", "Round", Relation.LT, rounds), lambda b: b.activity("refine"))
        .choice(
            (
                Atom("src", "Mode", Relation.EQ, "fast"),
                lambda b: b.activity("publish_fast"),
            ),
            (None, lambda b: b.activity("publish_full")),
        )
        .build(library)
    )


def many_cases_services() -> list[EndUserService]:
    """End-user service definitions behind the workflow's activities."""
    ready = {"Status": "ready"}
    return [
        EndUserService("ingest", work=4.0, effects={"base": dict(ready)}),
        EndUserService("partA", work=6.0, effects={"pA": dict(ready)}),
        EndUserService("partB", work=6.0, effects={"pB": dict(ready)}),
        EndUserService("partC", work=6.0, effects={"pC": dict(ready)}),
        EndUserService("refine", work=5.0, compute=_refine),
        EndUserService("publish_fast", work=2.0, effects={"out": dict(ready)}),
        EndUserService(
            "publish_full", work=8.0, effects={"out": {"Status": "ready", "Archived": True}}
        ),
    ]


def many_cases_initial_data(index: int) -> dict[str, dict]:
    """Case *index*'s initial data; alternates the publishing route."""
    return {"src": {"Status": "ready", "Mode": "fast" if index % 2 == 0 else "full"}}


def run_many_cases(
    cases: int = 32,
    containers: int = 4,
    rounds: int = 3,
    tracing: bool = True,
    match_cache_ttl: float = 0.0,
    program_cache_size: int | None = None,
    max_events: int = 20_000_000,
    spans: bool = False,
    gauge_period: float = 0.0,
) -> dict[str, Any]:
    """Enact *cases* concurrent instances of the shared workflow.

    The three throughput knobs map onto the enactment fast paths:
    ``tracing=False`` selects the router fast path (no TraceEvents),
    ``match_cache_ttl`` enables the matchmaker candidate cache (with the
    broker's registry-changed push wired up for invalidation), and
    ``program_cache_size`` overrides the coordinator's compiled-program
    cache (0 recompiles per enactment — the pre-compilation baseline).
    The two observability knobs: ``spans=True`` records workflow spans
    (``repro trace export`` / ``repro profile`` run on this), and
    ``gauge_period > 0`` samples sim-time gauges at that period.

    Returns ``env``, ``services``, ``outcomes`` (per-case replies) and
    summary counts.  Raises :class:`WorkloadError` when any case fails —
    the workload is deterministic and must always complete.
    """
    if cases < 1:
        raise WorkloadError("many_cases needs at least one case")
    env, services, fleet = standard_environment(
        many_cases_services(), containers=containers, tracing=tracing,
        spans=spans,
    )
    if gauge_period > 0.0:
        env.attach_gauges(period=gauge_period)
    if program_cache_size is not None:
        services.coordination.program_cache_size = program_cache_size
    if match_cache_ttl > 0.0:
        services.matchmaking.enable_candidate_cache(
            match_cache_ttl, broker=services.brokerage
        )
    process = many_cases_process(rounds)
    outcomes: list[dict[str, Any] | None] = [None] * cases

    def enact_case(index: int):
        reply = yield from services.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": process,
                "initial_data": many_cases_initial_data(index),
                "task": f"case-{index}",
            },
        )
        outcomes[index] = reply

    for index in range(cases):
        env.engine.spawn(enact_case(index), name=f"user-{index}")
    env.run(max_events=max_events)

    completed = sum(
        1 for o in outcomes if o is not None and o.get("status") == "completed"
    )
    if completed != cases:
        raise WorkloadError(
            f"many_cases: only {completed}/{cases} cases completed"
        )
    metrics = env.metrics
    return {
        "env": env,
        "services": services,
        "fleet": fleet,
        "outcomes": outcomes,
        "cases": cases,
        "completed": completed,
        "activities_run": sum(o["activities_run"] for o in outcomes),
        "messages": env.trace.total_recorded,
        "makespan": env.engine.now,
        "engine_events": env.engine.events_processed,
        "spans": {
            "enabled": env.spans.enabled,
            "started": env.spans.total_started,
            "closed": env.spans.total_closed,
            "open": env.spans.open_count,
            "evicted": env.spans.evicted,
        },
        "counters": {
            "program_cache_hit": metrics.total("program_cache_hit"),
            "program_cache_miss": metrics.total("program_cache_miss"),
            "match_cache_hit": metrics.total("match_cache_hit"),
            "match_cache_miss": metrics.total("match_cache_miss"),
            "messages_sent": metrics.total("messages_sent"),
            "messages_delivered": metrics.total("messages_delivered"),
        },
    }
