"""The ``plan_mix`` planning workload: a repeated-goal planning request mix.

A production planning service does not see a stream of novel problems —
it sees the *same* few workflows requested over and over by different
users (the paper's case study is one virology pipeline every user runs),
with occasional goal variations and, rarely, a genuinely new shape.  This
workload reproduces that traffic against the plan library
(:mod:`repro.planner.library`):

* one activity set T (fetch → clean → analyze → publish/backup → archive)
  shared by every request, so all requests share one ``problem_digest``;
* ``distinct`` goal variants cycled over ``requests`` sequential planning
  RPCs — the first occurrence of each variant is a library **miss** (or a
  **seed**, when it overlaps an earlier variant's goals), every repeat is
  a verified **hit**;
* an optional mid-run service kill (``kill_after``): the registered
  Service instance behind the publish activity the stored plan actually
  uses is removed from the knowledge base, so the next hit re-verifies
  stale (E501), is locally **repaired** by swapping exactly the flagged
  terminals to the backup publisher, and the repaired entry is re-stored.

Per-request *wall-clock* planning latency is measured around each RPC
(the driver issues requests strictly sequentially, so each latency is one
planning exchange), which is what ``record_bench.py --suite planlib``
turns into the cold-vs-warm percentile comparison.
"""

from __future__ import annotations

import time
from typing import Any

from repro.errors import WorkloadError
from repro.grid.container import EndUserService
from repro.ontology.builtin import SERVICE, builtin_shell
from repro.ontology.frames import KnowledgeBase
from repro.planner.config import GPConfig
from repro.planner.library import PlanLibrary, goal_signature, problem_digest
from repro.planner.problem import ActivitySpec, PlanningProblem
from repro.process.conditions import Atom, Relation
from repro.services.bootstrap import standard_environment

__all__ = [
    "plan_mix_activities",
    "plan_mix_goals",
    "plan_mix_kb",
    "plan_mix_problem",
    "plan_mix_services",
    "run_plan_mix",
]


def _has(data: str) -> Atom:
    return Atom(data, "Status", Relation.EQ, "ready")


def _ready(*names: str) -> dict[str, dict]:
    return {name: {"Status": "ready"} for name in names}


def plan_mix_activities() -> list[ActivitySpec]:
    """The shared activity set T.

    ``publish`` and ``publish_backup`` are deliberate substitutes — same
    inputs, same effects, different grid service — so a vanished publisher
    always leaves the repair pass a viable terminal swap.  Likewise
    ``analyze_a``/``analyze_b`` for the insight step.
    """
    return [
        ActivitySpec("fetch", precondition=_has("src"), effects=_ready("raw")),
        ActivitySpec("clean", precondition=_has("raw"), effects=_ready("tidy")),
        ActivitySpec(
            "analyze_a", precondition=_has("tidy"), effects=_ready("insight")
        ),
        ActivitySpec(
            "analyze_b", precondition=_has("tidy"), effects=_ready("insight")
        ),
        ActivitySpec(
            "publish", precondition=_has("insight"), effects=_ready("report")
        ),
        ActivitySpec(
            "publish_backup",
            precondition=_has("insight"),
            effects=_ready("report"),
        ),
        ActivitySpec(
            "archive", precondition=_has("report"), effects=_ready("archived")
        ),
    ]


def plan_mix_goals(variant: int) -> tuple[Atom, ...]:
    """Goal variant *variant* (cycled modulo 4).

    Every variant states its intermediate milestones as explicit subgoals
    (Eq. 2 scores the satisfied fraction, so milestones give the GP a
    gradient toward the chain instead of an all-or-nothing jackpot).  The
    variants share subgoals pairwise, so later first-occurrences retrieve
    earlier entries as near-misses and plan as **seeds**; variant 0 is the
    one honest **miss** of a cold library.
    """
    base = variant % 4
    if base == 0:
        return (_has("insight"), _has("report"))
    if base == 1:
        return (_has("insight"), _has("report"), _has("archived"))
    if base == 2:
        return (_has("tidy"), _has("insight"))
    return (_has("raw"), _has("tidy"))


def plan_mix_problem(variant: int) -> PlanningProblem:
    return PlanningProblem.build(
        f"plan-mix-v{variant % 4}",
        _ready("src"),
        plan_mix_goals(variant),
        plan_mix_activities(),
    )


def plan_mix_services() -> list[EndUserService]:
    """End-user service definitions matching T (one per activity)."""
    return [
        EndUserService(spec.name, work=5.0, effects=dict(spec.effects))
        for spec in plan_mix_activities()
    ]


def plan_mix_kb() -> KnowledgeBase:
    """A knowledge base with one Service instance per activity of T."""
    kb = builtin_shell("plan-mix-ontology")
    for spec in plan_mix_activities():
        service = spec.service or spec.name
        kb.new_instance(
            SERVICE,
            {"Name": service, "Type": "End-user"},
            id=f"SVC-{service}",
        )
    return kb


def _kill_used_publisher(
    library: PlanLibrary, kb: KnowledgeBase, variant: int = 0
) -> str | None:
    """Remove the Service instance behind the publisher the stored plan
    for *variant* actually uses, staling that entry for the repair pass."""
    problem = plan_mix_problem(variant)
    entry = library.get(
        problem_digest(problem), goal_signature(problem.goals), touch=False
    )
    if entry is None:
        return None
    used = entry.plan.activities()
    for candidate in ("publish", "publish_backup"):
        if candidate in used:
            kb.remove_instance(f"SVC-{candidate}")
            return candidate
    return None


def run_plan_mix(
    requests: int = 24,
    distinct: int = 4,
    library: str = "on",
    population_size: int = 40,
    generations: int = 8,
    smax: int = 12,
    kill_after: int | None = None,
    max_entries: int = 256,
    containers: int = 2,
    planner_seed: int = 0,
    tracing: bool = True,
    spans: bool = False,
    journal: bool | str = False,
    enact: bool = False,
    wire_disabled_library: bool = False,
    max_events: int = 20_000_000,
) -> dict[str, Any]:
    """Issue *requests* sequential planning RPCs over the repeated-goal mix.

    ``library="on"`` wires a :class:`PlanLibrary` plus the knowledge base
    into the planning service and runs the full retrieve → verify →
    repair → seed ladder; ``library="off"`` runs the identical request
    schedule against plain per-request GP (the cold baseline — and the
    bit-identity reference, since an off-library grid must behave exactly
    like one with no library wired at all).  ``kill_after=r`` stales the
    variant-0 entry after request *r* (see :func:`_kill_used_publisher`).
    ``wire_disabled_library=True`` wires a library and knowledge base even
    with ``library="off"`` — one half of the bit-identity gate pair.

    Returns per-request wall-clock ``latencies`` (seconds), the reply
    ``sources`` (``hit``/``repair``/``seed``/``miss``, or None with the
    library off), the ``planlib_*`` metric counters, library stats, and
    the fitness telemetry of every reply.

    ``enact=True`` sends each request through coordination's
    ``execute-task`` (problem only, no process — the Figure-2 "Need
    Planning" path) as case ``mix-<index>``, so the planned processes
    are actually enacted on the fleet; combined with ``journal=True``
    this is the flight-recorder acceptance workload — every case's
    journal carries its ``plan`` event (with the library ``source``) and
    a full dispatch/execute/transfer record that
    :func:`repro.obs.provenance.journal_replay` can rebuild from storage
    alone.  ``sources`` then comes from the journal rather than the
    enactment replies.
    """
    if requests < 1:
        raise WorkloadError("plan_mix needs at least one request")
    if distinct < 1:
        raise WorkloadError("plan_mix needs at least one distinct variant")
    config = GPConfig(
        population_size=population_size,
        generations=generations,
        smax=smax,
        library=library,
    )
    wired = library == "on" or wire_disabled_library
    plan_library = PlanLibrary(max_entries=max_entries) if wired else None
    kb = plan_mix_kb() if wired else None
    env, services, fleet = standard_environment(
        plan_mix_services(),
        containers=containers,
        planner_config=config,
        planner_seed=planner_seed,
        tracing=tracing,
        spans=spans,
        journal=journal,
        plan_library=plan_library,
        knowledge_base=kb,
    )

    # First `distinct` requests introduce each variant; the rest repeat
    # them round-robin — the repeated-goal shape of production planning
    # traffic.
    schedule = [
        index if index < distinct else index % distinct
        for index in range(requests)
    ]
    latencies: list[float] = [0.0] * requests
    replies: list[dict[str, Any] | None] = [None] * requests
    killed: list[str | None] = [None]

    def drive():
        for index, variant in enumerate(schedule):
            if (
                kill_after is not None
                and index == kill_after
                and plan_library is not None
                and kb is not None
            ):
                killed[0] = _kill_used_publisher(plan_library, kb)
            started = time.perf_counter()
            if enact:
                reply = yield from services.coordination.call(
                    "coordination",
                    "execute-task",
                    {
                        "problem": plan_mix_problem(variant),
                        "initial_data": _ready("src"),
                        "task": f"mix-{index}",
                    },
                )
            else:
                reply = yield from services.coordination.call(
                    services.coordination.planner_name,
                    "plan",
                    {"problem": plan_mix_problem(variant)},
                )
            latencies[index] = time.perf_counter() - started
            replies[index] = reply

    env.engine.spawn(drive(), name="plan-mix-driver")
    env.run(max_events=max_events)

    if any(reply is None for reply in replies):
        raise WorkloadError("plan_mix: not every planning request completed")
    if enact:
        # Enactment replies don't echo the plan source; the journal's
        # per-case "plan" event is the provenance record of it.
        sources = [
            next(
                (
                    event.attrs.get("source")
                    for event in env.journal.events(f"mix-{index}")
                    if event.kind == "plan"
                ),
                None,
            )
            for index in range(requests)
        ]
    else:
        sources = [reply.get("source") for reply in replies]
    registry = env.metrics
    counts = {
        kind: registry.total(f"planlib_{kind}")
        for kind in ("hit", "repair", "seed", "miss", "store", "verify", "reject")
    }
    return {
        "env": env,
        "services": services,
        "fleet": fleet,
        "requests": requests,
        "schedule": schedule,
        "latencies": latencies,
        "sources": sources,
        "replies": replies,
        "fitness": [] if enact else [reply["fitness"] for reply in replies],
        "solved": sum(1 for reply in replies if reply.get("solved")),
        "completed": sum(
            1 for reply in replies if reply.get("status") == "completed"
        ),
        "journal": env.journal.stats(),
        "counts": counts,
        "killed": killed[0],
        "library_entries": len(plan_library) if plan_library is not None else 0,
        "messages": env.trace.total_recorded,
        "makespan": env.engine.now,
    }
