"""Synthetic planning problems for tests, ablations and baselines.

Families:

* :func:`chain_problem` — a strict pipeline: activity ``a_i`` consumes
  ``d_{i-1}``, produces ``d_i``; the only valid plans are orderings of the
  chain.  Hard for random search (ordering must be exactly right), easy
  for forward search.
* :func:`diamond_problem` — one producer fans out to *width* independent
  middle activities whose outputs a final activity joins.  Concurrent
  plans earn the same fitness in fewer sequential steps — the concurrency
  motif of Figure 5.
* :func:`choice_problem` — two alternative routes to the goal with
  distinct intermediates; either works (the Figure-6 motif).
* :func:`distractor_problem` — a solvable core plus activities that are
  never applicable or produce junk; tests that fitness pressure weeds
  them out.
* :func:`random_problem` — a random layered dependency DAG, the general
  case for property tests and scaling sweeps.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.errors import PlanningError
from repro.planner.problem import ActivitySpec, PlanningProblem
from repro.process.conditions import And, Atom, Relation

__all__ = [
    "chain_problem",
    "diamond_problem",
    "choice_problem",
    "distractor_problem",
    "random_problem",
]


def _has(data: str) -> Atom:
    """The convention used across synthetic problems: a data item exists
    once its Status property is "ready"."""
    return Atom(data, "Status", Relation.EQ, "ready")


def _ready(*names: str) -> dict[str, dict]:
    return {name: {"Status": "ready"} for name in names}


def chain_problem(length: int = 5, name: str | None = None) -> PlanningProblem:
    if length < 1:
        raise PlanningError("chain needs length >= 1")
    activities = [
        ActivitySpec(
            f"a{i}",
            precondition=_has(f"d{i - 1}"),
            effects=_ready(f"d{i}"),
        )
        for i in range(1, length + 1)
    ]
    return PlanningProblem.build(
        name or f"chain-{length}",
        _ready("d0"),
        (_has(f"d{length}"),),
        activities,
    )


def diamond_problem(width: int = 3, name: str | None = None) -> PlanningProblem:
    if width < 2:
        raise PlanningError("diamond needs width >= 2")
    produce = ActivitySpec("produce", precondition=_has("src"), effects=_ready("base"))
    middles = [
        ActivitySpec(
            f"mid{i}", precondition=_has("base"), effects=_ready(f"part{i}")
        )
        for i in range(1, width + 1)
    ]
    join = ActivitySpec(
        "join",
        precondition=And(tuple(_has(f"part{i}") for i in range(1, width + 1))),
        effects=_ready("result"),
    )
    return PlanningProblem.build(
        name or f"diamond-{width}",
        _ready("src"),
        (_has("result"),),
        [produce, *middles, join],
    )


def choice_problem(name: str = "choice") -> PlanningProblem:
    """Two disjoint routes: src -> (left1; left2) or (right1; right2) -> goal."""
    activities = [
        ActivitySpec("left1", precondition=_has("src"), effects=_ready("l1")),
        ActivitySpec("left2", precondition=_has("l1"), effects=_ready("goal")),
        ActivitySpec("right1", precondition=_has("src"), effects=_ready("r1")),
        ActivitySpec("right2", precondition=_has("r1"), effects=_ready("goal")),
    ]
    return PlanningProblem.build(name, _ready("src"), (_has("goal"),), activities)


def distractor_problem(
    core_length: int = 3,
    distractors: int = 5,
    name: str | None = None,
) -> PlanningProblem:
    """A chain core plus *distractors* activities that can never run
    (preconditions over data that nothing produces)."""
    core = chain_problem(core_length)
    activities = list(core.activities.values())
    for i in range(distractors):
        activities.append(
            ActivitySpec(
                f"junk{i}",
                precondition=_has(f"never{i}"),
                effects=_ready(f"junk-out{i}"),
            )
        )
    return PlanningProblem.build(
        name or f"distractor-{core_length}x{distractors}",
        _ready("d0"),
        (_has(f"d{core_length}"),),
        activities,
    )


def random_problem(
    n_activities: int = 10,
    n_layers: int = 3,
    seed: int | np.random.Generator | None = 0,
    name: str | None = None,
) -> PlanningProblem:
    """A random layered dependency DAG.

    Data items are organized in ``n_layers + 1`` layers; each activity
    consumes 1-2 items from its input layer and produces one item in the
    next layer.  The goal asks for one item of the last layer that is
    guaranteed producible.  Always solvable.
    """
    if n_activities < n_layers:
        raise PlanningError("need at least one activity per layer")
    rng = as_rng(seed)
    layers: list[list[str]] = [[f"L0x{i}" for i in range(2)]]
    activities: list[ActivitySpec] = []
    per_layer = max(1, n_activities // n_layers)
    counter = 0
    for layer_idx in range(1, n_layers + 1):
        produced: list[str] = []
        count = per_layer if layer_idx < n_layers else n_activities - counter
        for _ in range(max(1, count)):
            sources = layers[layer_idx - 1]
            k = int(rng.integers(1, min(2, len(sources)) + 1))
            chosen = list(rng.choice(sources, size=k, replace=False))
            out = f"L{layer_idx}x{len(produced)}"
            pre = (
                _has(chosen[0])
                if len(chosen) == 1
                else And(tuple(_has(c) for c in chosen))
            )
            activities.append(
                ActivitySpec(f"act{counter}", precondition=pre, effects=_ready(out))
            )
            produced.append(out)
            counter += 1
            if counter >= n_activities:
                break
        layers.append(produced or [layers[layer_idx - 1][0]])
        if counter >= n_activities:
            break
    goal_item = layers[-1][0]
    return PlanningProblem.build(
        name or f"random-{n_activities}",
        _ready(*layers[0]),
        (_has(goal_item),),
        activities,
    )
