"""Workload generators: synthetic planning problems and failure scenarios."""

from repro.workloads.many_cases import (
    many_cases_initial_data,
    many_cases_process,
    many_cases_services,
    run_many_cases,
    shard_assignment,
)
from repro.workloads.plan_mix import (
    plan_mix_activities,
    plan_mix_goals,
    plan_mix_kb,
    plan_mix_problem,
    plan_mix_services,
    run_plan_mix,
)
from repro.workloads.synthetic import (
    chain_problem,
    choice_problem,
    diamond_problem,
    distractor_problem,
    random_problem,
)

__all__ = [
    "many_cases_initial_data",
    "many_cases_process",
    "many_cases_services",
    "run_many_cases",
    "shard_assignment",
    "plan_mix_activities",
    "plan_mix_goals",
    "plan_mix_kb",
    "plan_mix_problem",
    "plan_mix_services",
    "run_plan_mix",
    "chain_problem",
    "diamond_problem",
    "choice_problem",
    "distractor_problem",
    "random_problem",
]
