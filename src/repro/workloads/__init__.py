"""Workload generators: synthetic planning problems and failure scenarios."""

from repro.workloads.synthetic import (
    chain_problem,
    choice_problem,
    diamond_problem,
    distractor_problem,
    random_problem,
)

__all__ = [
    "chain_problem",
    "diamond_problem",
    "choice_problem",
    "distractor_problem",
    "random_problem",
]
