"""Causal tracing: the bounded message trace and call-tree reconstruction.

Every message the router delivers becomes a :class:`TraceEvent`.  Messages
carry three router-assigned identifiers (see
:class:`~repro.grid.messages.Message`):

* ``message_id`` — unique per router;
* ``trace_id`` — shared by every message causally downstream of one root
  request (a coordination -> planning -> brokerage chain is one trace);
* ``parent_id`` — the ``message_id`` of the message whose handler (or
  reply path) produced this one.

That is enough to reconstruct any protocol exchange as a tree
(:meth:`MessageTrace.tree`) — the Figure-2/3 flows become literal call
trees instead of flat transcripts.

The trace itself is a *bounded* ring: ``capacity`` caps resident events
while ``total_recorded`` keeps exact accounting, so week-long simulated
runs don't grow memory without limit yet census statistics stay correct.
``between()`` / ``actions()`` keep their historical semantics — the
Figure-2/3 protocol benches assert on them byte-for-byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (messages imports nothing from us)
    from repro.grid.messages import Message

__all__ = ["TraceEvent", "TraceNode", "MessageTrace", "format_tree"]

#: Default resident-event bound; high enough that every experiment in the
#: repo sees a complete trace, low enough to bound long soak runs.
DEFAULT_TRACE_CAPACITY = 100_000


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message, stamped with its delivery time."""

    time: float
    message: "Message"

    @property
    def message_id(self) -> int | None:
        return self.message.message_id

    @property
    def trace_id(self) -> str | None:
        return self.message.trace_id

    @property
    def parent_id(self) -> int | None:
        return self.message.parent_id

    def action_tuple(self) -> tuple[str, str, str, str]:
        m = self.message
        return (m.sender, m.receiver, m.performative.value, m.action)


@dataclass
class TraceNode:
    """A node of a reconstructed causal call tree."""

    event: TraceEvent
    children: list["TraceNode"] = field(default_factory=list)

    def walk(self, depth: int = 0) -> Iterable[tuple[int, TraceEvent]]:
        yield depth, self.event
        for child in self.children:
            yield from child.walk(depth + 1)

    @property
    def size(self) -> int:
        return 1 + sum(child.size for child in self.children)

    @property
    def depth(self) -> int:
        return 1 + max((child.depth for child in self.children), default=0)


def format_tree(roots: list[TraceNode]) -> str:
    """Render call trees as an indented transcript (README example)."""
    lines: list[str] = []
    for root in roots:
        for depth, event in root.walk():
            m = event.message
            lines.append(
                f"{'  ' * depth}@{event.time:.4f} {m.sender} -> {m.receiver} "
                f"{m.performative.value} {m.action}"
            )
    return "\n".join(lines)


class MessageTrace:
    """Bounded, queryable view over the router's delivery event stream."""

    def __init__(self, capacity: int | None = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"trace capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.records: deque[TraceEvent] = deque(maxlen=capacity)
        #: Exact count of every event ever recorded (survives eviction).
        self.total_recorded = 0

    # -- recording ---------------------------------------------------------- #
    def record(self, time: float, message: "Message") -> None:
        self.records.append(TraceEvent(time, message))
        self.total_recorded += 1

    @property
    def evicted(self) -> int:
        """How many events the capacity bound has discarded."""
        return self.total_recorded - len(self.records)

    # -- historical query API (Figure-2/3 benches) -------------------------- #
    def between(self, sender: str, receiver: str) -> list["Message"]:
        return [
            e.message
            for e in self.records
            if e.message.sender == sender and e.message.receiver == receiver
        ]

    def actions(self) -> list[tuple[str, str, str, str]]:
        """(sender, receiver, performative, action) tuples, in order."""
        return [e.action_tuple() for e in self.records]

    def clear(self) -> None:
        self.records.clear()
        self.total_recorded = 0

    def __len__(self) -> int:
        return len(self.records)

    # -- causal queries ------------------------------------------------------ #
    def trace_ids(self) -> list[str]:
        """Distinct trace ids, in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self.records:
            if event.trace_id is not None:
                seen.setdefault(event.trace_id, None)
        return list(seen)

    def events(
        self,
        trace_id: str | None = None,
        conversation: str | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> list[TraceEvent]:
        """Resident events, filterable by trace, conversation and delivery
        time.  ``start``/``end`` select the closed window ``[start, end]``
        — pass a span's bounds to join it to its messages (spans and
        messages share ``trace_id``; see :mod:`repro.obs.spans`)."""
        out = []
        for event in self.records:
            if trace_id is not None and event.trace_id != trace_id:
                continue
            if conversation is not None and event.message.conversation != conversation:
                continue
            if start is not None and event.time < start:
                continue
            if end is not None and event.time > end:
                continue
            out.append(event)
        return out

    def tree(self, trace_id: str) -> list[TraceNode]:
        """Reconstruct the causal call tree(s) for one trace.

        Events whose parent is missing from the resident window (never
        routed, or evicted by the capacity bound) become roots — the tree
        degrades gracefully instead of failing on bounded traces.
        """
        events = self.events(trace_id=trace_id)
        nodes = {
            e.message_id: TraceNode(e) for e in events if e.message_id is not None
        }
        roots: list[TraceNode] = []
        for event in events:
            node = nodes.get(event.message_id)
            if node is None:  # untagged message: cannot place it in a tree
                continue
            parent = nodes.get(event.parent_id) if event.parent_id is not None else None
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        return roots

    def render(self, trace_id: str) -> str:
        return format_tree(self.tree(trace_id))
