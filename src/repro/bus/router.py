"""The message router: delivery, identity, causality, drop injection.

The router owns everything that used to be welded into
``GridEnvironment.route`` plus the identity state that used to leak
through module globals:

* **Delivery** — each routed message is scheduled after the network model's
  delay and lands in the receiver's mailbox, recording a
  :class:`~repro.bus.tracing.TraceEvent` at delivery time.  Messages to
  unknown or crashed agents are dropped (the sender's timeout policy
  handles it), exactly as before.
* **Identity** — conversation ids, message ids and trace ids are counters
  *per router*, so two environments in one process produce independent,
  reproducible id streams (the old module-global conversation counter
  broke test isolation).
* **Causality** — ``route(message, cause=...)`` links the message to the
  message whose handler produced it: same ``trace_id``, ``parent_id`` =
  the cause's ``message_id``.  Root messages open a fresh trace.
* **Failure injection** — an optional *drop oracle* (any callable
  ``Message -> bool``; :meth:`Router.bernoulli_oracle` adapts a
  :class:`~repro.sim.failures.BernoulliFailures` model) makes the fabric
  itself lossy, which is what recovery experiments need to exercise
  timeout/retry/failover paths without crashing whole agents.

Metrics for every send, delivery and drop go to the router's
:class:`~repro.bus.metrics.MetricsRegistry`.  All accounting is
synchronous: the router schedules exactly one engine event per routed
message, so migrating onto it preserves event ordering byte-for-byte.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.bus.metrics import MetricsRegistry
from repro.bus.tracing import MessageTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.agent import Agent
    from repro.grid.messages import Message
    from repro.grid.network import Network
    from repro.grid.sharding import ShardRouter
    from repro.sim.engine import Engine
    from repro.sim.failures import BernoulliFailures

__all__ = ["Router"]

#: A drop oracle decides, per routed message, whether the fabric loses it.
DropOracle = Callable[["Message"], bool]


class Router:
    """Owns the message path of one environment."""

    def __init__(
        self,
        engine: "Engine",
        network: "Network",
        agents: dict[str, "Agent"] | None = None,
        trace: MessageTrace | None = None,
        metrics: MetricsRegistry | None = None,
        drop_oracle: DropOracle | None = None,
        record_trace: bool = True,
    ) -> None:
        self.engine = engine
        self.network = network
        #: Live registry view — shared with the owning environment.
        self._agents: dict[str, "Agent"] = agents if agents is not None else {}
        self.trace = trace if trace is not None else MessageTrace()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.drop_oracle = drop_oracle
        #: Fast path: when False, delivery skips TraceEvent construction
        #: entirely.  Identity assignment is untouched, so message/trace id
        #: streams stay bit-for-bit identical either way.
        self.record_trace = record_trace
        #: Optional shard resolver (see :class:`~repro.grid.sharding.
        #: ShardRouter`): consulted once per routed message to rewrite a
        #: *logical* receiver name to the owning shard's agent.  None (the
        #: default) and single-shard rings leave every message untouched,
        #: so unsharded and N=1 message streams are byte-identical.
        self.sharding: "ShardRouter | None" = None
        self.dropped: list["Message"] = []
        self._conversations = itertools.count(1)
        self._message_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    # -- identity ------------------------------------------------------------ #
    def fresh_conversation(self) -> str:
        return f"conv-{next(self._conversations)}"

    def _fresh_trace(self) -> str:
        return f"trace-{next(self._trace_ids)}"

    def prepare(self, message: "Message", cause: "Message | None" = None) -> None:
        """Assign identity and causal links in place (idempotent).

        Fields live on a frozen dataclass and are excluded from equality;
        the router is their single writer.
        """
        if not message.conversation:
            object.__setattr__(message, "conversation", self.fresh_conversation())
        if message.message_id is None:
            object.__setattr__(message, "message_id", next(self._message_ids))
        if message.trace_id is None:
            if cause is not None and cause.trace_id is not None:
                object.__setattr__(message, "trace_id", cause.trace_id)
                object.__setattr__(message, "parent_id", cause.message_id)
            else:
                object.__setattr__(message, "trace_id", self._fresh_trace())

    # -- delivery ------------------------------------------------------------ #
    def route(self, message: "Message", cause: "Message | None" = None) -> None:
        """Deliver *message* after the network delay; the trace records at
        delivery time.  Messages to unknown or crashed agents — or taken
        by the drop oracle — are dropped; the sender's timeout handles it.
        """
        self.prepare(message, cause)
        sharding = self.sharding
        if sharding is not None:
            resolved = sharding.resolve(message)
            if resolved is not None and resolved != message.receiver:
                object.__setattr__(message, "receiver", resolved)
                self.metrics.inc(
                    "shard_routed", agent=resolved, action=message.action
                )
        self.metrics.inc("messages_sent", agent=message.sender, action=message.action)
        agents = self._agents
        target = agents.get(message.receiver)
        if target is None:
            self._drop(message, "unknown-receiver")
            return
        oracle = self.drop_oracle
        if oracle is not None and oracle(message):
            self._drop(message, "oracle")
            return
        sender = agents.get(message.sender)
        src_site = sender.site if sender is not None else target.site
        delay = self.network.delay(src_site, target.site, message.size)
        # Bound method + args through the engine's pooled fire-and-forget
        # path: no per-message closure, no per-message event allocation.
        self.engine.schedule_discard(delay, self._deliver, target, message)

    def route_many(
        self, messages: "list[Message]", cause: "Message | None" = None
    ) -> None:
        """Route a burst of messages, handing the engine pre-batched
        delivery lists: consecutive messages that share a delivery delay
        ride one engine event instead of one event each.

        Ordering is exactly that of consecutive :meth:`route` calls —
        their per-message delivery events would carry consecutive sequence
        numbers and therefore execute back-to-back, which is precisely
        what one batch event delivering them in order does.  Identity
        assignment (conversation/message/trace ids) is per message and
        untouched, so id streams and traces stay byte-identical.
        """
        batch: list[tuple["Agent", "Message"]] = []
        batch_delay: float | None = None
        agents = self._agents
        metrics_inc = self.metrics.inc
        sharding = self.sharding
        for message in messages:
            self.prepare(message, cause)
            if sharding is not None:
                resolved = sharding.resolve(message)
                if resolved is not None and resolved != message.receiver:
                    object.__setattr__(message, "receiver", resolved)
                    metrics_inc(
                        "shard_routed", agent=resolved, action=message.action
                    )
            metrics_inc("messages_sent", agent=message.sender, action=message.action)
            target = agents.get(message.receiver)
            if target is None:
                self._drop(message, "unknown-receiver")
                continue
            oracle = self.drop_oracle
            if oracle is not None and oracle(message):
                self._drop(message, "oracle")
                continue
            sender = agents.get(message.sender)
            src_site = sender.site if sender is not None else target.site
            delay = self.network.delay(src_site, target.site, message.size)
            if batch and delay != batch_delay:
                self._flush(batch_delay, batch)
                batch = []
            batch_delay = delay
            batch.append((target, message))
        if batch:
            self._flush(batch_delay, batch)

    def _flush(self, delay: float, batch: "list[tuple[Agent, Message]]") -> None:
        if len(batch) == 1:
            target, message = batch[0]
            self.engine.schedule_discard(delay, self._deliver, target, message)
        else:
            self.engine.schedule_discard(delay, self._deliver_many, batch)

    def _deliver_many(self, batch: "list[tuple[Agent, Message]]") -> None:
        deliver = self._deliver
        for target, message in batch:
            deliver(target, message)

    def _deliver(self, target: "Agent", message: "Message") -> None:
        if not target.alive:
            self._drop(message, "receiver-down")
            return
        if self.record_trace:
            self.trace.record(self.engine.now, message)
        self.metrics.inc(
            "messages_delivered", agent=message.receiver, action=message.action
        )
        target.mailbox.deliver(message)

    def _drop(self, message: "Message", reason: str) -> None:
        self.dropped.append(message)
        self.metrics.inc(
            "messages_dropped", agent=message.receiver, action=message.action
        )
        self.metrics.inc("drop_reason", agent=reason)

    # -- failure-injection adapters ------------------------------------------- #
    def bernoulli_oracle(
        self,
        failures: "BernoulliFailures",
        component_of: Callable[["Message"], str] | None = None,
    ) -> DropOracle:
        """Adapt a :class:`~repro.sim.failures.BernoulliFailures` model
        into a drop oracle (assign the result to :attr:`drop_oracle`, or
        use :meth:`use_bernoulli`).

        *component_of* maps a message to the failure-oracle component name
        (default: the receiver, so per-component probabilities address
        agents).  Draws share the model's RNG stream and are logged to its
        :class:`~repro.sim.failures.FailureLog` at the current simulated
        time, so experiments can assert on injected drops exactly like on
        injected invocation failures.
        """

        def oracle(message: "Message") -> bool:
            component = (
                component_of(message) if component_of is not None else message.receiver
            )
            return failures.should_fail(component, self.engine.now)

        return oracle

    def use_bernoulli(
        self,
        failures: "BernoulliFailures",
        component_of: Callable[["Message"], str] | None = None,
    ) -> None:
        """Install a Bernoulli drop oracle on this router."""
        self.drop_oracle = self.bernoulli_oracle(failures, component_of)
