"""Metrics registry: per-agent / per-action counters and latency histograms.

The paper's monitoring service promises "accurate information about the
status of a resource"; beyond liveness, a production-grade fabric needs
*rates* and *latencies*.  The :class:`MetricsRegistry` is the bus's
observability sink: the router counts every send/delivery/drop, the agent
RPC layer times every round-trip, and services add domain counters — all
keyed by ``(metric name, agent, action)`` so the monitoring service can
serve per-service breakdowns over RPC.

Everything here is synchronous arithmetic on plain dicts: recording a
metric never schedules a simulation event, so instrumentation cannot
perturb message ordering (the Figure-2/3 protocol traces stay
byte-for-byte identical with metrics on or off).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

__all__ = ["LatencyHistogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Geometric bucket ladder, 100 µs .. 30 ks simulated seconds — wide enough
#: for loopback RPCs (sub-ms) and hour-long activity executions alike.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    coefficient * 10.0**exponent
    for exponent in range(-4, 5)
    for coefficient in (1.0, 3.0)
)


@dataclass
class LatencyHistogram:
    """Fixed-bucket histogram with sum/count/min/max accounting.

    ``buckets[i]`` counts observations ``<= bounds[i]``; one overflow
    bucket counts the rest (Prometheus-style cumulative semantics are
    derivable, we store per-bucket counts).
    """

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    buckets: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def __post_init__(self) -> None:
        if not self.buckets:
            self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # First bound >= value; past-the-end lands in the overflow bucket.
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket bound holding the q-quantile (0 < q <= 1), clamped
        to the observed ``[min, max]`` — a bucket's nominal upper bound can
        exceed every observation (e.g. a single 5.0 lands in the <=10.0
        bucket), and a quantile above the true maximum misleads."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, bucket in enumerate(self.buckets):
            running += bucket
            if running >= target:
                if index < len(self.bounds):
                    return min(max(self.bounds[index], self.min), self.max)
                return self.max
        return self.max

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


#: A metric series key: (metric name, agent, action).
_Key = tuple[str, str, str]


class MetricsRegistry:
    """Counters and latency histograms for the message bus.

    Series are addressed by ``(name, agent, action)``; empty strings mean
    "unlabelled".  The registry is deliberately schema-free — services
    may add their own counters — but the bus itself maintains a standard
    vocabulary:

    ``messages_sent`` / ``messages_delivered`` / ``messages_dropped``
        routed by the :class:`~repro.bus.router.Router`, labelled with the
        sender (sent) or receiver (delivered/dropped) and the action;
    ``requests_handled``
        incremented when an agent dispatches a REQUEST/QUERY handler;
    ``rpc_ok`` / ``rpc_error`` / ``rpc_timeout`` / ``rpc_retry`` / ``rpc_failover``
        the client-side RPC outcome counters, labelled with the callee;
    ``rpc_latency``
        round-trip histogram (request sent -> reply received), labelled
        with the callee and action.
    """

    def __init__(self, enabled: bool = True) -> None:
        #: Recording switch.  Metrics are pure synchronous arithmetic and
        #: never influence behaviour (scheduling facts read live node
        #: state, not counters), so flipping this off is trace-safe; the
        #: throughput configuration uses it to skip ~15k dict updates per
        #: 32-case enactment.  Reads keep working and report zeros.
        self.enabled = enabled
        self._counters: dict[_Key, int] = {}
        self._histograms: dict[_Key, LatencyHistogram] = {}
        # Aggregates maintained on every inc() so total() is O(1) — the
        # monitoring service reads per-agent health on every status RPC,
        # which used to scan the whole counter table each time.
        self._name_totals: dict[str, int] = {}
        self._agent_totals: dict[tuple[str, str], int] = {}

    # -- recording ---------------------------------------------------------- #
    def inc(self, name: str, agent: str = "", action: str = "", amount: int = 1) -> None:
        if not self.enabled:
            return
        key = (name, agent, action)
        self._counters[key] = self._counters.get(key, 0) + amount
        totals = self._name_totals
        totals[name] = totals.get(name, 0) + amount
        agent_key = (name, agent)
        totals = self._agent_totals
        totals[agent_key] = totals.get(agent_key, 0) + amount

    def observe(self, name: str, value: float, agent: str = "", action: str = "") -> None:
        if not self.enabled:
            return
        key = (name, agent, action)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = LatencyHistogram()
        histogram.observe(value)

    # -- reading ------------------------------------------------------------ #
    def value(self, name: str, agent: str = "", action: str = "") -> int:
        return self._counters.get((name, agent, action), 0)

    def total(self, name: str, agent: str | None = None) -> int:
        """Sum of a counter across actions (and agents when None).
        O(1): served from aggregates maintained at recording time."""
        if agent is None:
            return self._name_totals.get(name, 0)
        return self._agent_totals.get((name, agent), 0)

    def histogram(
        self, name: str, agent: str = "", action: str = ""
    ) -> LatencyHistogram | None:
        return self._histograms.get((name, agent, action))

    def histograms(self, name: str) -> Iterator[tuple[str, str, LatencyHistogram]]:
        for (metric, agent, action), histogram in sorted(self._histograms.items()):
            if metric == name:
                yield agent, action, histogram

    def counters(self, name: str) -> Iterator[tuple[str, str, int]]:
        for (metric, agent, action), count in sorted(self._counters.items()):
            if metric == name:
                yield agent, action, count

    def dump(
        self, agent: str | None = None, name: str | None = None
    ) -> dict[str, Any]:
        """JSON-serializable snapshot, optionally filtered.

        Shape: ``{"counters": {name: {"agent|action": value}},
        "histograms": {name: {"agent|action": {...stats...}}}}`` with keys
        sorted for deterministic output.
        """

        def keep(metric: str, who: str) -> bool:
            if name is not None and metric != name:
                return False
            if agent is not None and who != agent:
                return False
            return True

        counters: dict[str, dict[str, int]] = {}
        for (metric, who, action), count in sorted(self._counters.items()):
            if keep(metric, who):
                counters.setdefault(metric, {})[f"{who}|{action}"] = count
        histograms: dict[str, dict[str, Any]] = {}
        for (metric, who, action), histogram in sorted(self._histograms.items()):
            if keep(metric, who):
                histograms.setdefault(metric, {})[f"{who}|{action}"] = (
                    histogram.as_dict()
                )
        return {"counters": counters, "histograms": histograms}

    def clear(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        self._name_totals.clear()
        self._agent_totals.clear()
