"""Declarative RPC call policies: timeout, bounded retries, failover.

"Core services are replicated to ensure an adequate level of performance
and reliability" (Section 2) — the old substrate hard-coded that idea in
one place (``CoreService.call_with_failover``) and scattered ad-hoc
timeouts everywhere else.  A :class:`CallPolicy` makes the whole
reliability envelope of an RPC declarative:

* ``timeout`` — simulated seconds a caller waits for the reply before the
  :data:`~repro.grid.agent._TIMEOUT` sentinel fires (None = wait forever);
* ``retries`` — extra attempts against the *same* provider after a
  failure or timeout;
* ``backoff`` / ``backoff_factor`` — deterministic exponential pause
  before retry *k*: ``backoff * backoff_factor**(k-1)`` simulated seconds
  (no jitter: simulation runs must stay exactly reproducible);
* ``size`` — request payload size for network-delay modelling.

Failover across *providers* composes on top: ``Agent.call_any`` walks a
provider list applying the policy per provider, which is exactly what the
planning service's Figure-3 flow needs to survive a crashed brokerage
replica.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GridError

__all__ = ["CallPolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class CallPolicy:
    """Reliability envelope for one RPC (or one RPC per provider)."""

    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.0
    backoff_factor: float = 2.0
    size: float = 1_000.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise GridError(f"call timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise GridError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise GridError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor <= 0:
            raise GridError(
                f"backoff_factor must be positive, got {self.backoff_factor}"
            )
        if self.size < 0:
            raise GridError(f"message size must be >= 0, got {self.size}")

    @property
    def attempts(self) -> int:
        return self.retries + 1

    def backoff_before(self, attempt: int) -> float:
        """Pause before 1-based retry *attempt* (attempt 0 is the first
        try and never pauses)."""
        if attempt <= 0 or self.backoff == 0.0:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 1)

    def with_timeout(self, timeout: float | None) -> "CallPolicy":
        from dataclasses import replace

        return replace(self, timeout=timeout)


#: The zero-cost default: single attempt, no timeout — byte-for-byte the
#: behaviour of the pre-bus substrate.
DEFAULT_POLICY = CallPolicy()
