"""The message bus: routing, call policies, causal tracing, metrics.

This package is the messaging fabric of the agent substrate — the piece
the Figure-1 architecture "lives or dies on".  It factors the message
path out of :class:`~repro.grid.environment.GridEnvironment` and
:class:`~repro.grid.agent.Agent` into four orthogonal parts:

* :class:`Router` — delivery over the network model, per-environment
  identity (conversation/message/trace ids), drop/failure-oracle hooks;
* :class:`CallPolicy` — declarative RPC reliability (timeout, bounded
  deterministic retries, failover via ``Agent.call_any``);
* :class:`MessageTrace` / :class:`TraceEvent` / :class:`TraceNode` —
  bounded causal tracing; any protocol exchange reconstructs as a tree;
* :class:`MetricsRegistry` / :class:`LatencyHistogram` — per-agent /
  per-action counters and latency histograms, served over RPC by the
  monitoring service.
"""

from repro.bus.metrics import DEFAULT_BUCKETS, LatencyHistogram, MetricsRegistry
from repro.bus.policy import DEFAULT_POLICY, CallPolicy
from repro.bus.router import Router
from repro.bus.tracing import (
    DEFAULT_TRACE_CAPACITY,
    MessageTrace,
    TraceEvent,
    TraceNode,
    format_tree,
)

__all__ = [
    "Router",
    "CallPolicy",
    "DEFAULT_POLICY",
    "MessageTrace",
    "TraceEvent",
    "TraceNode",
    "format_tree",
    "DEFAULT_TRACE_CAPACITY",
    "MetricsRegistry",
    "LatencyHistogram",
    "DEFAULT_BUCKETS",
]
