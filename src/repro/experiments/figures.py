"""Drivers reproducing every figure of the paper.

Figures 1-3 are *behavioural*: we bring up the architecture / run the
protocols and return the observed message traces.  Figures 4-9 are
*structural*: conversions and operators applied to the paper's own
examples.  Figures 10-13 are the case study's artifacts.  Each driver
returns a :class:`~repro.experiments.harness.Table` (plus extra payloads
where useful) that the corresponding bench prints and asserts on.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.harness import Table
from repro.grid.container import EndUserService
from repro.ontology import builtin_shell
from repro.plan import (
    ast_to_tree,
    normalize,
    process_to_tree,
    selective,
    sequential,
)
from repro.planner.config import GPConfig
from repro.planner.operators import crossover, mutate
from repro.process import (
    ast_to_process,
    parse_process,
    process_to_ast,
    unparse,
    validate_process,
)
from repro.services.bootstrap import standard_environment
from repro.virolab.workflow import (
    activity_specs,
    case_study_kb,
    plan_tree,
    planning_problem,
    process_description,
)

__all__ = [
    "fig1_architecture",
    "fig2_planning_protocol",
    "fig3_replanning_protocol",
    "fig4_to_7_conversions",
    "fig8_crossover",
    "fig9_mutation",
    "fig10_11_case_study",
    "fig12_13_ontology",
]

#: The motifs of Figures 4-7 in the concrete textual syntax.
_CONVERSION_EXAMPLES = {
    "Figure 4 (sequential)": "BEGIN; A; B; C; END",
    "Figure 5 (concurrent)": "BEGIN; {FORK {A} {B} JOIN}; END",
    "Figure 6 (selective)": (
        'BEGIN; {CHOICE {COND X.Size > 1} {A} {COND true} {B} MERGE}; END'
    ),
    "Figure 7 (iterative)": "BEGIN; {ITERATIVE {COND X.Size > 1} {A; B}}; END",
}


def _synthetic_services() -> list[EndUserService]:
    out = []
    for name, spec in activity_specs().items():
        out.append(
            EndUserService(
                spec.service or name,
                work=10.0,
                effects=spec.effects,
            )
        )
    dedup: dict[str, EndUserService] = {}
    for svc in out:
        dedup.setdefault(svc.name, svc)
    return list(dedup.values())


def fig1_architecture() -> Table:
    """Bring up the Figure-1 architecture; census of services and agents."""
    from repro.services.user_interface import UserInterface

    env, services, fleet = standard_environment(_synthetic_services(), containers=4)
    UserInterface(env)  # the UI box of Figure 1
    census = services.information.census
    table = Table(
        "Figure 1. Core and end-user services (census)",
        ("Kind", "Count"),
    )
    core_types = [
        "information", "brokerage", "matchmaking", "monitoring", "ontology",
        "storage", "authentication", "scheduling", "simulation", "planning",
        "coordination",
    ]
    for kind in core_types:
        table.add(kind, census.get(kind, 0))
    table.add("application-container", census.get("application-container", 0))
    table.add("end-user", census.get("end-user", 0))
    table.add("user-interface", int(env.has_agent("ui")))
    table.note(f"agents alive: {len(env.agent_names)}")
    return table


def fig2_planning_protocol() -> tuple[Table, list[tuple[str, str, str, str]]]:
    """Run a standard planning request; return the message trace.

    The paper's Figure 2 shows two messages: (1) coordination sends the
    planning task specification to planning; (2) planning returns the
    plan.
    """
    env, services, _ = standard_environment(
        _synthetic_services(),
        containers=2,
        planner_config=GPConfig(population_size=20, generations=3),
    )
    problem = planning_problem()
    outcome: dict[str, Any] = {}

    def run():
        reply = yield from services.coordination.call(
            "planning", "plan", {"problem": problem}
        )
        outcome.update(reply)

    env.engine.spawn(run(), "fig2")
    env.run(max_events=100_000)
    trace = [
        t
        for t in env.trace.actions()
        if {"coordination", "planning"} == {t[0], t[1]}
    ]
    table = Table(
        "Figure 2. Planning <-> coordination exchange",
        ("Step", "From", "To", "Performative", "Action"),
    )
    for i, (src, dst, perf, action) in enumerate(trace, start=1):
        table.add(i, src, dst, perf, action)
    table.note(f"plan fitness: {outcome.get('fitness', float('nan')):.3f}")
    return table, trace


def fig3_replanning_protocol() -> tuple[Table, list[tuple[str, str, str, str]]]:
    """Run a re-planning request; return the Figure-3 message flow."""
    env, services, fleet = standard_environment(
        _synthetic_services(),
        containers=2,
        planner_config=GPConfig(population_size=20, generations=3),
    )
    problem = planning_problem()
    outcome: dict[str, Any] = {}

    def run():
        reply = yield from services.coordination.call(
            "planning",
            "replan",
            {
                "problem": problem,
                "data": {"D1": {"Classification": "POD-Parameter"}},
                "failed_activities": ["POR"],
            },
        )
        outcome.update(reply)

    env.engine.spawn(run(), "fig3")
    env.run(max_events=200_000)
    interesting = {
        ("coordination", "planning"),
        ("planning", "coordination"),
        ("planning", "information"),
        ("information", "planning"),
        ("planning", "brokerage"),
        ("brokerage", "planning"),
    } | {("planning", ac.name) for ac in fleet} | {
        (ac.name, "planning") for ac in fleet
    }
    trace = [t for t in env.trace.actions() if (t[0], t[1]) in interesting]
    table = Table(
        "Figure 3. Re-planning message flow",
        ("Step", "From", "To", "Performative", "Action"),
    )
    for i, (src, dst, perf, action) in enumerate(trace, start=1):
        table.add(i, src, dst, perf, action)
    table.note(f"excluded activities: {outcome.get('excluded_activities')}")
    return table, trace


def fig4_to_7_conversions() -> Table:
    """Round-trip each Figures-4-7 motif through all representations."""
    table = Table(
        "Figures 4-7. Process description <-> plan tree conversions",
        ("Figure", "Process text", "Plan tree", "Round-trip"),
    )
    for label, text in _CONVERSION_EXAMPLES.items():
        ast = parse_process(text)
        tree = ast_to_tree(ast)
        pd = ast_to_process(ast, name=label)
        validate_process(pd)
        recovered = process_to_tree(pd)
        ok = normalize(recovered) == normalize(tree)
        table.add(label, unparse(ast), str(tree), "ok" if ok else "MISMATCH")
    return table


def fig8_crossover() -> Table:
    """A deterministic subtree-crossover example in the Figure-8 style."""
    parent_a = sequential("A", selective("B", "C"), "D")
    parent_b = sequential("E", sequential("F", "G"))
    child_a, child_b = crossover(parent_a, parent_b, rng=5, smax=40, crossover_rate=1.0)
    table = Table(
        "Figure 8. Crossover on plan trees", ("Role", "Tree", "Size")
    )
    table.add("parent a", str(parent_a), parent_a.size)
    table.add("parent b", str(parent_b), parent_b.size)
    table.add("child a", str(child_a), child_a.size)
    table.add("child b", str(child_b), child_b.size)
    conserved = child_a.size + child_b.size == parent_a.size + parent_b.size
    table.note(f"node count conserved: {conserved}")
    return table


def fig9_mutation() -> Table:
    """A deterministic subtree-mutation example in the Figure-9 style."""
    original = sequential("A", selective("B", "C"), "D")
    mutated = original
    seed = 0
    while mutated == original:
        mutated = mutate(
            original, ["A", "B", "C", "D", "E"], rng=seed, smax=40, mutation_rate=0.5
        )
        seed += 1
    table = Table("Figure 9. Mutation on a plan tree", ("Role", "Tree", "Size"))
    table.add("original", str(original), original.size)
    table.add("mutated", str(mutated), mutated.size)
    return table


def fig10_11_case_study() -> Table:
    """Census of the Figure-10 graph and Figure-11 tree, cross-checked."""
    pd = process_description()
    validate_process(pd)
    tree = plan_tree()
    recovered = process_to_tree(pd)
    table = Table(
        "Figures 10-11. 3D-reconstruction process description and plan tree",
        ("Property", "Value"),
    )
    table.add("end-user activities", len(pd.end_user_activities()))
    table.add("flow-control activities", len(pd.flow_control_activities()))
    table.add("transitions", len(pd.transitions))
    table.add("plan-tree size", tree.size)
    table.add(
        "tree recovered from graph matches Figure 11",
        normalize(recovered) == normalize(tree),
    )
    table.add("process text", unparse(process_to_ast(pd)))
    return table


def fig12_13_ontology() -> Table:
    """Census of the Figure-12 schema and Figure-13 instances."""
    shell = builtin_shell()
    kb = case_study_kb()
    table = Table(
        "Figures 12-13. Ontology schema and case-study instances",
        ("Property", "Value"),
    )
    table.add("schema classes", len(shell.class_names))
    for cls in shell.class_names:
        table.add(f"slots on {cls}", len(shell.slots_of(cls)))
    table.add("instances total", len(kb))
    table.add("Activity instances", len(kb.instances_of("Activity")))
    table.add("Transition instances", len(kb.instances_of("Transition")))
    table.add("Data instances", len(kb.instances_of("Data")))
    table.add("Service instances", len(kb.instances_of("Service")))
    table.note(
        "paper figures: 13 activities (A1-A13), 15 transitions (TR1-TR15), "
        "12 data items (D1-D12), 4 services"
    )
    return table
