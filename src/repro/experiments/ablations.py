"""Ablation studies (DESIGN.md A1-A5).

The paper fixes its GP parameters without justification and never compares
against simpler search; these drivers supply the missing evidence:

* :func:`weight_sweep` — fitness-weight (wv/wg/wr) sensitivity;
* :func:`smax_sweep` — the bloat bound;
* :func:`budget_sweep` — population size x generations;
* :func:`baseline_comparison` — GP vs random search, hill climbing and
  classical forward search at matched evaluation budgets;
* :func:`replanning_sweep` — case completion rate with and without the
  Figure-3 re-planning loop under increasing container failure rates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import PlanningError, ServiceError
from repro.experiments.harness import Table, run_seeds
from repro.grid.container import EndUserService
from repro.planner.baselines import forward_search, hill_climb, random_search
from repro.planner.config import GPConfig
from repro.planner.fitness import FitnessWeights, PlanEvaluator
from repro.planner.problem import PlanningProblem
from repro.services.bootstrap import standard_environment
from repro.virolab.workflow import activity_specs, planning_problem, process_description

__all__ = [
    "weight_sweep",
    "smax_sweep",
    "budget_sweep",
    "baseline_comparison",
    "replanning_sweep",
]


def _runs(
    config: GPConfig,
    problem: PlanningProblem,
    seeds: Sequence[int],
    workers: int = 0,
):
    """Seed-parallel GP runs (see :func:`repro.experiments.harness.run_seeds`)."""
    return run_seeds(config, problem, seeds, workers=workers)


def weight_sweep(
    problem: PlanningProblem | None = None,
    seeds: Sequence[int] = range(5),
    config: GPConfig | None = None,
    workers: int = 0,
) -> Table:
    """A1: vary (wv, wg, wr); report solve rate and plan size."""
    problem = problem or planning_problem()
    base = config or GPConfig()
    table = Table(
        "Ablation A1. Fitness-weight sweep",
        ("wv", "wg", "wr", "solve rate", "avg size", "avg fitness"),
    )
    settings = [
        (0.2, 0.5, 0.3),  # the paper's Table-1 weights
        (0.5, 0.5, 0.0),
        (0.4, 0.4, 0.2),
        (0.1, 0.3, 0.6),
        (0.0, 0.5, 0.5),
        (0.34, 0.33, 0.33),
    ]
    for wv, wg, wr in settings:
        cfg = base.with_(weights=FitnessWeights(wv, wg, wr))
        runs = _runs(cfg, problem, seeds, workers)
        solve = sum(r.solved for r in runs) / len(runs)
        table.add(
            wv,
            wg,
            wr,
            solve,
            float(np.mean([r.best_plan.size for r in runs])),
            float(np.mean([r.best_fitness.overall for r in runs])),
        )
    return table


def smax_sweep(
    problem: PlanningProblem | None = None,
    seeds: Sequence[int] = range(5),
    smax_values: Sequence[int] = (10, 20, 40, 80, 160),
    config: GPConfig | None = None,
    workers: int = 0,
) -> Table:
    """A2: the Smax bloat bound vs solve rate and emitted plan size."""
    problem = problem or planning_problem()
    base = config or GPConfig()
    table = Table(
        "Ablation A2. Smax sweep",
        ("Smax", "solve rate", "avg size", "avg fitness"),
    )
    for smax in smax_values:
        cfg = base.with_(smax=smax)
        runs = _runs(cfg, problem, seeds, workers)
        table.add(
            smax,
            sum(r.solved for r in runs) / len(runs),
            float(np.mean([r.best_plan.size for r in runs])),
            float(np.mean([r.best_fitness.overall for r in runs])),
        )
    return table


def budget_sweep(
    problem: PlanningProblem | None = None,
    seeds: Sequence[int] = range(5),
    settings: Sequence[tuple[int, int]] = (
        (20, 10),
        (50, 10),
        (100, 20),
        (200, 20),
        (400, 20),
    ),
    config: GPConfig | None = None,
    workers: int = 0,
) -> Table:
    """A3: population x generations vs solve rate."""
    problem = problem or planning_problem()
    base = config or GPConfig()
    table = Table(
        "Ablation A3. Population/generation budget sweep",
        ("population", "generations", "solve rate", "avg fitness", "avg evals"),
    )
    for population, generations in settings:
        cfg = base.with_(population_size=population, generations=generations)
        runs = _runs(cfg, problem, seeds, workers)
        table.add(
            population,
            generations,
            sum(r.solved for r in runs) / len(runs),
            float(np.mean([r.best_fitness.overall for r in runs])),
            float(np.mean([r.evaluations for r in runs])),
        )
    return table


def baseline_comparison(
    problems: Sequence[PlanningProblem] | None = None,
    seeds: Sequence[int] = range(5),
    config: GPConfig | None = None,
    workers: int = 0,
) -> Table:
    """A4: GP vs baselines at a matched evaluation budget.

    The budget equals what the GP consumed (unique plan simulations); the
    forward-search baseline reports its node expansions instead.
    """
    from repro.workloads.synthetic import chain_problem, distractor_problem

    problems = problems or (
        planning_problem(),
        chain_problem(6),
        distractor_problem(4, 6),
    )
    cfg = config or GPConfig()
    table = Table(
        "Ablation A4. GP vs baselines",
        ("problem", "planner", "solve rate", "avg fitness", "avg budget"),
    )
    for problem in problems:
        gp_runs = _runs(cfg, problem, seeds, workers)
        budget = max(1, int(np.mean([r.evaluations for r in gp_runs])))
        table.add(
            problem.name,
            "GP (paper)",
            sum(r.solved for r in gp_runs) / len(gp_runs),
            float(np.mean([r.best_fitness.overall for r in gp_runs])),
            float(np.mean([r.evaluations for r in gp_runs])),
        )
        for label, runner in (
            ("random search", random_search),
            ("hill climbing", hill_climb),
        ):
            runs = []
            for seed in seeds:
                evaluator = PlanEvaluator(
                    problem, cfg.weights, cfg.smax, cfg.simulation
                )
                runs.append(runner(problem, evaluator, budget, rng=seed))
            table.add(
                problem.name,
                label,
                sum(r.solved for r in runs) / len(runs),
                float(np.mean([r.best_fitness.overall for r in runs])),
                float(budget),
            )
        try:
            evaluator = PlanEvaluator(problem, cfg.weights, cfg.smax, cfg.simulation)
            result = forward_search(problem, evaluator)
            table.add(
                problem.name,
                "forward search",
                1.0 if result.solved else 0.0,
                result.best_fitness.overall,
                float(result.evaluations),
            )
        except PlanningError:
            table.add(problem.name, "forward search", 0.0, 0.0, 0.0)
    return table


def replanning_sweep(
    failure_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    cases: int = 6,
    enable_replanning: tuple[bool, ...] = (True, False),
    containers: int = 3,
) -> Table:
    """A5: enactment completion rate under container failures.

    Enacts the Figure-10 case *cases* times per (failure rate, replanning)
    cell using synthetic end-user services, and reports the completion
    fraction.  With re-planning off, the coordinator gives up once an
    activity exhausts its retries.
    """
    table = Table(
        "Ablation A5. Re-planning robustness under failure injection",
        ("failure rate", "replanning", "completed", "avg activities", "avg replans"),
    )
    for rate in failure_rates:
        for replanning in enable_replanning:
            completed = 0
            activity_counts: list[float] = []
            replan_counts: list[float] = []
            for case_idx in range(cases):
                ok, n_activities, n_replans = _run_replanning_case(
                    rate, replanning, seed=case_idx, containers=containers
                )
                completed += ok
                activity_counts.append(n_activities)
                replan_counts.append(n_replans)
            table.add(
                rate,
                "on" if replanning else "off",
                completed / cases,
                float(np.mean(activity_counts)),
                float(np.mean(replan_counts)),
            )
    return table


def _synthetic_services(psf_values: Sequence[float]) -> list[EndUserService]:
    values = iter(list(psf_values) + [min(psf_values)] * 100)

    def psf_compute(props, payloads):
        return (
            {"D12": {"Classification": "Resolution File", "Value": next(values)}},
            {},
        )

    services: dict[str, EndUserService] = {}
    for name, spec in activity_specs().items():
        if spec.service == "PSF":
            continue
        services.setdefault(
            spec.service or name,
            EndUserService(spec.service or name, work=10.0, effects=spec.effects),
        )
    services["PSF"] = EndUserService("PSF", work=10.0, compute=psf_compute)
    return list(services.values())


def _run_replanning_case(
    failure_rate: float,
    replanning: bool,
    seed: int,
    containers: int,
) -> tuple[bool, int, int]:
    env, services, fleet = standard_environment(
        _synthetic_services([12.0, 9.5, 7.5]),
        containers=containers,
        failure_probability=failure_rate,
        failure_seed=seed * 1_000 + 17,
        planner_config=GPConfig(population_size=30, generations=5),
        planner_seed=seed,
    )
    problem = planning_problem()
    pd = process_description()
    initial = {
        d: {"Classification": c}
        for d, c in {
            "D1": "POD-Parameter",
            "D2": "P3DR-Parameter",
            "D3": "P3DR-Parameter",
            "D4": "P3DR-Parameter",
            "D5": "POR-Parameter",
            "D6": "PSF-Parameter",
            "D7": "2D Image",
        }.items()
    }
    outcome: dict = {}

    def run():
        request = {
            "process": pd,
            "initial_data": initial,
            "task": f"case-{seed}",
        }
        if replanning:
            request["problem"] = problem
        try:
            reply = yield from services.coordination.call(
                "coordination", "execute-task", request
            )
            outcome.update(reply)
        except ServiceError as exc:
            outcome["error"] = str(exc)

    env.engine.spawn(run(), "case")
    env.run(max_events=2_000_000)
    record = services.coordination.records[0]
    return (
        outcome.get("status") == "completed",
        record.activities_run,
        record.replans,
    )
