"""Experiment drivers: one per paper table/figure plus the ablations."""

from repro.experiments.ablations import (
    baseline_comparison,
    budget_sweep,
    replanning_sweep,
    smax_sweep,
    weight_sweep,
)
from repro.experiments.extensions import (
    checkpoint_value,
    scalability_sweep,
    transfer_tradeoff,
)
from repro.experiments.figures import (
    fig1_architecture,
    fig2_planning_protocol,
    fig3_replanning_protocol,
    fig4_to_7_conversions,
    fig8_crossover,
    fig9_mutation,
    fig10_11_case_study,
    fig12_13_ontology,
)
from repro.experiments.harness import Table, summarize_runs
from repro.experiments.tables import PAPER_TABLE2, Table2Result, table1, table2

__all__ = [
    "Table",
    "summarize_runs",
    "table1",
    "table2",
    "Table2Result",
    "PAPER_TABLE2",
    "fig1_architecture",
    "fig2_planning_protocol",
    "fig3_replanning_protocol",
    "fig4_to_7_conversions",
    "fig8_crossover",
    "fig9_mutation",
    "fig10_11_case_study",
    "fig12_13_ontology",
    "weight_sweep",
    "smax_sweep",
    "budget_sweep",
    "baseline_comparison",
    "replanning_sweep",
    "transfer_tradeoff",
    "checkpoint_value",
    "scalability_sweep",
]
