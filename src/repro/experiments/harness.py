"""Result tables and seeded-run helpers for the experiment drivers.

Every table/figure driver returns a :class:`Table` whose ``render()``
produces the same rows the paper prints; benches ``print`` it and assert
on the underlying values.  :func:`run_seeds` is the shared multi-seed GP
runner: seeds are independent, so with ``workers`` > 1 it fans whole runs
out to a process pool (results identical to serial — each run is
self-contained and seeded).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # circular-import guard: gp imports nothing from here
    from repro.planner.config import GPConfig
    from repro.planner.gp import PlanningResult
    from repro.planner.problem import PlanningProblem

__all__ = ["Table", "summarize_runs", "run_seeds"]


def _run_one_seed(args: tuple) -> "PlanningResult":
    """Module-level for picklability (ProcessPoolExecutor dispatch)."""
    from repro.planner.gp import GPPlanner

    config, problem, seed = args
    return GPPlanner(config, rng=seed).plan(problem)


def run_seeds(
    config: "GPConfig",
    problem: "PlanningProblem",
    seeds: Sequence[int],
    workers: int = 0,
) -> list["PlanningResult"]:
    """One independent GP run per seed, in seed order.

    ``workers`` > 1 runs seeds concurrently in a process pool (each worker
    re-derives its compiled problem on unpickle); falls back to serial
    in-process execution on pool failure or when there is nothing to
    parallelize.
    """
    jobs = [(config, problem, int(seed)) for seed in seeds]
    if workers > 1 and len(jobs) > 1:
        # Sandboxed fork etc.: degrade to serial.
        with contextlib.suppress(Exception):
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
                return list(pool.map(_run_one_seed, jobs))
    return [_run_one_seed(job) for job in jobs]


@dataclass
class Table:
    """A titled grid of rows for terminal rendering."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "+".join("-" * (w + 2) for w in widths)
        header = " | ".join(
            self.columns[i].ljust(widths[i]) for i in range(len(self.columns))
        )
        lines = [self.title, sep, header, sep]
        for row in cells:
            lines.append(
                " | ".join(row[i].ljust(widths[i]) for i in range(len(widths)))
            )
        lines.append(sep)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def summarize_runs(values: Sequence[float]) -> dict[str, float]:
    """mean/std/min/max summary used by multi-seed experiment tables."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
