"""Drivers for the paper's Table 1 and Table 2.

* :func:`table1` — the parameter settings table, generated from the
  canonical :class:`~repro.planner.config.GPConfig` so that any drift
  between code defaults and the paper's setup fails the bench.
* :func:`table2` — the Section-5 experiment: run the GP planner ten times
  on the case-study planning problem and average the best-of-run fitness
  components and plan sizes.

Paper values for reference: Table 2 reports average fitness 0.928,
validity fitness 1.0, goal fitness 1.0, solution size 9.7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import Table, run_seeds
from repro.planner.config import GPConfig
from repro.planner.gp import PlanningResult
from repro.planner.problem import PlanningProblem
from repro.virolab.workflow import planning_problem

__all__ = ["table1", "table2", "Table2Result", "PAPER_TABLE2"]

#: The paper's Table-2 row values, for shape comparison.
PAPER_TABLE2 = {
    "Average Fitness": 0.928,
    "Average Validity Fitness": 1.0,
    "Average Goal Fitness": 1.0,
    "Average Size of solutions": 9.7,
}


def table1(config: GPConfig | None = None) -> Table:
    """Render Table 1 (parameter settings) from the configuration."""
    config = config or GPConfig()
    table = Table("Table 1. Parameter Settings", ("Parameters", "Values"))
    for name, value in config.as_table():
        table.add(name, value)
    return table


@dataclass
class Table2Result:
    table: Table
    runs: list[PlanningResult]

    @property
    def avg_fitness(self) -> float:
        return float(np.mean([r.best_fitness.overall for r in self.runs]))

    @property
    def avg_validity(self) -> float:
        return float(np.mean([r.best_fitness.validity for r in self.runs]))

    @property
    def avg_goal(self) -> float:
        return float(np.mean([r.best_fitness.goal for r in self.runs]))

    @property
    def avg_size(self) -> float:
        return float(np.mean([r.best_plan.size for r in self.runs]))

    @property
    def solved_runs(self) -> int:
        return sum(1 for r in self.runs if r.solved)


def table2(
    runs: int = 10,
    config: GPConfig | None = None,
    problem: PlanningProblem | None = None,
    base_seed: int = 0,
    workers: int = 0,
) -> Table2Result:
    """Reproduce Table 2: *runs* independent GP runs, averaged.

    Each run uses seed ``base_seed + i``; the best individual of the final
    generation is the run's solution, exactly as in Section 5.  The ten
    runs are independent, so ``workers`` > 1 executes them seed-parallel
    (identical results, see :func:`repro.experiments.harness.run_seeds`).
    """
    config = config or GPConfig()
    problem = problem or planning_problem()
    results = run_seeds(
        config, problem, range(base_seed, base_seed + runs), workers=workers
    )
    table = Table(
        "Table 2. Experiment results collected from the best solutions "
        f"of {runs} runs.",
        ("Metric", "Measured", "Paper"),
    )
    out = Table2Result(table, results)
    table.add("Average Fitness", out.avg_fitness, PAPER_TABLE2["Average Fitness"])
    table.add(
        "Average Validity Fitness",
        out.avg_validity,
        PAPER_TABLE2["Average Validity Fitness"],
    )
    table.add(
        "Average Goal Fitness", out.avg_goal, PAPER_TABLE2["Average Goal Fitness"]
    )
    table.add(
        "Average Size of solutions",
        out.avg_size,
        PAPER_TABLE2["Average Size of solutions"],
    )
    table.note(
        f"{out.solved_runs}/{runs} runs reached both perfect validity and "
        f"goal fitness"
    )
    return out
