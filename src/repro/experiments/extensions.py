"""Ablations for the Section-1 extension subsystems.

* :func:`transfer_tradeoff` (A6) — when does compressing a migrating data
  set pay off?  Sweeps link bandwidth for a fixed payload and compares
  end-to-end migration time plain vs compressed (cpu + wire + cpu).
* :func:`checkpoint_value` (A7) — what does checkpointing buy a
  long-lasting activity under failures?  Sweeps the per-invocation failure
  rate and measures total time-to-completion (with retries) with
  checkpointing on vs off.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ServiceError
from repro.experiments.harness import Table
from repro.grid import (
    Agent,
    ApplicationContainer,
    EndUserService,
    GridEnvironment,
    TransferSpec,
    execute_plan,
    plan_transfer,
)
from repro.sim import BernoulliFailures

__all__ = ["transfer_tradeoff", "checkpoint_value", "scalability_sweep"]


def transfer_tradeoff(
    payload_mb: float = 200.0,
    bandwidths_mbps: Sequence[float] = (1.0, 10.0, 100.0, 1000.0, 10000.0),
    node_speed: float = 1.0,
) -> Table:
    """A6: total migration time, plain vs compressed, across link speeds."""
    table = Table(
        "Ablation A6. Migration: compress or not?",
        ("bandwidth (Mb/s)", "plain (s)", "compressed (s)", "winner"),
    )
    size = payload_mb * 1e6
    for mbps in bandwidths_mbps:
        bytes_per_s = mbps * 1e6 / 8.0

        def total(compress: bool) -> float:
            plan = plan_transfer(TransferSpec(size), compress_over_wan=compress)
            wire, src, dst = execute_plan(
                plan, source_speed=node_speed, dest_speed=node_speed
            )
            return src + wire / bytes_per_s + dst

        plain = total(False)
        packed = total(True)
        table.add(
            mbps, plain, packed, "compressed" if packed < plain else "plain"
        )
    return table


class _CkptStorage(Agent):
    """Minimal storage for the checkpoint experiment."""

    def __init__(self, env: GridEnvironment) -> None:
        super().__init__(env, env.storage_name, "core")
        self.objects: dict = {}

    def handle_store(self, message):
        self.objects[message.content["key"]] = message.content["payload"]
        return {"key": message.content["key"]}

    def handle_retrieve(self, message):
        key = message.content["key"]
        if key not in self.objects:
            raise ServiceError("missing")
        return {"payload": self.objects[key], "meta": {}}

    def handle_delete(self, message):
        return {"deleted": self.objects.pop(message.content["key"], None) is not None}


def _time_to_complete(
    failure_rate: float,
    checkpointable: bool,
    work: float,
    chunks: int,
    seed: int,
    max_attempts: int = 400,
) -> float | None:
    env = GridEnvironment()
    _CkptStorage(env)
    node = env.add_node("n1", "siteA", slots=1)
    container = ApplicationContainer(
        env,
        "ac1",
        node,
        services={
            "LONG": EndUserService(
                "LONG",
                work=work,
                effects={"OUT": {"Status": "done"}},
                checkpointable=checkpointable,
                checkpoint_chunks=chunks,
            )
        },
        failures=BernoulliFailures(failure_rate, rng=seed),
    )
    user = Agent(env, "user", "u")
    outcome: dict = {}

    def driver():
        for _ in range(max_attempts):
            try:
                yield from user.call(
                    "ac1",
                    "execute-activity",
                    {
                        "service": "LONG",
                        "inputs": {},
                        "checkpoint_key": "ckpt/case/LONG",
                    },
                )
                outcome["done"] = True
                return
            except ServiceError:
                continue

    env.engine.spawn(driver(), "driver")
    env.run(max_events=5_000_000)
    return env.engine.now if outcome.get("done") else None


def scalability_sweep(
    fleet_sizes: Sequence[int] = (1, 2, 3, 6),
    speed: float = 2.0,
) -> Table:
    """A8: case-study makespan vs application-container fleet size.

    "Simulation services are necessary to study the scalability of the
    system" (Section 2) — here the study itself: enacting the Figure-10
    workflow on growing homogeneous fleets.  The concurrent section is
    three-wide (P3DR2/3/4), so makespan improves up to ~3 containers and
    plateaus beyond (the workflow's critical path).
    """
    from repro.planner.config import GPConfig
    from repro.services.bootstrap import standard_environment
    from repro.virolab.workflow import activity_specs, process_description

    def synthetic() -> list[EndUserService]:
        values = iter([12.0, 9.5, 7.5] + [7.0] * 50)

        def psf_compute(props, payloads):
            return (
                {"D12": {"Classification": "Resolution File",
                         "Value": next(values)}},
                {},
            )

        out: dict[str, EndUserService] = {}
        for name, spec in activity_specs().items():
            if spec.service == "PSF":
                continue
            out.setdefault(
                spec.service or name,
                EndUserService(spec.service or name, work=40.0,
                               effects=spec.effects),
            )
        out["PSF"] = EndUserService("PSF", work=10.0, compute=psf_compute)
        return list(out.values())

    table = Table(
        "Ablation A8. Makespan vs fleet size (Figure-10 workflow)",
        ("containers", "makespan (s)", "messages"),
    )
    initial = {
        d: {"Classification": c}
        for d, c in {
            "D1": "POD-Parameter", "D2": "P3DR-Parameter",
            "D3": "P3DR-Parameter", "D4": "P3DR-Parameter",
            "D5": "POR-Parameter", "D6": "PSF-Parameter", "D7": "2D Image",
        }.items()
    }
    for count in fleet_sizes:
        env, services, fleet = standard_environment(
            synthetic(),
            containers=count,
            speeds=(speed,),
            slots=1,
            planner_config=GPConfig(population_size=20, generations=3),
        )
        outcome: dict = {}

        def run():
            reply = yield from services.coordination.call(
                "coordination",
                "execute-task",
                {
                    "process": process_description(),
                    "initial_data": dict(initial),
                    "task": f"scale-{count}",
                },
            )
            outcome.update(reply)

        env.engine.spawn(run(), "user")
        env.run(max_events=3_000_000)
        assert outcome.get("status") == "completed"
        table.add(count, env.engine.now, env.trace.total_recorded)
    return table


def checkpoint_value(
    failure_rates: Sequence[float] = (0.0, 0.3, 0.6, 0.8),
    work: float = 100.0,
    chunks: int = 10,
    seeds: Sequence[int] = range(3),
) -> Table:
    """A7: time-to-completion of one long activity, checkpoints on vs off."""
    table = Table(
        "Ablation A7. Checkpointing a long-lasting activity under failures",
        ("failure rate", "no checkpoints (s)", "checkpointed (s)", "speedup"),
    )
    for rate in failure_rates:
        times = {True: [], False: []}
        for mode in (False, True):
            for seed in seeds:
                t = _time_to_complete(rate, mode, work, chunks, seed=seed * 7 + 1)
                if t is not None:
                    times[mode].append(t)
        plain = float(np.mean(times[False])) if times[False] else float("inf")
        ckpt = float(np.mean(times[True])) if times[True] else float("inf")
        table.add(rate, plain, ckpt, plain / ckpt if ckpt else float("inf"))
    return table
