"""Bridge between the metainformation layer and the executable objects.

Figure 13's caption is a functional claim: "Instances of the ontologies
[are] used for enactment of the process description in Figure 10" — i.e.
the coordination service can reconstruct everything it needs from frames
alone.  This module provides both directions:

* :func:`process_from_kb` — build a :class:`ProcessDescription` from the
  Task/ProcessDescription/Activity/Transition instances (with Choice
  conditions recovered from the constraint registry);
* :func:`case_from_kb` — build the coordination request's initial-data
  properties from the CaseDescription and Data instances;
* :func:`task_request_from_kb` — the full ``execute-task`` content for a
  Task instance (consults the ``Need Planning`` flag);
* :func:`kb_from_process` — the reverse: register a process description
  (e.g. a freshly planned one) as instances, so plans can be archived in
  the system knowledge base exactly as Section 3 describes.

Constraints (e.g. ``Cons1``) are named conditions; pass them in a registry
mapping name -> :class:`Condition`.  The case-study registry lives in
:mod:`repro.virolab.workflow`.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.errors import OntologyError, ProcessStructureError
from repro.ontology import (
    ACTIVITY,
    CASE_DESCRIPTION,
    PROCESS_DESCRIPTION,
    TASK,
    TRANSITION,
    Instance,
    KnowledgeBase,
)
from repro.process.conditions import Condition
from repro.process.model import Activity, ActivityKind, ProcessDescription

__all__ = [
    "process_from_kb",
    "case_from_kb",
    "task_request_from_kb",
    "kb_from_process",
]

_KIND_BY_NAME = {kind.value: kind for kind in ActivityKind}


def _activity_from_instance(inst: Instance) -> Activity:
    type_name = inst.get("Type")
    kind = _KIND_BY_NAME.get(type_name)
    if kind is None:
        raise ProcessStructureError(
            f"activity instance {inst.id!r} has unknown Type {type_name!r}"
        )
    name = inst.get("Name")
    if kind is ActivityKind.END_USER:
        return Activity(
            name,
            kind,
            service=inst.get("Service Name") or name,
            inputs=tuple(inst.get("Input Data Set") or ()),
            outputs=tuple(inst.get("Output Data Set") or ()),
            constraint=inst.get("Constraint"),
        )
    return Activity(name, kind, constraint=inst.get("Constraint"))


def process_from_kb(
    kb: KnowledgeBase,
    process_id: str,
    constraints: Mapping[str, Condition] | None = None,
) -> ProcessDescription:
    """Reconstruct a process description from its frame instances.

    Choice-transition conditions are recovered from the *constraints*
    registry: a transition leaving a Choice whose paired loop/branch logic
    is governed by a named constraint (found on any activity in the graph,
    e.g. PSF's ``Cons1``) gets that condition on its non-default arc.  The
    convention matches Figure 13: the constraint's ``then`` destination is
    the conditioned arc, the remaining arc is the default.
    """
    constraints = dict(constraints or {})
    pd_inst = kb.get_instance(process_id)
    if pd_inst.cls != PROCESS_DESCRIPTION:
        raise OntologyError(
            f"instance {process_id!r} is a {pd_inst.cls}, not a "
            f"{PROCESS_DESCRIPTION}"
        )
    pd = ProcessDescription(pd_inst.get("Name") or process_id)

    activity_instances = kb.resolve(pd_inst, "Activity Set")
    if not activity_instances:
        raise ProcessStructureError(
            f"process {process_id!r} has an empty Activity Set"
        )
    constraint_of: dict[str, str] = {}
    for inst in activity_instances:
        activity = _activity_from_instance(inst)
        pd.add_activity(activity)
        if activity.constraint:
            constraint_of[activity.name] = activity.constraint

    for inst in kb.resolve(pd_inst, "Transition Set"):
        pd.connect(
            inst.get("Source Activity"),
            inst.get("Destination Activity"),
            id=inst.get("ID"),
        )

    # Attach conditions to Choice out-arcs.  Convention (Figure 13): each
    # Choice is governed by the constraint named on its predecessor
    # activity chain (the activity feeding the Choice); the arc that goes
    # *backwards* (to a Merge loop head) or, failing that, the first
    # listed arc, carries the condition; the remaining arc is the default.
    for activity in pd.activities:
        if activity.kind is not ActivityKind.CHOICE:
            continue
        preds = pd.predecessors(activity.name)
        constraint_name = next(
            (constraint_of[p] for p in preds if p in constraint_of), None
        )
        if constraint_name is None:
            continue
        condition = constraints.get(constraint_name)
        if condition is None:
            raise OntologyError(
                f"constraint {constraint_name!r} referenced by the KB has "
                f"no definition in the constraint registry"
            )
        successors = pd.successors(activity.name)
        merge_arcs = [
            s for s in successors
            if pd.activity(s).kind is ActivityKind.MERGE
        ]
        target = merge_arcs[0] if merge_arcs else successors[0]
        pd.set_condition(activity.name, target, condition)
    return pd


def case_from_kb(kb: KnowledgeBase, case_id: str) -> dict[str, Any]:
    """Initial-data properties (+ goal text) from a CaseDescription."""
    case = kb.get_instance(case_id)
    if case.cls != CASE_DESCRIPTION:
        raise OntologyError(
            f"instance {case_id!r} is a {case.cls}, not a {CASE_DESCRIPTION}"
        )
    initial_data: dict[str, dict[str, Any]] = {}
    for data in kb.resolve(case, "Initial Data Set"):
        props: dict[str, Any] = {}
        for slot in ("Classification", "Format", "Location", "Size", "Type"):
            value = data.get(slot)
            if value is not None:
                props[slot] = value
        initial_data[data.get("Name") or data.id] = props
    return {
        "initial_data": initial_data,
        "result_set": [d.get("Name") or d.id for d in kb.resolve(case, "Result Set")],
        "goal": case.get("Goal Condition") or case.get("Goal") or "",
        "constraint": case.get("Constraint"),
    }


def task_request_from_kb(
    kb: KnowledgeBase,
    task_id: str,
    constraints: Mapping[str, Condition] | None = None,
) -> dict[str, Any]:
    """The ``execute-task`` request content for a Task instance.

    Honours the Figure-12 ``Need Planning`` flag: when set, the request
    omits the process description so the coordination service obtains one
    from the planning service (the Figure-2 path); the caller must then
    add a ``problem`` entry.
    """
    task = kb.get_instance(task_id)
    if task.cls != TASK:
        raise OntologyError(f"instance {task_id!r} is a {task.cls}, not a {TASK}")
    request: dict[str, Any] = {"task": task.get("Name") or task.id}
    case_ref = task.get("Case Description")
    if case_ref:
        request.update(
            {
                k: v
                for k, v in case_from_kb(kb, case_ref).items()
                if k == "initial_data"
            }
        )
    if not task.get("Need Planning"):
        pd_ref = task.get("Process Description")
        if pd_ref is None:
            raise OntologyError(
                f"task {task_id!r} has neither Need Planning nor a "
                f"Process Description"
            )
        request["process"] = process_from_kb(kb, pd_ref, constraints)
    return request


def kb_from_process(
    kb: KnowledgeBase,
    pd: ProcessDescription,
    creator: str = "planning",
    id_prefix: str | None = None,
) -> Instance:
    """Archive a process description into *kb* as frame instances.

    Returns the ProcessDescription instance.  Ids are prefixed to avoid
    collisions when several plans are archived ("Process descriptions can
    be archived using the system knowledge base", Section 3).
    """
    prefix = id_prefix if id_prefix is not None else pd.name
    activity_ids = []
    for index, activity in enumerate(pd.activities, start=1):
        values: dict[str, Any] = {
            "ID": f"{prefix}/A{index}",
            "Name": activity.name,
            "Type": activity.kind.value,
        }
        if activity.kind is ActivityKind.END_USER:
            values["Service Name"] = activity.service_name
            if activity.inputs:
                values["Input Data Set"] = list(activity.inputs)
            if activity.outputs:
                values["Output Data Set"] = list(activity.outputs)
        if activity.constraint:
            values["Constraint"] = activity.constraint
        values["Direct Predecessor Set"] = list(pd.predecessors(activity.name))
        values["Direct Successor Set"] = list(pd.successors(activity.name))
        inst = kb.new_instance(ACTIVITY, values, id=f"{prefix}/A{index}")
        activity_ids.append(inst.id)

    transition_ids = []
    for tr in pd.transitions:
        inst = kb.new_instance(
            TRANSITION,
            {
                "ID": f"{prefix}/{tr.id}",
                "Source Activity": tr.source,
                "Destination Activity": tr.destination,
            },
            id=f"{prefix}/{tr.id}",
        )
        transition_ids.append(inst.id)

    return kb.new_instance(
        PROCESS_DESCRIPTION,
        {
            "ID": prefix,
            "Name": pd.name,
            "Activity Set": activity_ids,
            "Transition Set": transition_ids,
            "Creator": creator,
        },
        id=prefix,
    )
