"""Frame-based knowledge representation: classes, slots, instances, KB.

The paper maintains its metainformation in Protégé-style frame ontologies
(Figure 12 shows the schema, Figure 13 the instances used to enact the case
study).  This module implements an equivalent frame system from scratch:

* :class:`Slot` — a named, typed property of a class, with facets
  (cardinality, required, default, allowed referenced classes).
* :class:`OntologyClass` — a named frame with slots and single inheritance.
* :class:`Instance` — a filled-in frame.
* :class:`KnowledgeBase` — the container; distinguishes *ontology shells*
  (classes and slots without instances) from *populated ontologies*, exactly
  the distinction the paper's ontology service draws.

Values are plain Python objects; instance references are stored as instance
ids (strings) and resolved through the KB, which keeps serialization trivial
and avoids reference cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import Any

from repro._util import IdGenerator, valid_identifier
from repro.errors import (
    SchemaError,
    UnknownClassError,
    UnknownInstanceError,
    UnknownSlotError,
    ValidationError,
)

__all__ = [
    "SlotType",
    "Cardinality",
    "Slot",
    "OntologyClass",
    "Instance",
    "KnowledgeBase",
]


class SlotType(enum.Enum):
    """Primitive value types a slot may hold.

    ``INSTANCE`` slots hold ids of other instances (frame references);
    ``ANY`` disables type checking for that slot.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    INSTANCE = "instance"
    ANY = "any"


class Cardinality(enum.Enum):
    SINGLE = "single"
    MULTIPLE = "multiple"


_PY_TYPES: dict[SlotType, tuple[type, ...]] = {
    SlotType.STRING: (str,),
    SlotType.INTEGER: (int,),
    SlotType.FLOAT: (int, float),
    SlotType.BOOLEAN: (bool,),
    SlotType.INSTANCE: (str,),
}


@dataclass(frozen=True)
class Slot:
    """A typed property on an ontology class.

    Parameters mirror Protégé slot facets: *type*, *cardinality*, whether a
    value is *required* for an instance to validate, a *default*, and — for
    INSTANCE slots — the set of class names the referenced instance must
    belong to (empty set = any class).
    """

    name: str
    type: SlotType = SlotType.STRING
    cardinality: Cardinality = Cardinality.SINGLE
    required: bool = False
    default: Any = None
    allowed_classes: frozenset[str] = frozenset()
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name or not valid_identifier(self.name.replace(" ", "")):
            raise SchemaError(f"invalid slot name: {self.name!r}")
        if self.allowed_classes and self.type is not SlotType.INSTANCE:
            raise SchemaError(
                f"slot {self.name!r}: allowed_classes only applies to INSTANCE slots"
            )
        if not isinstance(self.allowed_classes, frozenset):
            object.__setattr__(self, "allowed_classes", frozenset(self.allowed_classes))

    def check_value(self, value: Any) -> None:
        """Raise :class:`ValidationError` if *value* does not fit this slot.

        Reference targets are checked by the KB (which knows the instances),
        not here.
        """
        if self.cardinality is Cardinality.MULTIPLE:
            if not isinstance(value, (list, tuple)):
                raise ValidationError(
                    f"slot {self.name!r} is multi-valued; got {type(value).__name__}"
                )
            for item in value:
                self._check_scalar(item)
        else:
            self._check_scalar(value)

    def _check_scalar(self, value: Any) -> None:
        if value is None or self.type is SlotType.ANY:
            return
        expected = _PY_TYPES[self.type]
        # bool is an int subclass; keep INTEGER slots from accepting True.
        if self.type is SlotType.INTEGER and isinstance(value, bool):
            raise ValidationError(f"slot {self.name!r}: expected integer, got bool")
        if not isinstance(value, expected):
            raise ValidationError(
                f"slot {self.name!r}: expected {self.type.value}, "
                f"got {type(value).__name__} ({value!r})"
            )


class OntologyClass:
    """A named frame: a set of slots, optionally inheriting from a parent."""

    def __init__(
        self,
        name: str,
        slots: Iterable[Slot] = (),
        parent: str | None = None,
        abstract: bool = False,
        doc: str = "",
    ) -> None:
        if not valid_identifier(name.replace(" ", "")):
            raise SchemaError(f"invalid class name: {name!r}")
        self.name = name
        self.parent = parent
        self.abstract = abstract
        self.doc = doc
        self._slots: dict[str, Slot] = {}
        for slot in slots:
            self.add_slot(slot)

    def add_slot(self, slot: Slot) -> None:
        if slot.name in self._slots:
            raise SchemaError(f"class {self.name!r}: duplicate slot {slot.name!r}")
        self._slots[slot.name] = slot

    @property
    def own_slots(self) -> tuple[Slot, ...]:
        """Slots declared directly on this class (not inherited)."""
        return tuple(self._slots.values())

    def own_slot(self, name: str) -> Slot | None:
        return self._slots.get(name)

    def __repr__(self) -> str:
        return f"OntologyClass({self.name!r}, slots={sorted(self._slots)})"


@dataclass
class Instance:
    """A filled-in frame: an id, a class name, and slot values.

    Slot values live in a plain dict; access goes through :meth:`get` /
    :meth:`set` so the owning KB can validate.  Instances may exist detached
    from a KB (e.g. while being built), in which case no validation happens
    until they are added.
    """

    id: str
    cls: str
    values: dict[str, Any] = field(default_factory=dict)

    #: Owning KB once registered (class attribute, not a dataclass field):
    #: lets :meth:`set` keep the KB's slot indexes consistent.
    _kb = None

    def get(self, slot: str, default: Any = None) -> Any:
        return self.values.get(slot, default)

    def set(self, slot: str, value: Any) -> None:
        self.values[slot] = value
        if self._kb is not None:
            self._kb._slot_mutated(slot)

    def __contains__(self, slot: str) -> bool:
        return slot in self.values

    def __repr__(self) -> str:
        return f"Instance({self.id!r}, cls={self.cls!r})"


class KnowledgeBase:
    """A set of ontology classes plus their instances.

    The paper's ontology service distributes both *ontology shells*
    (:meth:`shell`) and *populated ontologies* (the full KB); the same class
    models global and user-specific ontologies — they are simply separate
    KnowledgeBase objects that can be merged (:meth:`merge`).
    """

    def __init__(self, name: str = "kb") -> None:
        self.name = name
        self._classes: dict[str, OntologyClass] = {}
        self._instances: dict[str, Instance] = {}
        self._by_class: dict[str, set[str]] = {}
        self._ids = IdGenerator()
        #: Bumped on every structural change (class added, instance added /
        #: removed / slot set) — external caches key their entries on it.
        self.version = 0
        #: Lazy hash indexes: slot name -> value -> set of instance ids.
        self._slot_indexes: dict[str, dict[Any, set[str]]] = {}
        #: Slots observed holding unhashable values — never indexed.
        self._unindexable_slots: set[str] = set()
        #: Telemetry for the benchmark suite.
        self.index_hits = 0
        self.index_builds = 0

    # -- classes ----------------------------------------------------------- #
    def add_class(self, cls: OntologyClass) -> OntologyClass:
        if cls.name in self._classes:
            raise SchemaError(f"duplicate class {cls.name!r}")
        if cls.parent is not None and cls.parent not in self._classes:
            raise UnknownClassError(
                f"class {cls.name!r}: unknown parent {cls.parent!r}"
            )
        self._classes[cls.name] = cls
        self._by_class.setdefault(cls.name, set())
        self.version += 1
        return cls

    def define_class(
        self,
        name: str,
        slots: Iterable[Slot] = (),
        parent: str | None = None,
        abstract: bool = False,
        doc: str = "",
    ) -> OntologyClass:
        """Convenience: construct and register a class in one call."""
        return self.add_class(OntologyClass(name, slots, parent, abstract, doc))

    def get_class(self, name: str) -> OntologyClass:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    def ancestors(self, name: str) -> list[str]:
        """Class names from *name* up to the root (inclusive of *name*)."""
        chain: list[str] = []
        current: str | None = name
        while current is not None:
            if current in chain:
                raise SchemaError(f"inheritance cycle at class {current!r}")
            chain.append(current)
            current = self.get_class(current).parent
        return chain

    def is_subclass(self, name: str, ancestor: str) -> bool:
        return ancestor in self.ancestors(name)

    def slots_of(self, class_name: str) -> dict[str, Slot]:
        """All slots of a class, inherited ones included (child overrides)."""
        merged: dict[str, Slot] = {}
        for cls_name in reversed(self.ancestors(class_name)):
            for slot in self.get_class(cls_name).own_slots:
                merged[slot.name] = slot
        return merged

    def slot_of(self, class_name: str, slot_name: str) -> Slot:
        slot = self.slots_of(class_name).get(slot_name)
        if slot is None:
            raise UnknownSlotError(
                f"class {class_name!r} has no slot {slot_name!r}"
            )
        return slot

    # -- instances --------------------------------------------------------- #
    def new_instance(
        self,
        cls: str,
        values: Mapping[str, Any] | None = None,
        id: str | None = None,
        validate: bool = True,
    ) -> Instance:
        """Create, validate and register an instance of *cls*.

        When *id* is omitted a deterministic ``<cls>-N`` id is generated.
        Reference targets are *not* required to exist yet (instances are
        often created in dependency cycles); call :meth:`validate_references`
        or :meth:`validate_all` once the KB is fully populated.
        """
        klass = self.get_class(cls)
        if klass.abstract:
            raise ValidationError(f"class {cls!r} is abstract")
        if id is None:
            id = self._ids.next(f"{cls}-")
        if id in self._instances:
            raise ValidationError(f"duplicate instance id {id!r}")
        instance = Instance(id=id, cls=cls, values=dict(values or {}))
        self._apply_defaults(instance)
        if validate:
            self.validate_instance(instance, check_refs=False)
        self._instances[id] = instance
        for ancestor in self.ancestors(cls):
            self._by_class.setdefault(ancestor, set()).add(id)
        instance._kb = self
        self._index_added(instance)
        return instance

    def add_instance(self, instance: Instance, validate: bool = True) -> Instance:
        """Register an externally-built instance."""
        return self.new_instance(
            instance.cls, instance.values, id=instance.id, validate=validate
        )

    def _apply_defaults(self, instance: Instance) -> None:
        for slot in self.slots_of(instance.cls).values():
            if slot.name not in instance.values and slot.default is not None:
                default = slot.default
                if slot.cardinality is Cardinality.MULTIPLE and isinstance(
                    default, (list, tuple)
                ):
                    default = list(default)
                instance.values[slot.name] = default

    def get_instance(self, id: str) -> Instance:
        try:
            return self._instances[id]
        except KeyError:
            raise UnknownInstanceError(f"unknown instance {id!r}") from None

    def has_instance(self, id: str) -> bool:
        return id in self._instances

    def remove_instance(self, id: str) -> Instance:
        instance = self.get_instance(id)
        del self._instances[id]
        for ids in self._by_class.values():
            ids.discard(id)
        self._index_removed(instance)
        if instance._kb is self:
            instance._kb = None
        return instance

    def instances_of(self, cls: str, direct_only: bool = False) -> list[Instance]:
        """All instances of *cls* (including subclasses unless direct_only)."""
        self.get_class(cls)  # raise on unknown class
        ids = list(self._by_class.get(cls, ()))
        if direct_only:
            ids = [i for i in ids if self._instances[i].cls == cls]
        return [self._instances[i] for i in sorted(ids)]

    def instances(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    def __len__(self) -> int:
        return len(self._instances)

    # -- resolution -------------------------------------------------------- #
    def resolve(self, instance: Instance, slot_name: str) -> Any:
        """Return the value of a slot, dereferencing INSTANCE slots.

        Multi-valued reference slots resolve to a list of Instance objects.
        Missing optional slots resolve to None (or [] when multi-valued).
        """
        slot = self.slot_of(instance.cls, slot_name)
        value = instance.get(slot_name)
        if value is None:
            return [] if slot.cardinality is Cardinality.MULTIPLE else None
        if slot.type is not SlotType.INSTANCE:
            return value
        if slot.cardinality is Cardinality.MULTIPLE:
            return [self.get_instance(ref) for ref in value]
        return self.get_instance(value)

    # -- validation -------------------------------------------------------- #
    def validate_instance(self, instance: Instance, check_refs: bool = True) -> None:
        """Raise :class:`ValidationError` on any schema violation."""
        slots = self.slots_of(instance.cls)
        for name in instance.values:
            if name not in slots:
                raise UnknownSlotError(
                    f"instance {instance.id!r}: class {instance.cls!r} "
                    f"has no slot {name!r}"
                )
        for slot in slots.values():
            value = instance.get(slot.name)
            if value is None:
                if slot.required:
                    raise ValidationError(
                        f"instance {instance.id!r}: required slot "
                        f"{slot.name!r} is missing"
                    )
                continue
            slot.check_value(value)
            if check_refs and slot.type is SlotType.INSTANCE:
                refs = value if slot.cardinality is Cardinality.MULTIPLE else [value]
                for ref in refs:
                    target = self.get_instance(ref)
                    if slot.allowed_classes and not any(
                        self.is_subclass(target.cls, allowed)
                        for allowed in slot.allowed_classes
                    ):
                        raise ValidationError(
                            f"instance {instance.id!r}: slot {slot.name!r} "
                            f"references {ref!r} of class {target.cls!r}, "
                            f"allowed: {sorted(slot.allowed_classes)}"
                        )

    def validate_all(self) -> None:
        """Validate every instance, including cross-references."""
        for instance in self._instances.values():
            self.validate_instance(instance, check_refs=True)

    # -- shells and merging ------------------------------------------------ #
    def shell(self, name: str | None = None) -> "KnowledgeBase":
        """Return a copy with classes and slots but no instances.

        This is precisely what the paper calls an *ontology shell*.
        """
        out = KnowledgeBase(name or f"{self.name}-shell")
        for cls_name in self._topo_classes():
            cls = self._classes[cls_name]
            out.add_class(
                OntologyClass(cls.name, cls.own_slots, cls.parent, cls.abstract, cls.doc)
            )
        return out

    def _topo_classes(self) -> list[str]:
        """Class names ordered parents-before-children."""
        out: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            parent = self._classes[name].parent
            if parent is not None:
                visit(parent)
            seen.add(name)
            out.append(name)

        for name in self._classes:
            visit(name)
        return out

    def merge(self, other: "KnowledgeBase") -> None:
        """Merge *other*'s classes and instances into this KB.

        Identical-name classes must be structurally compatible (same slots);
        instance-id collisions are errors.  Used to combine a global ontology
        with user-specific ontologies.
        """
        for cls_name in other._topo_classes():
            cls = other._classes[cls_name]
            if cls_name in self._classes:
                mine = self._classes[cls_name]
                if {s.name for s in mine.own_slots} != {s.name for s in cls.own_slots}:
                    raise SchemaError(
                        f"merge conflict: class {cls_name!r} has differing slots"
                    )
                continue
            self.add_class(
                OntologyClass(cls.name, cls.own_slots, cls.parent, cls.abstract, cls.doc)
            )
        for instance in other.instances():
            self.new_instance(instance.cls, instance.values, id=instance.id)

    # -- hash indexes -------------------------------------------------------- #
    def _index_put(
        self, index: dict[Any, set[str]], slot_name: str, value: Any, id: str
    ) -> bool:
        """Add one (value, id) pair to *index*; on an unhashable value the
        slot is permanently demoted to scans and False is returned."""
        try:
            bucket = index.get(value)
        except TypeError:
            self._unindexable_slots.add(slot_name)
            self._slot_indexes.pop(slot_name, None)
            return False
        if bucket is None:
            index[value] = {id}
        else:
            bucket.add(id)
        return True

    def _index_for(self, slot_name: str) -> dict[Any, set[str]] | None:
        """The (lazily built) value index for *slot_name*, or None when the
        slot holds unhashable values.  ``None``-valued slots are left out:
        equality lookups never match them (see :meth:`equality_candidates`)."""
        if slot_name in self._unindexable_slots:
            return None
        index = self._slot_indexes.get(slot_name)
        if index is None:
            index = {}
            for instance in self._instances.values():
                value = instance.values.get(slot_name)
                if value is None:
                    continue
                if not self._index_put(index, slot_name, value, instance.id):
                    return None
            self._slot_indexes[slot_name] = index
            self.index_builds += 1
        return index

    def _index_added(self, instance: Instance) -> None:
        self.version += 1
        for slot_name, value in instance.values.items():
            if value is None:
                continue
            index = self._slot_indexes.get(slot_name)
            if index is not None:
                self._index_put(index, slot_name, value, instance.id)

    def _index_removed(self, instance: Instance) -> None:
        self.version += 1
        for slot_name, value in instance.values.items():
            index = self._slot_indexes.get(slot_name)
            if index is None:
                continue
            try:
                bucket = index.get(value)
            except TypeError:  # pragma: no cover - such slots are never indexed
                continue
            if bucket is not None:
                bucket.discard(instance.id)
                if not bucket:
                    del index[value]

    def _slot_mutated(self, slot_name: str) -> None:
        """In-place ``Instance.set``: drop that slot's index (cheap, rare)."""
        self.version += 1
        self._slot_indexes.pop(slot_name, None)
        self._unindexable_slots.discard(slot_name)

    def invalidate_indexes(self) -> None:
        """Drop every hash index and bump :attr:`version`.

        Call this after mutating ``Instance.values`` dicts directly
        (bypassing :meth:`Instance.set`), which the indexes cannot observe.
        """
        self.version += 1
        self._slot_indexes.clear()
        self._unindexable_slots.clear()

    def equality_candidates(
        self, cls: str | None, slot_name: str, value: Any
    ) -> set[str] | None:
        """Ids of instances whose *slot_name* stores exactly *value*, via
        the hash index; restricted to *cls* (subclasses included) when
        given.  Returns None when the index cannot answer — *value* is
        None or unhashable, or the slot holds unhashable values — and the
        caller must fall back to a scan.  Callers re-verify candidates
        against their full constraint semantics; the index only narrows.
        """
        if value is None:
            return None
        index = self._index_for(slot_name)
        if index is None:
            return None
        try:
            bucket = index.get(value)
        except TypeError:
            return None
        ids = set(bucket) if bucket else set()
        if cls is not None:
            ids &= self._by_class.get(cls, set())
        self.index_hits += 1
        return ids

    # -- queries ------------------------------------------------------------ #
    def find(
        self,
        cls: str | None = None,
        where: Callable[[Instance], bool] | None = None,
        **slot_equals: Any,
    ) -> list[Instance]:
        """Simple query: filter instances by class, slot equality, predicate.

        Slot-equality filters are answered through the hash indexes when
        possible (class given, hashable non-None values); results are in
        the same sorted-id order as :meth:`instances_of` either way.
        """
        pool: Iterable[Instance] | None = None
        if cls is not None and slot_equals:
            self.get_class(cls)  # raise on unknown class, like instances_of
            ids: set[str] | None = None
            for k, v in slot_equals.items():
                candidates = self.equality_candidates(cls, k, v)
                if candidates is None:
                    continue
                ids = candidates if ids is None else ids & candidates
                if not ids:
                    return []
            if ids is not None:
                pool = [self._instances[i] for i in sorted(ids)]
        if pool is None:
            pool = self.instances_of(cls) if cls is not None else list(self.instances())
        out = []
        for inst in pool:
            if any(inst.get(k) != v for k, v in slot_equals.items()):
                continue
            if where is not None and not where(inst):
                continue
            out.append(inst)
        return out

    def find_one(self, cls: str | None = None, **slot_equals: Any) -> Instance:
        matches = self.find(cls, **slot_equals)
        if len(matches) != 1:
            raise UnknownInstanceError(
                f"expected exactly one match for cls={cls!r} {slot_equals!r}; "
                f"found {len(matches)}"
            )
        return matches[0]
