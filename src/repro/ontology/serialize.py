"""JSON (de)serialization for knowledge bases.

Ontology services in the paper "maintain and distribute ontology shells ...
as well as ontologies populated with instances"; distribution needs a wire
format.  We use a plain JSON-compatible dict so KBs can be shipped between
agents, archived by the persistent-storage service, and diffed in tests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SchemaError
from repro.ontology.frames import (
    Cardinality,
    KnowledgeBase,
    OntologyClass,
    Slot,
    SlotType,
)

__all__ = ["kb_to_dict", "kb_from_dict", "kb_to_json", "kb_from_json"]

_FORMAT_VERSION = 1


def _slot_to_dict(slot: Slot) -> dict[str, Any]:
    out: dict[str, Any] = {"name": slot.name, "type": slot.type.value}
    if slot.cardinality is not Cardinality.SINGLE:
        out["cardinality"] = slot.cardinality.value
    if slot.required:
        out["required"] = True
    if slot.default is not None:
        out["default"] = slot.default
    if slot.allowed_classes:
        out["allowed_classes"] = sorted(slot.allowed_classes)
    if slot.doc:
        out["doc"] = slot.doc
    return out


def _slot_from_dict(data: dict[str, Any]) -> Slot:
    return Slot(
        name=data["name"],
        type=SlotType(data.get("type", "string")),
        cardinality=Cardinality(data.get("cardinality", "single")),
        required=bool(data.get("required", False)),
        default=data.get("default"),
        allowed_classes=frozenset(data.get("allowed_classes", ())),
        doc=data.get("doc", ""),
    )


def kb_to_dict(kb: KnowledgeBase) -> dict[str, Any]:
    """Serialize classes and instances into a JSON-compatible dict."""
    classes = []
    for name in kb._topo_classes():
        cls = kb.get_class(name)
        entry: dict[str, Any] = {
            "name": cls.name,
            "slots": [_slot_to_dict(s) for s in cls.own_slots],
        }
        if cls.parent is not None:
            entry["parent"] = cls.parent
        if cls.abstract:
            entry["abstract"] = True
        if cls.doc:
            entry["doc"] = cls.doc
        classes.append(entry)
    instances = [
        {"id": inst.id, "cls": inst.cls, "values": inst.values}
        for inst in sorted(kb.instances(), key=lambda i: i.id)
    ]
    return {
        "format": _FORMAT_VERSION,
        "name": kb.name,
        "classes": classes,
        "instances": instances,
    }


def kb_from_dict(data: dict[str, Any]) -> KnowledgeBase:
    """Rebuild a KnowledgeBase from :func:`kb_to_dict` output."""
    if data.get("format") != _FORMAT_VERSION:
        raise SchemaError(f"unsupported KB format: {data.get('format')!r}")
    kb = KnowledgeBase(data.get("name", "kb"))
    for entry in data.get("classes", ()):
        kb.add_class(
            OntologyClass(
                entry["name"],
                [_slot_from_dict(s) for s in entry.get("slots", ())],
                parent=entry.get("parent"),
                abstract=bool(entry.get("abstract", False)),
                doc=entry.get("doc", ""),
            )
        )
    for entry in data.get("instances", ()):
        kb.new_instance(entry["cls"], entry.get("values", {}), id=entry["id"])
    kb.validate_all()
    return kb


def kb_to_json(kb: KnowledgeBase, indent: int | None = None) -> str:
    return json.dumps(kb_to_dict(kb), indent=indent, sort_keys=True)


def kb_from_json(text: str) -> KnowledgeBase:
    return kb_from_dict(json.loads(text))
