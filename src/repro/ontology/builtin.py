"""The paper's built-in ontology schema (Figure 12).

Figure 12 shows the "logic view of the ontology structure used by the
framework": ten frame classes — Task, Process Description, Case Description,
Activity, Transition, Data, Service, Resource, Hardware, Software — with the
slots reproduced verbatim below.  :func:`builtin_shell` returns a fresh
ontology shell with exactly these classes; services that need to exchange
metainformation start from this shell and populate it (Figure 13 instances
are built in :mod:`repro.virolab.workflow`).

Slot names keep the figure's spelling (including spaces) so the instance
tables of Figure 13 can be transcribed directly.
"""

from __future__ import annotations

from repro.ontology.frames import Cardinality, KnowledgeBase, Slot, SlotType

__all__ = [
    "builtin_shell",
    "TASK",
    "PROCESS_DESCRIPTION",
    "CASE_DESCRIPTION",
    "ACTIVITY",
    "TRANSITION",
    "DATA",
    "SERVICE",
    "RESOURCE",
    "HARDWARE",
    "SOFTWARE",
    "BUILTIN_CLASS_NAMES",
]

TASK = "Task"
PROCESS_DESCRIPTION = "ProcessDescription"
CASE_DESCRIPTION = "CaseDescription"
ACTIVITY = "Activity"
TRANSITION = "Transition"
DATA = "Data"
SERVICE = "Service"
RESOURCE = "Resource"
HARDWARE = "Hardware"
SOFTWARE = "Software"

BUILTIN_CLASS_NAMES = (
    TASK,
    PROCESS_DESCRIPTION,
    CASE_DESCRIPTION,
    ACTIVITY,
    TRANSITION,
    DATA,
    SERVICE,
    RESOURCE,
    HARDWARE,
    SOFTWARE,
)

_S = SlotType.STRING
_I = SlotType.INTEGER
_F = SlotType.FLOAT
_B = SlotType.BOOLEAN
_REF = SlotType.INSTANCE
_MULTI = Cardinality.MULTIPLE


def _str(name: str, required: bool = False, doc: str = "") -> Slot:
    return Slot(name, _S, required=required, doc=doc)


def _strs(name: str, doc: str = "") -> Slot:
    return Slot(name, _S, cardinality=_MULTI, doc=doc)


def _ref(name: str, cls: str, required: bool = False, doc: str = "") -> Slot:
    return Slot(name, _REF, required=required, allowed_classes=frozenset({cls}), doc=doc)


def _refs(name: str, cls: str, doc: str = "") -> Slot:
    return Slot(
        name, _REF, cardinality=_MULTI, allowed_classes=frozenset({cls}), doc=doc
    )


def builtin_shell(name: str = "grid-ontology") -> KnowledgeBase:
    """Return a fresh ontology shell with the Figure-12 classes."""
    kb = KnowledgeBase(name)

    kb.define_class(
        HARDWARE,
        [
            _str("Type"),
            Slot("Speed", _F, doc="CPU speed, normalized GHz"),
            Slot("Size", _F, doc="memory size, GB"),
            Slot("Bandwidth", _F, doc="interconnect bandwidth, Gb/s"),
            Slot("Latency", _F, doc="interconnect latency, microseconds"),
            _str("Manufacturer"),
            _str("Model"),
            _str("Comment"),
        ],
        doc="Hardware profile of a resource (Figure 12).",
    )

    kb.define_class(
        SOFTWARE,
        [
            _str("Name", required=True),
            _str("Type"),
            _str("Manufacturer"),
            _str("Version"),
            _str("Distribution"),
        ],
        doc="Software installed on a resource (Figure 12).",
    )

    kb.define_class(
        RESOURCE,
        [
            _str("Name", required=True),
            _str("Type"),
            _str("Location"),
            Slot("Number of Nodes", _I),
            _str("Administration Domain"),
            _ref("Hardware", HARDWARE),
            _refs("Software", SOFTWARE),
            _strs("Access Set", doc="principals allowed to use the resource"),
        ],
        doc="A grid resource: nodes in one administrative domain (Figure 12).",
    )

    kb.define_class(
        DATA,
        [
            _str("Name", required=True),
            _str("Location"),
            Slot("Time Stamp", _F),
            Slot("Value", SlotType.ANY, doc="inline value for small data items"),
            _str("Category"),
            _str("Format"),
            _str("Owner"),
            _str("Creator", doc="user or the service that produced the data"),
            Slot("Size", _F, doc="bytes"),
            _str("Creation Date"),
            _str("Description"),
            _str("Latest Modified Date"),
            _str("Classification", doc="semantic class used by pre/postconditions"),
            _str("Type"),
            _str("Access Right"),
        ],
        doc="A data item manipulated by activities (Figure 12).",
    )

    kb.define_class(
        SERVICE,
        [
            _str("Name", required=True),
            _str("Type"),
            Slot("Time Stamp", _F),
            _strs("User Set"),
            _str("Location"),
            _str("Creation Date"),
            _str("Version"),
            _str("Description"),
            _strs("Command History"),
            _str("Input Condition", doc="condition id over the input data set"),
            _str("Output Condition", doc="condition id over the output data set"),
            _strs("Input Data Set", doc="formal input parameter names"),
            _strs("Output Data Set", doc="formal output parameter names"),
            _strs("Input Data Order"),
            _strs("Output Data Order"),
            Slot("Cost", _F),
            _ref("Resource", RESOURCE),
        ],
        doc="An end-user computing service (Figure 12).",
    )

    kb.define_class(
        TRANSITION,
        [
            _str("ID", required=True),
            _str("Source Activity", required=True),
            _str("Destination Activity", required=True),
        ],
        doc="A directed transition between two activities (Figure 12).",
    )

    kb.define_class(
        ACTIVITY,
        [
            _str("ID", required=True),
            _str("Name", required=True),
            _str("Task ID"),
            _str("Owner"),
            _str("Service Name"),
            _str(
                "Type",
                required=True,
                doc="Begin | End | End-user | Fork | Join | Choice | Merge",
            ),
            _str("Execution Location"),
            _strs("Input Data Set", doc="Data instance names consumed"),
            _strs("Output Data Set", doc="Data instance names produced"),
            _strs("Input Data Order"),
            _strs("Output Data Order"),
            _str("Status"),
            _str("Constraint", doc="constraint id, e.g. Cons1 in Figure 13"),
            _str("Work Directory"),
            _strs("Direct Predecessor Set"),
            _strs("Direct Successor Set"),
            Slot("Retry Count", _I, default=0),
            _str("Dispatched By"),
        ],
        doc="One activity of a process description (Figure 12).",
    )

    kb.define_class(
        PROCESS_DESCRIPTION,
        [
            _str("ID"),
            _str("Name", required=True),
            _str("Location"),
            _refs("Activity Set", ACTIVITY),
            _refs("Transition Set", TRANSITION),
            _str("Creator"),
        ],
        doc="A formal description of the complex problem (Figure 12).",
    )

    kb.define_class(
        CASE_DESCRIPTION,
        [
            _str("ID"),
            _str("Name", required=True),
            _refs("Initial Data Set", DATA),
            _refs("Result Set", DATA),
            _str("Constraint"),
            _str("Goal Condition"),
            _str("Goal", doc="textual goal, e.g. a result-set census"),
        ],
        doc="Instance information for one run of a process (Figure 12).",
    )

    kb.define_class(
        TASK,
        [
            _str("ID"),
            _str("Name", required=True),
            _str("Owner"),
            _str("Submit Location"),
            _str("Status"),
            _refs("Data Set", DATA),
            _refs("Result Set", DATA),
            _ref("Case Description", CASE_DESCRIPTION),
            _ref("Process Description", PROCESS_DESCRIPTION),
            Slot("Need Planning", _B, default=False),
        ],
        doc="A submitted computing task (Figure 12).",
    )

    return kb
