"""Frame-based metainformation layer (paper Section 6, Figures 12-13).

Public surface:

* :class:`~repro.ontology.frames.KnowledgeBase` and its building blocks
  (:class:`~repro.ontology.frames.OntologyClass`,
  :class:`~repro.ontology.frames.Slot`,
  :class:`~repro.ontology.frames.Instance`).
* :func:`~repro.ontology.builtin.builtin_shell` — the Figure-12 schema.
* JSON serialization helpers.
* :class:`~repro.ontology.query.Query` and
  :func:`~repro.ontology.query.equivalence_classes` for brokerage-style
  lookups.
"""

from repro.ontology.builtin import (
    ACTIVITY,
    BUILTIN_CLASS_NAMES,
    CASE_DESCRIPTION,
    DATA,
    HARDWARE,
    PROCESS_DESCRIPTION,
    RESOURCE,
    SERVICE,
    SOFTWARE,
    TASK,
    TRANSITION,
    builtin_shell,
)
from repro.ontology.frames import (
    Cardinality,
    Instance,
    KnowledgeBase,
    OntologyClass,
    Slot,
    SlotType,
)
from repro.ontology.query import Op, Query, SlotConstraint, equivalence_classes
from repro.ontology.serialize import kb_from_dict, kb_from_json, kb_to_dict, kb_to_json

__all__ = [
    "KnowledgeBase",
    "OntologyClass",
    "Slot",
    "SlotType",
    "Cardinality",
    "Instance",
    "builtin_shell",
    "BUILTIN_CLASS_NAMES",
    "TASK",
    "PROCESS_DESCRIPTION",
    "CASE_DESCRIPTION",
    "ACTIVITY",
    "TRANSITION",
    "DATA",
    "SERVICE",
    "RESOURCE",
    "HARDWARE",
    "SOFTWARE",
    "kb_to_dict",
    "kb_from_dict",
    "kb_to_json",
    "kb_from_json",
    "Query",
    "SlotConstraint",
    "Op",
    "equivalence_classes",
]
