"""Declarative queries over a knowledge base.

The matchmaking and brokerage services need slightly richer lookups than
``KnowledgeBase.find`` offers: comparisons on numeric slots, membership in
multi-valued slots, conjunction of constraints, and grouping resources into
equivalence classes ("brokers must ... group [resources] in multiple
equivalence classes based upon different sets of properties", Section 1).
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from collections.abc import Callable, Hashable, Iterable, Sequence
from typing import Any

from repro.errors import OntologyError
from repro.ontology.frames import Instance, KnowledgeBase

__all__ = ["Op", "SlotConstraint", "Query", "equivalence_classes"]


class Op(enum.Enum):
    """Comparison operators usable in a slot constraint."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "contains"
    IN = "in"

    def apply(self, left: Any, right: Any) -> bool:
        if self is Op.CONTAINS:
            return isinstance(left, (list, tuple, set, str)) and right in left
        if self is Op.IN:
            return left in right
        fn: Callable[[Any, Any], bool] = {
            Op.EQ: operator.eq,
            Op.NE: operator.ne,
            Op.LT: operator.lt,
            Op.LE: operator.le,
            Op.GT: operator.gt,
            Op.GE: operator.ge,
        }[self]
        try:
            return bool(fn(left, right))
        except TypeError:
            return False


@dataclass(frozen=True)
class SlotConstraint:
    """One requirement on a slot value, e.g. ``Speed >= 2.0``.

    ``path`` may traverse reference slots with ``/``: the constraint
    ``Hardware/Speed >= 2.0`` on a Resource follows the Hardware reference
    and compares its Speed slot.  A missing slot anywhere along the path
    fails the constraint (never raises).
    """

    path: str
    op: Op
    value: Any

    def __post_init__(self) -> None:
        if isinstance(self.op, str):
            object.__setattr__(self, "op", Op(self.op))
        # Path accessors are compiled once per constraint, not per match:
        # matchmaking runs the same constraint over every candidate.
        object.__setattr__(self, "parts", tuple(self.path.split("/")))

    def matches(self, kb: KnowledgeBase, instance: Instance) -> bool:
        current: Any = instance
        for part in self.parts:
            if not isinstance(current, Instance):
                return False
            try:
                current = kb.resolve(current, part)
            except OntologyError:
                return False
            if current is None:
                return False
        return self.op.apply(current, self.value)


@dataclass(frozen=True)
class Query:
    """Conjunction of slot constraints over instances of one class."""

    cls: str
    constraints: tuple[SlotConstraint, ...] = ()

    def where(self, path: str, op: Op | str, value: Any) -> "Query":
        op = Op(op) if isinstance(op, str) else op
        return Query(self.cls, self.constraints + (SlotConstraint(path, op, value),))

    def run(self, kb: KnowledgeBase) -> list[Instance]:
        """Matching instances, in the sorted-id order of ``instances_of``.

        Single-slot equality constraints narrow the scan through the KB's
        hash indexes; every constraint is still re-verified via
        :meth:`SlotConstraint.matches`, so the index is a pure
        accelerator and the results are scan-identical.
        """
        pool: set[str] | None = None
        for constraint in self.constraints:
            if constraint.op is not Op.EQ or len(constraint.parts) != 1:
                continue
            candidates = kb.equality_candidates(
                self.cls, constraint.parts[0], constraint.value
            )
            if candidates is None:
                continue
            pool = candidates if pool is None else pool & candidates
        if pool is None:
            instances = kb.instances_of(self.cls)
        else:
            kb.get_class(self.cls)  # preserve unknown-class errors
            instances = [kb.get_instance(i) for i in sorted(pool)]
        return [
            inst
            for inst in instances
            if all(c.matches(kb, inst) for c in self.constraints)
        ]


def equivalence_classes(
    kb: KnowledgeBase,
    instances: Iterable[Instance],
    key_paths: Sequence[str],
) -> dict[tuple[Hashable, ...], list[Instance]]:
    """Group instances by the tuple of values at *key_paths*.

    This is the brokerage-service primitive: resources whose key properties
    coincide are interchangeable for matchmaking purposes.  Unresolvable
    paths map to ``None`` in the key, and list values are frozen to tuples so
    keys stay hashable.
    """

    def value_at(inst: Instance, parts: tuple[str, ...]) -> Hashable:
        current: Any = inst
        for part in parts:
            if not isinstance(current, Instance):
                return None
            try:
                current = kb.resolve(current, part)
            except OntologyError:
                return None
        if isinstance(current, list):
            return tuple(
                item.id if isinstance(item, Instance) else item for item in current
            )
        if isinstance(current, Instance):
            return current.id
        return current

    # Split each key path once, not once per instance.
    split_paths = [tuple(path.split("/")) for path in key_paths]
    groups: dict[tuple[Hashable, ...], list[Instance]] = {}
    for inst in instances:
        key = tuple(value_at(inst, parts) for parts in split_paths)
        groups.setdefault(key, []).append(inst)
    return groups
