"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems define
narrower subclasses here (rather than locally) so that cross-module error
handling never needs to import deep internals.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "OntologyError",
    "SchemaError",
    "ValidationError",
    "UnknownClassError",
    "UnknownSlotError",
    "UnknownInstanceError",
    "ProcessError",
    "LexError",
    "ParseError",
    "ProcessStructureError",
    "ConditionError",
    "PlanError",
    "ConversionError",
    "TreeSizeError",
    "PlanningError",
    "SimulationError",
    "GridError",
    "ServiceError",
    "ServiceNotFoundError",
    "AuthenticationError",
    "EnactmentError",
    "StorageError",
    "SchedulingError",
    "VirolabError",
    "WorkloadError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------- #
# Ontology / metainformation
# --------------------------------------------------------------------------- #
class OntologyError(ReproError):
    """Base class for ontology subsystem errors."""


class SchemaError(OntologyError):
    """An ontology class or slot definition is malformed or conflicting."""


class ValidationError(OntologyError):
    """An instance violates its class schema (missing slot, bad type...)."""


class UnknownClassError(OntologyError):
    """Reference to an ontology class that is not in the knowledge base."""


class UnknownSlotError(OntologyError):
    """Reference to a slot not defined on the class (or its ancestors)."""


class UnknownInstanceError(OntologyError):
    """Reference to an instance id that is not in the knowledge base."""


# --------------------------------------------------------------------------- #
# Process descriptions
# --------------------------------------------------------------------------- #
class ProcessError(ReproError):
    """Base class for process-description errors."""


class LexError(ProcessError):
    """The process-description text contains an unrecognizable token."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.column = column


class ParseError(ProcessError):
    """The token stream does not conform to the Section-2 BNF grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.column = column


class ProcessStructureError(ProcessError):
    """A process-description graph violates a structural rule of Section 3.1

    (e.g. BEGIN not unique, JOIN without matching FORK, dangling transition).
    """


class ConditionError(ProcessError):
    """A condition expression is malformed or references unknown data."""


# --------------------------------------------------------------------------- #
# Plan trees and planning
# --------------------------------------------------------------------------- #
class PlanError(ReproError):
    """Base class for plan-tree errors."""


class ConversionError(PlanError):
    """Plan tree <-> process description conversion failed."""


class TreeSizeError(PlanError):
    """A plan tree exceeds the Smax size bound."""


class PlanningError(ReproError):
    """The planning service / GP planner could not produce a plan."""


# --------------------------------------------------------------------------- #
# Simulation and grid substrate
# --------------------------------------------------------------------------- #
class SimulationError(ReproError):
    """Discrete-event simulation kernel error."""


class GridError(ReproError):
    """Grid substrate (nodes, network, containers) error."""


class ServiceError(GridError):
    """Base class for core-service errors."""


class ServiceNotFoundError(ServiceError):
    """Lookup through the information service found no provider."""


class AuthenticationError(ServiceError):
    """Credential check or ticket validation failed."""


class EnactmentError(ServiceError):
    """The coordination service could not continue enacting a case."""


class StorageError(ServiceError):
    """Persistent-storage service error (missing object, bad location...)."""


class SchedulingError(ServiceError):
    """The scheduling service could not place a service on a container."""


# --------------------------------------------------------------------------- #
# Case study
# --------------------------------------------------------------------------- #
class VirolabError(ReproError):
    """Error in the virus-reconstruction case-study substrate."""


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
class WorkloadError(ReproError):
    """Error in a synthetic workload driver."""


# --------------------------------------------------------------------------- #
# Observability
# --------------------------------------------------------------------------- #
class ObservabilityError(ReproError):
    """Span recorder / telemetry pipeline misuse (double close, bad rule...)."""
