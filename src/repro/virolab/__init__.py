"""The Section-4 case study: 3D virus reconstruction in electron microscopy.

Two layers:

* the *computational substrate* — phantom generation, projection, and the
  four programs POD / P3DR / POR / PSF (:mod:`repro.virolab.pipeline`
  chains them in-process);
* the *workflow layer* — Figure 10's process description, Figure 11's plan
  tree, Figure 13's ontology instances, the Section-5 planning problem
  (:mod:`repro.virolab.workflow`), and the programs wrapped as grid
  end-user services (:mod:`repro.virolab.services`).
"""

from repro.virolab.geometry import (
    angular_distance,
    euler_to_matrix,
    orientation_grid,
    perturb_rotation,
    random_rotations,
)
from repro.virolab.p3dr import p3dr
from repro.virolab.phantom import make_initial_model, make_phantom
from repro.virolab.pipeline import (
    IterationStats,
    PipelineResult,
    default_problem_data,
    run_pipeline,
)
from repro.virolab.pod import match_orientations, pod, reference_projections
from repro.virolab.por import por
from repro.virolab.projection import Dataset, backproject, make_dataset, project
from repro.virolab.psf import fsc_curve, psf, resolution_angstroms
from repro.virolab.services import (
    make_virolab_services,
    setup_virolab_case,
    virolab_grid,
)
from repro.virolab.workflow import (
    ACTIVITY_TABLE,
    CONDITIONS,
    CONS1,
    DATA_CLASSIFICATIONS,
    GOAL,
    INITIAL_DATA,
    TRANSITION_TABLE,
    activity_specs,
    case_study_kb,
    plan_tree,
    planning_problem,
    process_description,
)

__all__ = [
    "DATA_CLASSIFICATIONS",
    "INITIAL_DATA",
    "CONDITIONS",
    "CONS1",
    "GOAL",
    "ACTIVITY_TABLE",
    "TRANSITION_TABLE",
    "activity_specs",
    "planning_problem",
    "process_description",
    "plan_tree",
    "case_study_kb",
    "euler_to_matrix",
    "random_rotations",
    "orientation_grid",
    "perturb_rotation",
    "angular_distance",
    "make_phantom",
    "make_initial_model",
    "project",
    "backproject",
    "Dataset",
    "make_dataset",
    "pod",
    "reference_projections",
    "match_orientations",
    "p3dr",
    "por",
    "psf",
    "fsc_curve",
    "resolution_angstroms",
    "run_pipeline",
    "default_problem_data",
    "PipelineResult",
    "IterationStats",
    "make_virolab_services",
    "setup_virolab_case",
    "virolab_grid",
]
