"""POR — parallel orientation refinement.

Given the current 3D model and per-image orientations, POR locally
improves each orientation: it proposes random perturbations of shrinking
magnitude around the current estimate, projects the model there, and
keeps the proposal when the correlation with the image improves.  One POR
pass tightens the orientations; alternating P3DR and POR is the paper's
iterative-refinement loop.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.errors import VirolabError
from repro.virolab.geometry import perturb_rotation
from repro.virolab.projection import project

__all__ = ["por"]


def _corr(a: np.ndarray, b: np.ndarray) -> float:
    fa = a.ravel() - a.mean()
    fb = b.ravel() - b.mean()
    na, nb = np.linalg.norm(fa), np.linalg.norm(fb)
    if na == 0 or nb == 0:
        return 0.0
    return float(fa @ fb / (na * nb))


def por(
    images: np.ndarray,
    orientations: np.ndarray,
    model: np.ndarray,
    trials: int = 12,
    magnitude: float = 0.25,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Refine *orientations* against *model*.

    *trials* perturbations per image, drawn at magnitudes shrinking from
    *magnitude* radians; greedy accept.  Returns (refined orientations,
    correlation scores).
    """
    if len(images) != len(orientations):
        raise VirolabError(
            f"{len(images)} images but {len(orientations)} orientations"
        )
    rng = as_rng(seed)
    refined = orientations.copy()
    scores = np.empty(len(images))
    for i, image in enumerate(images):
        current = refined[i]
        best_score = _corr(image, project(model, current))
        for t in range(trials):
            scale = magnitude * (1.0 - t / (2.0 * trials))
            candidate = perturb_rotation(current, scale, rng)
            score = _corr(image, project(model, candidate))
            if score > best_score:
                best_score = score
                current = candidate
        refined[i] = current
        scores[i] = best_score
    return refined, scores
