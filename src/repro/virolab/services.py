"""The case-study programs as grid end-user services.

Wraps POD / P3DR / POR / PSF as :class:`~repro.grid.container.EndUserService`
definitions whose *compute* callables run the real numerics.  Image stacks,
orientation files and 3D models travel as payloads through the persistent-
storage service; the message properties carry the Figure-13 metadata
(Classification, Value, ...), which is what Choice conditions such as Cons1
read during enactment.

Formal parameter names follow the Figure-13 service table (A, B, C -> D);
the container binds them to actual data names (D1..D12) using the
activity's Input/Output Data Order, so one P3DR service serves all four
P3DR activities with different parameter files — exactly the paper's
arrangement.

:func:`setup_virolab_case` prepares a full case: synthetic dataset in
storage, initial-data properties, payload keys, and per-service work
hints; :func:`virolab_grid` builds a ready-to-run environment.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import VirolabError
from repro.grid.container import ApplicationContainer, EndUserService
from repro.grid.environment import GridEnvironment
from repro.planner.config import GPConfig
from repro.services.bootstrap import CoreServices, standard_environment
from repro.virolab.p3dr import p3dr
from repro.virolab.phantom import make_initial_model, make_phantom
from repro.virolab.pod import pod
from repro.virolab.por import por
from repro.virolab.projection import Dataset, make_dataset
from repro.virolab.psf import psf
from repro.virolab.workflow import CONDITIONS, DATA_CLASSIFICATIONS

__all__ = ["make_virolab_services", "setup_virolab_case", "virolab_grid"]


def _subset_indices(count: int, subset: str) -> np.ndarray:
    idx = np.arange(count)
    if subset == "all":
        return idx
    if subset == "even":
        return idx[idx % 2 == 0]
    if subset == "odd":
        return idx[idx % 2 == 1]
    raise VirolabError(f"unknown stream subset {subset!r}")


def make_virolab_services(
    pod_directions: int = 128,
    pod_inplane: int = 12,
    por_trials: int = 10,
    por_seed: int = 0,
) -> list[EndUserService]:
    """The four end-user services with real compute callables."""

    def pod_compute(props, payloads):
        params: dict[str, Any] = payloads["params"]
        images: np.ndarray = payloads["images"]
        orientations, scores = pod(
            images,
            params["initial_model"],
            directions=int(params.get("directions", pod_directions)),
            inplane=int(params.get("inplane", pod_inplane)),
        )
        return (
            {
                "orients": {
                    "Classification": "Orientation File",
                    "Mean Correlation": float(scores.mean()),
                }
            },
            {"orients": orientations},
        )

    def p3dr_compute(props, payloads):
        params: dict[str, Any] = payloads["params"]
        images: np.ndarray = payloads["images"]
        orientations: np.ndarray = payloads["orients"]
        subset = str(params.get("subset", "all"))
        idx = _subset_indices(len(images), subset)
        model = p3dr(
            images[idx],
            orientations[idx],
            lowpass=params.get("lowpass", 0.7),
        )
        return (
            {"model": {"Classification": "3D Model", "Stream": subset}},
            {"model": model},
        )

    def por_compute(props, payloads):
        params: dict[str, Any] = payloads["params"]
        images: np.ndarray = payloads["images"]
        orientations: np.ndarray = payloads["orients"]
        model: np.ndarray = payloads["model"]
        refined, scores = por(
            images,
            orientations,
            model,
            trials=int(params.get("trials", por_trials)),
            magnitude=float(params.get("magnitude", 0.25)),
            seed=int(params.get("seed", por_seed)),
        )
        return (
            {
                "orients": {
                    "Classification": "Orientation File",
                    "Refined": "true",
                    "Mean Correlation": float(scores.mean()),
                }
            },
            {"orients": refined},
        )

    def psf_compute(props, payloads):
        params: dict[str, Any] = payloads["params"]
        result = psf(
            payloads["modelA"],
            payloads["modelB"],
            pixel_size=float(params.get("pixel_size", 2.0)),
        )
        return (
            {
                "resolution": {
                    "Classification": "Resolution File",
                    "Value": float(result["resolution"]),
                }
            },
            {"resolution": result["fsc"]},
        )

    return [
        EndUserService(
            "POD",
            work=40.0,
            compute=pod_compute,
            input_condition=CONDITIONS["C1"],
            inputs=("params", "images"),
            outputs=("orients",),
        ),
        EndUserService(
            "P3DR",
            work=25.0,
            compute=p3dr_compute,
            inputs=("params", "images", "orients"),
            outputs=("model",),
        ),
        EndUserService(
            "POR",
            work=30.0,
            compute=por_compute,
            inputs=("params", "images", "orients", "model"),
            outputs=("orients",),
        ),
        EndUserService(
            "PSF",
            work=10.0,
            compute=psf_compute,
            inputs=("params", "modelA", "modelB"),
            outputs=("resolution",),
        ),
    ]


def setup_virolab_case(
    storage,
    size: int = 24,
    count: int = 40,
    noise_sigma: float = 0.05,
    seed: int = 0,
    goal_resolution: float = 8.0,
) -> dict[str, Any]:
    """Stage a case in persistent storage; returns the coordination request
    pieces plus the hidden ground truth (for scoring only).

    Note the input conditions on the service definitions (C1) only check
    classifications, which the initial-data properties carry, so the staged
    case validates end to end.
    """
    phantom = make_phantom(size=size, seed=seed)
    initial_model = make_initial_model(phantom, seed=seed + 1)
    dataset: Dataset = make_dataset(
        phantom, count=count, noise_sigma=noise_sigma, seed=seed + 2
    )

    payloads: dict[str, Any] = {
        "D1": {"initial_model": initial_model, "directions": 128, "inplane": 12},
        "D2": {"subset": "all"},
        "D3": {"subset": "even"},
        "D4": {"subset": "odd"},
        "D5": {"trials": 10, "magnitude": 0.25, "seed": seed},
        "D6": {"pixel_size": 2.0},
        "D7": dataset.images,
    }
    payload_keys = {}
    for name, payload in payloads.items():
        key = f"case/{name}"
        storage.put(key, payload)
        payload_keys[name] = key

    initial_data = {
        name: {"Classification": DATA_CLASSIFICATIONS[name]}
        for name in payloads
    }
    work = {"POD": 40.0, "P3DR": 25.0, "POR": 30.0, "PSF": 10.0}
    return {
        "initial_data": initial_data,
        "payload_keys": payload_keys,
        "work": work,
        "goal_resolution": goal_resolution,
        "phantom": phantom,
        "dataset": dataset,
        "initial_model": initial_model,
    }


def virolab_grid(
    containers: int = 3,
    failure_probability: float = 0.0,
    planner_config: GPConfig | None = None,
    planner_seed: int = 0,
) -> tuple[GridEnvironment, CoreServices, list[ApplicationContainer]]:
    """A Figure-1 environment whose containers host the real case-study
    services."""
    return standard_environment(
        make_virolab_services(),
        containers=containers,
        failure_probability=failure_probability,
        planner_config=planner_config,
        planner_seed=planner_seed,
    )
