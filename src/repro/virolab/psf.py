"""PSF — structure-factor correlation and resolution estimation.

The paper: "we use a correlation procedure to determine the resolution of
the electron density map ... we construct two models of the 3D electron
density maps and determine the resolution by correlating the two models."
That procedure is Fourier Shell Correlation (FSC): correlate the two
half-set reconstructions shell by shell in Fourier space; the resolution
is the frequency where FSC crosses 0.5, reported in the paper's working
units (angstroms, given a pixel size).  Figure 13's Cons1 loops while the
resolution value is still above 8.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VirolabError

__all__ = ["fsc_curve", "resolution_angstroms", "psf"]

#: Nominal pixel size of the synthetic micrographs (angstrom / voxel).
PIXEL_SIZE_A = 2.0


def fsc_curve(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fourier Shell Correlation between maps *a* and *b*.

    Returns (spatial frequencies in cycles/voxel, FSC per shell).
    """
    if a.shape != b.shape or a.ndim != 3:
        raise VirolabError(
            f"maps must be identically-shaped 3D arrays, got {a.shape} vs {b.shape}"
        )
    size = a.shape[0]
    fa = np.fft.fftn(a)
    fb = np.fft.fftn(b)
    freqs = np.fft.fftfreq(size)
    fz, fy, fx = np.meshgrid(freqs, freqs, freqs, indexing="ij")
    radius = np.sqrt(fz**2 + fy**2 + fx**2)
    n_shells = size // 2
    edges = np.linspace(0.0, 0.5, n_shells + 1)
    shell_idx = np.clip(np.digitize(radius, edges) - 1, 0, n_shells - 1)

    cross = np.real(fa * np.conj(fb))
    power_a = np.abs(fa) ** 2
    power_b = np.abs(fb) ** 2
    num = np.bincount(shell_idx.ravel(), cross.ravel(), minlength=n_shells)
    den_a = np.bincount(shell_idx.ravel(), power_a.ravel(), minlength=n_shells)
    den_b = np.bincount(shell_idx.ravel(), power_b.ravel(), minlength=n_shells)
    den = np.sqrt(den_a * den_b)
    den[den == 0] = np.inf
    fsc = num / den
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, fsc


def resolution_angstroms(
    a: np.ndarray,
    b: np.ndarray,
    threshold: float = 0.5,
    pixel_size: float = PIXEL_SIZE_A,
) -> float:
    """Resolution (angstroms) at the FSC *threshold* crossing.

    Linear interpolation between the shells straddling the crossing; if
    FSC never drops below the threshold, the Nyquist resolution
    ``2 * pixel_size`` is returned (the map is good to the sampling
    limit); if it starts below, the worst representable resolution.
    """
    centers, fsc = fsc_curve(a, b)
    below = np.nonzero(fsc < threshold)[0]
    # Ignore the DC shell when deciding "starts below".
    if len(below) == 0 or (len(below) == 1 and below[0] == 0):
        return 2.0 * pixel_size
    first = below[0] if below[0] != 0 else (below[1] if len(below) > 1 else 0)
    if first == 0:
        return pixel_size / max(centers[0], 1e-6)
    x0, x1 = centers[first - 1], centers[first]
    y0, y1 = fsc[first - 1], fsc[first]
    crossing = (
        x1 if y0 == y1 else x0 + (threshold - y0) * (x1 - x0) / (y1 - y0)
    )
    crossing = max(crossing, 1e-6)
    return float(pixel_size / crossing)


def psf(a: np.ndarray, b: np.ndarray, pixel_size: float = PIXEL_SIZE_A) -> dict:
    """The PSF program: FSC curve + headline resolution value.

    Returns a dict with ``resolution`` (angstroms — the Figure-13
    ``D12.Value``), plus the raw curve for analysis.
    """
    centers, fsc = fsc_curve(a, b)
    return {
        "resolution": resolution_angstroms(a, b, pixel_size=pixel_size),
        "frequencies": centers,
        "fsc": fsc,
    }
