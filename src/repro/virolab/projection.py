"""Projection geometry: 3D volume -> 2D micrograph simulation.

``project`` rotates the volume by the particle orientation and integrates
along the beam (z) axis — the standard weak-phase projection
approximation.  ``make_dataset`` generates the experiment's synthetic
micrograph stack: random orientations, projection, optional Gaussian
noise (the paper's instrumentation limits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro._util import as_rng
from repro.errors import VirolabError
from repro.virolab.geometry import random_rotations

__all__ = ["project", "backproject", "Dataset", "make_dataset"]


def _rotated(volume: np.ndarray, rotation: np.ndarray) -> np.ndarray:
    """Resample *volume* under *rotation* about the volume centre."""
    if volume.ndim != 3 or len(set(volume.shape)) != 1:
        raise VirolabError(f"volume must be cubic, got shape {volume.shape}")
    center = (np.array(volume.shape) - 1) / 2.0
    # affine_transform maps output coords -> input coords, so pass R^T
    # (the inverse rotation) to rotate the *object* by R.
    matrix = rotation.T
    offset = center - matrix @ center
    return ndimage.affine_transform(
        volume, matrix, offset=offset, order=1, mode="constant", cval=0.0
    )


def project(volume: np.ndarray, rotation: np.ndarray) -> np.ndarray:
    """The 2D projection of *volume* in orientation *rotation*.

    Integrates along axis 0 (the beam) after rotating the particle.
    """
    return _rotated(volume, rotation).sum(axis=0)


def backproject(
    image: np.ndarray, rotation: np.ndarray, size: int
) -> np.ndarray:
    """Smear *image* back through the volume along the beam direction.

    The adjoint of :func:`project`: replicate the image along z, then
    rotate by the inverse orientation.  Summing backprojections over many
    orientations (and normalizing) is classic real-space weighted
    back-projection — the toy P3DR.
    """
    if image.shape != (size, size):
        raise VirolabError(
            f"image shape {image.shape} does not match size {size}"
        )
    smear = np.broadcast_to(image, (size, size, size)).copy() / size
    return _rotated(smear, rotation.T)


@dataclass(frozen=True)
class Dataset:
    """A synthetic micrograph stack with its hidden ground truth."""

    images: np.ndarray  # (n, size, size)
    true_rotations: np.ndarray  # (n, 3, 3) — hidden; used only for scoring
    noise_sigma: float

    @property
    def count(self) -> int:
        return int(self.images.shape[0])

    @property
    def size(self) -> int:
        return int(self.images.shape[1])

    def split_streams(self) -> tuple[np.ndarray, np.ndarray]:
        """Odd/even index split — the paper's two-stream approach for
        correlation-based resolution estimation."""
        idx = np.arange(self.count)
        return idx[idx % 2 == 0], idx[idx % 2 == 1]


def make_dataset(
    volume: np.ndarray,
    count: int = 48,
    noise_sigma: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Project *volume* at *count* random orientations with additive
    Gaussian noise of standard deviation ``noise_sigma * signal_peak``."""
    rng = as_rng(seed)
    rotations = random_rotations(count, rng)
    size = volume.shape[0]
    images = np.empty((count, size, size))
    for i in range(count):
        images[i] = project(volume, rotations[i])
    peak = float(np.abs(images).max()) or 1.0
    if noise_sigma > 0:
        images = images + rng.normal(0.0, noise_sigma * peak, size=images.shape)
    return Dataset(images=images, true_rotations=rotations, noise_sigma=noise_sigma)
