"""Rotation utilities for the reconstruction substrate.

Orientations are 3x3 rotation matrices.  We parameterize with ZYZ Euler
angles (the electron-microscopy convention) and provide quasi-uniform
orientation grids for the POD search plus perturbation sampling for POR
refinement.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.errors import VirolabError

__all__ = [
    "euler_to_matrix",
    "random_rotations",
    "orientation_grid",
    "perturb_rotation",
    "angular_distance",
]


def euler_to_matrix(phi: float, theta: float, psi: float) -> np.ndarray:
    """ZYZ Euler angles (radians) -> rotation matrix."""
    cphi, sphi = np.cos(phi), np.sin(phi)
    cth, sth = np.cos(theta), np.sin(theta)
    cpsi, spsi = np.cos(psi), np.sin(psi)
    rz1 = np.array([[cphi, -sphi, 0.0], [sphi, cphi, 0.0], [0.0, 0.0, 1.0]])
    ry = np.array([[cth, 0.0, sth], [0.0, 1.0, 0.0], [-sth, 0.0, cth]])
    rz2 = np.array([[cpsi, -spsi, 0.0], [spsi, cpsi, 0.0], [0.0, 0.0, 1.0]])
    return rz1 @ ry @ rz2


def random_rotations(
    count: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """*count* rotations uniform over SO(3) (shape ``(count, 3, 3)``).

    Uses the QR-of-Gaussian construction with sign correction, which is
    exactly uniform under Haar measure.
    """
    generator = as_rng(rng)
    if count < 1:
        raise VirolabError(f"count must be >= 1, got {count}")
    out = np.empty((count, 3, 3))
    for i in range(count):
        gaussian = generator.normal(size=(3, 3))
        q, r = np.linalg.qr(gaussian)
        q *= np.sign(np.diag(r))
        if np.linalg.det(q) < 0:
            q[:, 2] *= -1
        out[i] = q
    return out


def orientation_grid(directions: int = 128, inplane: int = 12) -> np.ndarray:
    """A deterministic quasi-uniform grid of ``directions * inplane``
    orientations.

    View directions come from a Fibonacci sphere (quasi-uniform view
    vectors); each direction is combined with *inplane* evenly spaced
    in-plane rotation angles.  The product structure matters: tying one
    in-plane angle to each direction (a plain Fibonacci SO(3) sequence)
    leaves the correct view direction unable to win a projection-matching
    search, because its single psi sample is almost surely wrong.
    """
    if directions < 1 or inplane < 1:
        raise VirolabError(
            f"need positive grid sizes, got {directions}x{inplane}"
        )
    golden = (1.0 + 5.0**0.5) / 2.0
    indices = np.arange(directions, dtype=float)
    theta = np.arccos(np.clip(1.0 - 2.0 * (indices + 0.5) / directions, -1.0, 1.0))
    phi = (2.0 * np.pi * indices / golden) % (2.0 * np.pi)
    psis = np.linspace(0.0, 2.0 * np.pi, inplane, endpoint=False)
    return np.stack(
        [
            euler_to_matrix(p, t, s)
            for p, t in zip(phi, theta)
            for s in psis
        ]
    )


def perturb_rotation(
    rotation: np.ndarray,
    magnitude: float,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """A rotation near *rotation*: compose with a random axis-angle of
    angle up to *magnitude* radians."""
    generator = as_rng(rng)
    axis = generator.normal(size=3)
    axis /= np.linalg.norm(axis)
    angle = float(generator.uniform(0.0, magnitude))
    k = np.array(
        [
            [0.0, -axis[2], axis[1]],
            [axis[2], 0.0, -axis[0]],
            [-axis[1], axis[0], 0.0],
        ]
    )
    delta = np.eye(3) + np.sin(angle) * k + (1.0 - np.cos(angle)) * (k @ k)
    return delta @ rotation


def angular_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Geodesic angle (radians) between two rotations."""
    trace = np.trace(a.T @ b)
    return float(np.arccos(np.clip((trace - 1.0) / 2.0, -1.0, 1.0)))
