"""The reference (in-process) reconstruction pipeline.

Runs the Section-4 computation directly — no grid, no agents — exactly as
Figure 10 prescribes: POD once, then iterate [POR; concurrent two-stream
P3DR; PSF] until the resolution stops improving or reaches the goal.  The
grid enactment (:mod:`repro.virolab.services`) must produce the same
numbers; tests compare the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro.errors import VirolabError
from repro.virolab.p3dr import p3dr
from repro.virolab.phantom import make_initial_model, make_phantom
from repro.virolab.pod import pod
from repro.virolab.por import por
from repro.virolab.projection import Dataset, make_dataset
from repro.virolab.psf import psf

__all__ = ["IterationStats", "PipelineResult", "run_pipeline", "default_problem_data"]


@dataclass(frozen=True)
class IterationStats:
    iteration: int
    resolution: float
    mean_correlation: float


@dataclass
class PipelineResult:
    """Everything the reference pipeline produces."""

    model: np.ndarray
    orientations: np.ndarray
    resolution: float
    history: list[IterationStats] = field(default_factory=list)
    dataset: Dataset | None = None

    @property
    def iterations(self) -> int:
        return len(self.history)


def default_problem_data(
    size: int = 24,
    count: int = 40,
    noise_sigma: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, Dataset]:
    """(phantom, initial model, dataset) for the standard toy problem."""
    phantom = make_phantom(size=size, seed=seed)
    initial = make_initial_model(phantom, seed=seed + 1)
    dataset = make_dataset(phantom, count=count, noise_sigma=noise_sigma, seed=seed + 2)
    return phantom, initial, dataset


def run_pipeline(
    dataset: Dataset,
    initial_model: np.ndarray,
    goal_resolution: float = 8.0,
    max_iterations: int = 5,
    pod_directions: int = 128,
    pod_inplane: int = 12,
    por_trials: int = 10,
    seed: int = 0,
) -> PipelineResult:
    """Execute the Figure-10 workflow in-process.

    Stops when the two-stream resolution reaches *goal_resolution*
    angstroms, stops improving, or *max_iterations* passes complete —
    the same stopping rule Cons1 encodes for the grid enactment.
    """
    if max_iterations < 1:
        raise VirolabError("need at least one iteration")
    rng = as_rng(seed)
    images = dataset.images
    even, odd = dataset.split_streams()

    # POD: ab-initio orientations from the user's initial model.
    orientations, _ = pod(
        images, initial_model, directions=pod_directions, inplane=pod_inplane
    )
    # P3DR1: first full reconstruction.
    model = p3dr(images, orientations)

    history: list[IterationStats] = []
    best_resolution = np.inf
    for iteration in range(1, max_iterations + 1):
        # POR: refine orientations against the current model.
        orientations, scores = por(
            images, orientations, model, trials=por_trials, seed=rng
        )
        # Concurrent two-stream reconstruction (P3DR2/P3DR3 in Figure 10;
        # P3DR4 rebuilds the full model used for the next refinement pass).
        model_even = p3dr(images[even], orientations[even])
        model_odd = p3dr(images[odd], orientations[odd])
        model = p3dr(images, orientations)
        # PSF: resolution by correlating the two streams.
        resolution = psf(model_even, model_odd)["resolution"]
        history.append(
            IterationStats(
                iteration=iteration,
                resolution=float(resolution),
                mean_correlation=float(scores.mean()),
            )
        )
        if resolution <= goal_resolution:
            best_resolution = min(best_resolution, resolution)
            break
        if resolution >= best_resolution - 1e-9:
            # No further improvement is noticeable (the paper's stopping rule).
            break
        best_resolution = resolution

    return PipelineResult(
        model=model,
        orientations=orientations,
        resolution=history[-1].resolution,
        history=history,
        dataset=dataset,
    )
