"""The Section-4 case study as data: Figures 10, 11 and 13.

This module encodes the 3D virus-reconstruction computation:

* :func:`activity_specs` — the seven end-user activities (T) with the
  Figure-13 data bindings as symbolic pre/postconditions;
* :func:`planning_problem` — ``P = {Sinit, G, T}`` for the planner
  experiment of Section 5;
* :func:`process_description` — the Figure-10 graph (7 end-user + 6
  flow-control activities, 15 transitions);
* :func:`plan_tree` — the Figure-11 plan tree;
* :func:`case_study_kb` — a knowledge base populated with the Figure-13
  instances (Task, ProcessDescription, CaseDescription, Activities,
  Transitions, Data, Services);
* :data:`CONDITIONS` — the C1..C8 service conditions, and
  :data:`CONS1` — the Cons1 iteration constraint.

Data classifications follow Figure 13: D1..D6 are program parameter files,
D7 the 2D image stack, D8 the orientation file, D9/D10/D11 3D models, D12
the resolution file.  The loop constraint Cons1 ("if D10.Classification =
'Resolution File' and D10.value > 8 then Merge else End") plainly refers to
the PSF output; Figure 13's own data table says the resolution file is D12,
so we read Cons1 over D12 and note the paper's typo here.
"""

from __future__ import annotations

from repro.ontology import (
    ACTIVITY,
    CASE_DESCRIPTION,
    DATA,
    PROCESS_DESCRIPTION,
    SERVICE,
    TASK,
    TRANSITION,
    KnowledgeBase,
    builtin_shell,
)
from repro.plan import PlanNode, concurrent, iterative, sequential
from repro.planner import ActivitySpec, PlanningProblem
from repro.process import (
    Activity,
    ActivityKind,
    Atom,
    Condition,
    ProcessDescription,
    Relation,
    parse_condition,
)

__all__ = [
    "DATA_CLASSIFICATIONS",
    "INITIAL_DATA",
    "CONDITIONS",
    "CONS1",
    "GOAL",
    "activity_specs",
    "planning_problem",
    "process_description",
    "plan_tree",
    "case_study_kb",
    "ACTIVITY_TABLE",
    "TRANSITION_TABLE",
]

# -- Figure 13: the Data table ------------------------------------------------ #
DATA_CLASSIFICATIONS: dict[str, str] = {
    "D1": "POD-Parameter",
    "D2": "P3DR-Parameter",
    "D3": "P3DR-Parameter",
    "D4": "P3DR-Parameter",
    "D5": "POR-Parameter",
    "D6": "PSF-Parameter",
    "D7": "2D Image",
    "D8": "Orientation File",
    "D9": "3D Model",
    "D10": "3D Model",
    "D11": "3D Model",
    "D12": "Resolution File",
}

#: D1..D7 are the user-provided initial data set of CD-3DSD.
INITIAL_DATA: tuple[str, ...] = ("D1", "D2", "D3", "D4", "D5", "D6", "D7")

_SIZES = {"D1": 3e3, "D7": 1.5e9}
_CREATORS = {
    "D8": "POD, POR",
    "D9": "P3DR1, P3DR4",
    "D10": "P3DR2",
    "D11": "P3DR3",
    "D12": "PSF",
}
_FORMATS = {name: "Text" for name in ("D1", "D2", "D3", "D4", "D5", "D6")}


def _cls(data: str) -> Atom:
    """``<data>.Classification = "<its Figure-13 classification>"``."""
    return Atom(data, "Classification", Relation.EQ, DATA_CLASSIFICATIONS[data])


# -- Figure 13: service conditions C1..C8 (bound to actual data names) -------- #
CONDITIONS: dict[str, Condition] = {
    # POD: inputs {D1 (POD-Parameter), D7 (2D Image)} -> D8 (Orientation File)
    "C1": _cls("D1") & _cls("D7"),
    "C2": _cls("D8"),
    # P3DR: parameter + image + orientation -> 3D model
    "C3": _cls("D2") & _cls("D7") & _cls("D8"),
    "C4": _cls("D9"),
    # POR: parameter + image + orientation + model -> refined orientation
    "C5": _cls("D5") & _cls("D7") & _cls("D8") & _cls("D9"),
    "C6": _cls("D8"),
    # PSF: parameter + two 3D models -> resolution file
    "C7": _cls("D6") & _cls("D10") & _cls("D11"),
    "C8": _cls("D12"),
}

#: Cons1 (read over D12, the resolution file; see module docstring): the
#: iteration continues (Merge) while the resolution is still coarser than
#: 8 angstroms, and ends otherwise.
CONS1: Condition = parse_condition('D12.Classification = "Resolution File" and D12.Value > 8')

#: The case description's goal: the result set {D12} materialized as a
#: resolution file.
GOAL: tuple[Condition, ...] = (_cls("D12"),)


# -- Figure 13: the Activity table -------------------------------------------- #
#: (ID, Name, Type, Service, inputs, outputs, constraint)
ACTIVITY_TABLE: tuple[tuple[str, str, str, str | None, tuple[str, ...], tuple[str, ...], str | None], ...] = (
    ("A1", "BEGIN", "Begin", None, (), (), None),
    ("A2", "POD", "End-user", "POD", ("D1", "D7"), ("D8",), None),
    ("A3", "P3DR1", "End-user", "P3DR", ("D2", "D7", "D8"), ("D9",), None),
    ("A4", "MERGE", "Merge", None, (), (), None),
    ("A5", "POR", "End-user", "POR", ("D5", "D7", "D8", "D9"), ("D8",), None),
    ("A6", "FORK", "Fork", None, (), (), None),
    ("A7", "P3DR2", "End-user", "P3DR", ("D3", "D7", "D8"), ("D10",), None),
    ("A8", "P3DR3", "End-user", "P3DR", ("D4", "D7", "D8"), ("D11",), None),
    ("A9", "P3DR4", "End-user", "P3DR", ("D2", "D7", "D8"), ("D9",), None),
    ("A10", "JOIN", "Join", None, (), (), None),
    # Figure 13's activity table lists PSF inputs as {D10, D11}, but its own
    # service table (condition C7) requires the PSF-Parameter D6 as well; we
    # follow C7 and note the paper's inconsistency.
    ("A11", "PSF", "End-user", "PSF", ("D6", "D10", "D11"), ("D12",), "Cons1"),
    ("A12", "CHOICE", "Choice", None, (), (), None),
    ("A13", "END", "End", None, (), (), None),
)

#: Figure 13's Transition table: TR1..TR15.
TRANSITION_TABLE: tuple[tuple[str, str, str], ...] = (
    ("TR1", "BEGIN", "POD"),
    ("TR2", "POD", "P3DR1"),
    ("TR3", "P3DR1", "MERGE"),
    ("TR4", "MERGE", "POR"),
    ("TR5", "POR", "FORK"),
    ("TR6", "FORK", "P3DR2"),
    ("TR7", "FORK", "P3DR3"),
    ("TR8", "FORK", "P3DR4"),
    ("TR9", "P3DR2", "JOIN"),
    ("TR10", "P3DR3", "JOIN"),
    ("TR11", "P3DR4", "JOIN"),
    ("TR12", "JOIN", "PSF"),
    ("TR13", "PSF", "CHOICE"),
    ("TR14", "CHOICE", "MERGE"),
    ("TR15", "CHOICE", "END"),
)

_KIND = {
    "Begin": ActivityKind.BEGIN,
    "End": ActivityKind.END,
    "End-user": ActivityKind.END_USER,
    "Fork": ActivityKind.FORK,
    "Join": ActivityKind.JOIN,
    "Choice": ActivityKind.CHOICE,
    "Merge": ActivityKind.MERGE,
}


def activity_specs() -> dict[str, ActivitySpec]:
    """The activity set T: seven end-user activities with symbolic
    pre/postconditions derived from C1..C8 and the Figure-13 bindings."""
    model = {"Classification": "3D Model"}
    specs = [
        ActivitySpec(
            "POD",
            precondition=CONDITIONS["C1"],
            effects={"D8": {"Classification": "Orientation File"}},
            service="POD",
            inputs=("D1", "D7"),
            outputs=("D8",),
        ),
        ActivitySpec(
            "P3DR1",
            precondition=CONDITIONS["C3"],
            effects={"D9": dict(model)},
            service="P3DR",
            inputs=("D2", "D7", "D8"),
            outputs=("D9",),
        ),
        ActivitySpec(
            "POR",
            precondition=CONDITIONS["C5"],
            effects={"D8": {"Classification": "Orientation File", "Refined": "true"}},
            service="POR",
            inputs=("D5", "D7", "D8", "D9"),
            outputs=("D8",),
        ),
        ActivitySpec(
            "P3DR2",
            precondition=_cls("D3") & _cls("D7") & _cls("D8"),
            effects={"D10": dict(model)},
            service="P3DR",
            inputs=("D3", "D7", "D8"),
            outputs=("D10",),
        ),
        ActivitySpec(
            "P3DR3",
            precondition=_cls("D4") & _cls("D7") & _cls("D8"),
            effects={"D11": dict(model)},
            service="P3DR",
            inputs=("D4", "D7", "D8"),
            outputs=("D11",),
        ),
        ActivitySpec(
            "P3DR4",
            precondition=CONDITIONS["C3"],
            effects={"D9": dict(model)},
            service="P3DR",
            inputs=("D2", "D7", "D8"),
            outputs=("D9",),
        ),
        ActivitySpec(
            "PSF",
            precondition=CONDITIONS["C7"],
            effects={"D12": {"Classification": "Resolution File", "Value": 7.5}},
            service="PSF",
            inputs=("D6", "D10", "D11"),
            outputs=("D12",),
        ),
    ]
    return {spec.name: spec for spec in specs}


def planning_problem(name: str = "3DSD") -> PlanningProblem:
    """The Section-5 experiment's planning problem."""
    initial = {
        data: {"Classification": DATA_CLASSIFICATIONS[data]}
        for data in INITIAL_DATA
    }
    return PlanningProblem.build(name, initial, GOAL, list(activity_specs().values()))


def process_description(name: str = "PD-3DSD") -> ProcessDescription:
    """The Figure-10 process description, built from the Figure-13 tables."""
    pd = ProcessDescription(name)
    for _, act_name, type_name, service, inputs, outputs, constraint in ACTIVITY_TABLE:
        pd.add_activity(
            Activity(
                act_name,
                _KIND[type_name],
                service,
                inputs,
                outputs,
                constraint,
            )
        )
    for tr_id, source, destination in TRANSITION_TABLE:
        condition = None
        if tr_id == "TR14":  # CHOICE -> MERGE: keep refining
            condition = CONS1
        pd.connect(source, destination, condition=condition, id=tr_id)
    return pd


def plan_tree() -> PlanNode:
    """The Figure-11 plan tree."""
    return sequential(
        "POD",
        "P3DR1",
        iterative("POR", concurrent("P3DR2", "P3DR3", "P3DR4"), "PSF"),
    )


def case_study_kb() -> KnowledgeBase:
    """A knowledge base populated with the Figure-13 instances."""
    kb = builtin_shell("3DSD-ontology")

    for data_name in DATA_CLASSIFICATIONS:
        values = {
            "Name": data_name,
            "Classification": DATA_CLASSIFICATIONS[data_name],
        }
        if data_name in INITIAL_DATA:
            values["Creator"] = "User"
        if data_name in _CREATORS:
            values["Creator"] = _CREATORS[data_name]
        if data_name in _SIZES:
            values["Size"] = _SIZES[data_name]
        if data_name in _FORMATS:
            values["Format"] = _FORMATS[data_name]
        kb.new_instance(DATA, values, id=data_name)

    services = {
        "POD": ("C1", "C2", ("D1", "D7"), ("D8",)),
        "P3DR": ("C3", "C4", ("D2", "D7", "D8"), ("D9",)),
        "POR": ("C5", "C6", ("D5", "D7", "D8", "D9"), ("D8",)),
        "PSF": ("C7", "C8", ("D6", "D10", "D11"), ("D12",)),
    }
    for svc_name, (cin, cout, ins, outs) in services.items():
        kb.new_instance(
            SERVICE,
            {
                "Name": svc_name,
                "Type": "End-user",
                "Input Condition": cin,
                "Output Condition": cout,
                "Input Data Set": list(ins),
                "Output Data Set": list(outs),
            },
            id=f"SVC-{svc_name}",
        )

    for act_id, act_name, type_name, service, inputs, outputs, constraint in ACTIVITY_TABLE:
        values = {
            "ID": act_id,
            "Name": act_name,
            "Task ID": "T1",
            "Type": type_name,
        }
        if service:
            values["Service Name"] = service
        if inputs:
            values["Input Data Set"] = list(inputs)
        if outputs:
            values["Output Data Set"] = list(outputs)
        if constraint:
            values["Constraint"] = constraint
        kb.new_instance(ACTIVITY, values, id=act_id)

    for tr_id, source, destination in TRANSITION_TABLE:
        kb.new_instance(
            TRANSITION,
            {"ID": tr_id, "Source Activity": source, "Destination Activity": destination},
            id=tr_id,
        )

    pd_inst = kb.new_instance(
        PROCESS_DESCRIPTION,
        {
            "ID": "PD-3DSD",
            "Name": "PD-3DSD",
            "Activity Set": [row[0] for row in ACTIVITY_TABLE],
            "Transition Set": [row[0] for row in TRANSITION_TABLE],
        },
        id="PD-3DSD",
    )
    cd_inst = kb.new_instance(
        CASE_DESCRIPTION,
        {
            "ID": "CD-3DSD",
            "Name": "CD-3DSD",
            "Initial Data Set": list(INITIAL_DATA),
            "Result Set": ["D12"],
            "Constraint": "Cons1",
            "Goal Condition": str(GOAL[0]),
            "Goal": "Result Set {D12}",
        },
        id="CD-3DSD",
    )
    kb.new_instance(
        TASK,
        {
            "ID": "T1",
            "Name": "3DSD",
            "Owner": "UCF",
            "Process Description": pd_inst.id,
            "Case Description": cd_inst.id,
        },
        id="T1",
    )
    kb.validate_all()
    return kb
