"""P3DR — parallel 3D reconstruction (weighted back-projection).

Sums the backprojection of every image at its assigned orientation, then
applies a simple spherical low-pass consistent with the sampling density.
The paper's P3DR is a parallel Fourier reconstruction code; real-space WBP
has the same observable role in the workflow (images + orientations ->
3D model whose quality grows with orientation accuracy).
"""

from __future__ import annotations

import numpy as np

from repro.errors import VirolabError
from repro.virolab.projection import backproject

__all__ = ["p3dr"]


def p3dr(
    images: np.ndarray,
    orientations: np.ndarray,
    lowpass: float | None = 0.7,
) -> np.ndarray:
    """Reconstruct a 3D map from *images* at *orientations*.

    Plain backprojection convolves the structure with a ~1/r² point-spread
    (every image smears density through the whole beam path); the
    *weighting* of weighted back-projection is the Fourier ramp that
    undoes it.  We apply a spherical ramp ``|f|`` capped at ``lowpass *
    Nyquist`` (the cap doubles as the noise-suppressing low-pass; None
    disables filtering entirely).  Returns a ``(size, size, size)`` map
    normalized to unit peak.
    """
    if len(images) != len(orientations):
        raise VirolabError(
            f"{len(images)} images but {len(orientations)} orientations"
        )
    if len(images) == 0:
        raise VirolabError("cannot reconstruct from zero images")
    size = images.shape[1]
    volume = np.zeros((size, size, size))
    for image, rotation in zip(images, orientations):
        volume += backproject(image, rotation, size)
    volume /= len(images)

    if lowpass is not None:
        volume = _ramp_filter(volume, lowpass)

    volume -= volume.min()
    peak = volume.max()
    if peak > 0:
        volume /= peak
    return volume


def _ramp_filter(volume: np.ndarray, cutoff: float) -> np.ndarray:
    """Multiply the spectrum by ``|f|`` (normalized), zero beyond
    ``cutoff`` * Nyquist — the WBP weighting function."""
    size = volume.shape[0]
    freqs = np.fft.fftfreq(size)
    fz, fy, fx = np.meshgrid(freqs, freqs, freqs, indexing="ij")
    radius = np.sqrt(fz**2 + fy**2 + fx**2)
    nyquist = 0.5
    weight = radius / nyquist
    weight[radius > cutoff * nyquist] = 0.0
    # Keep a little DC so the map's gross envelope survives normalization.
    weight[0, 0, 0] = weight.max() * 0.05 if weight.max() > 0 else 1.0
    spectrum = np.fft.fftn(volume)
    return np.real(np.fft.ifftn(spectrum * weight))
