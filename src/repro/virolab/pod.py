"""POD — "ab initio" parallel orientation determination.

Given the micrograph stack and the user-supplied initial model, POD
assigns each image the orientation (from a quasi-uniform grid) whose
reference projection correlates best with it.  This is the projection-
matching formulation of orientation determination; the paper's POD is the
parallel C implementation of the same idea.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VirolabError
from repro.virolab.geometry import orientation_grid
from repro.virolab.projection import project

__all__ = ["reference_projections", "match_orientations", "pod"]


def reference_projections(
    model: np.ndarray, rotations: np.ndarray
) -> np.ndarray:
    """Project *model* at every rotation; shape ``(k, size, size)``."""
    size = model.shape[0]
    refs = np.empty((len(rotations), size, size))
    for i, rotation in enumerate(rotations):
        refs[i] = project(model, rotation)
    return refs


def _normalize_stack(stack: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-norm flatten of each image (for correlation)."""
    flat = stack.reshape(len(stack), -1)
    flat = flat - flat.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(flat, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return flat / norms


def match_orientations(
    images: np.ndarray, refs: np.ndarray, rotations: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Best-correlating reference orientation per image.

    Returns (assigned rotations ``(n,3,3)``, correlation scores ``(n,)``).
    Vectorized: one ``(n, k)`` similarity matrix via a single GEMM.
    """
    if images.ndim != 3 or refs.ndim != 3:
        raise VirolabError("images and refs must be 3D stacks")
    sims = _normalize_stack(images) @ _normalize_stack(refs).T
    best = np.argmax(sims, axis=1)
    scores = sims[np.arange(len(images)), best]
    return rotations[best].copy(), scores


def pod(
    images: np.ndarray,
    initial_model: np.ndarray,
    directions: int = 128,
    inplane: int = 12,
) -> tuple[np.ndarray, np.ndarray]:
    """The POD program: coarse-grid projection matching.

    The search grid is *directions* quasi-uniform view directions crossed
    with *inplane* evenly spaced in-plane angles.  Returns (orientations,
    correlation scores).
    """
    rotations = orientation_grid(directions, inplane)
    refs = reference_projections(initial_model, rotations)
    return match_orientations(images, refs, rotations)
