"""Synthetic virus phantoms: the ground-truth 3D electron-density maps.

The paper's data is electron micrographs of real viruses; we substitute a
synthetic particle — a shell of Gaussian blobs with a few internal
features, loosely mimicking a capsid — whose 2D projections drive the
same POD -> (P3DR, POR, PSF)* pipeline.  Everything is deterministic under
a seed.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.errors import VirolabError

__all__ = ["make_phantom", "make_initial_model", "gaussian_blob"]


def gaussian_blob(
    size: int, center: np.ndarray, sigma: float, amplitude: float = 1.0
) -> np.ndarray:
    """A 3D Gaussian of width *sigma* voxels centred at *center* (voxel
    coordinates relative to the volume centre)."""
    coords = np.arange(size) - (size - 1) / 2.0
    z, y, x = np.meshgrid(coords, coords, coords, indexing="ij")
    d2 = (
        (z - center[0]) ** 2 + (y - center[1]) ** 2 + (x - center[2]) ** 2
    )
    return amplitude * np.exp(-d2 / (2.0 * sigma**2))


def make_phantom(
    size: int = 32,
    shell_blobs: int = 20,
    core_blobs: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """A capsid-like phantom: blobs on a spherical shell plus a core.

    The shell radius is ~1/3 of the box so projections at any angle stay
    inside the field of view.  Densities are normalized to unit peak.
    """
    if size < 8:
        raise VirolabError(f"phantom size must be >= 8, got {size}")
    rng = as_rng(seed)
    volume = np.zeros((size, size, size))
    radius = size / 3.2
    # Quasi-uniform points on the shell (Fibonacci sphere) with strongly
    # varying amplitudes/widths: a perfectly regular shell is nearly
    # rotation-degenerate and would make orientation determination
    # ill-posed regardless of algorithm quality.
    golden = (1.0 + 5.0**0.5) / 2.0
    for i in range(shell_blobs):
        cos_t = 1.0 - 2.0 * (i + 0.5) / shell_blobs
        sin_t = np.sqrt(max(0.0, 1.0 - cos_t**2))
        phi = 2.0 * np.pi * i / golden
        center = radius * np.array(
            [cos_t, sin_t * np.cos(phi), sin_t * np.sin(phi)]
        )
        volume += gaussian_blob(
            size,
            center,
            sigma=size / 18.0 * float(rng.uniform(0.7, 1.5)),
            amplitude=float(rng.uniform(0.4, 1.6)),
        )
    for _ in range(core_blobs):
        center = rng.uniform(-radius / 2.0, radius / 2.0, size=3)
        volume += gaussian_blob(
            size, center, sigma=size / 12.0, amplitude=float(rng.uniform(0.8, 1.8))
        )
    # A few large off-centre landmarks that break any residual symmetry.
    for _ in range(3):
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        center = direction * radius * float(rng.uniform(0.5, 0.9))
        volume += gaussian_blob(size, center, sigma=size / 10.0, amplitude=2.0)
    peak = volume.max()
    if peak > 0:
        volume /= peak
    return volume


def make_initial_model(
    truth: np.ndarray,
    cutoff: float = 0.25,
    noise: float = 0.05,
    seed: int | np.random.Generator | None = 1,
) -> np.ndarray:
    """The user-supplied starting map: a badly degraded copy of *truth*.

    The paper's computation starts from "an initial model of the electron
    density map" — in practice a low-resolution map from earlier studies.
    We model that as the ground truth low-passed to *cutoff* (fraction of
    Nyquist) with additive noise: detailed enough to break orientation
    degeneracy, far too coarse to be the answer.
    """
    size = truth.shape[0]
    freqs = np.fft.fftfreq(size)
    fz, fy, fx = np.meshgrid(freqs, freqs, freqs, indexing="ij")
    radius = np.sqrt(fz**2 + fy**2 + fx**2)
    mask = radius <= cutoff * 0.5
    blurred = np.real(np.fft.ifftn(np.fft.fftn(truth) * mask))
    rng = as_rng(seed)
    blurred = blurred + noise * blurred.std() * rng.normal(size=blurred.shape)
    blurred -= blurred.min()
    peak = blurred.max()
    if peak > 0:
        blurred /= peak
    return blurred
