"""Persistent-storage service.

"Persistent storage services provide access to the data needed for the
execution of user tasks."  Payloads (numpy arrays in the case study,
anything picklable in general) live in named locations; transfer time is
modelled by the network layer via the message size, which callers set to
the payload's nominal size.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StorageError
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.services.base import CoreService

__all__ = ["PersistentStorageService"]


class PersistentStorageService(CoreService):
    service_type = "storage"

    def __init__(self, env: GridEnvironment, name: str | None = None, site: str = "core") -> None:
        super().__init__(env, name or env.storage_name, site)
        self._objects: dict[str, Any] = {}
        self._meta: dict[str, dict] = {}

    # -- direct API ------------------------------------------------------------ #
    def put(self, key: str, payload: Any, **meta: Any) -> None:
        self._objects[key] = payload
        self._meta[key] = {"stored_at": self.engine.now, **meta}

    def get(self, key: str) -> Any:
        if key not in self._objects:
            raise StorageError(f"no stored object under key {key!r}")
        return self._objects[key]

    def keys(self) -> tuple[str, ...]:
        return tuple(sorted(self._objects))

    def __len__(self) -> int:
        return len(self._objects)

    # -- message API ------------------------------------------------------------ #
    def handle_store(self, message: Message):
        content = message.content
        key = content["key"]
        meta = {"owner": message.sender}
        if "format" in content:
            meta["format"] = dict(content["format"])
        if "meta" in content:
            # Caller-supplied metadata (e.g. the case journal's blob
            # descriptors) rides along so list-meta can inventory a
            # namespace without fetching payloads.
            meta.update(content["meta"])
        self.put(key, content.get("payload"), **meta)
        # The request's wire size is the payload's nominal size — feed it
        # to the bus metrics so storage traffic shows up next to RPC load.
        self.metrics.observe(
            "storage_payload_bytes", message.size, agent=self.name, action="store"
        )
        recorder = self.env.spans
        if recorder.enabled:
            # Instant span: the handler itself takes zero simulated time
            # (wire time is the network layer's), but the storage-side
            # record joins payload traffic to the case via trace_id.
            recorder.end(
                recorder.start(
                    key, "storage", agent=self.name,
                    trace_id=message.trace_id, op="store", bytes=message.size,
                )
            )
        return {"key": key}

    def handle_retrieve(self, message: Message):
        key = message.content["key"]
        if key not in self._objects:
            raise StorageError(f"no stored object under key {key!r}")
        recorder = self.env.spans
        if recorder.enabled:
            recorder.end(
                recorder.start(
                    key, "storage", agent=self.name,
                    trace_id=message.trace_id, op="retrieve",
                )
            )
        return {"key": key, "payload": self._objects[key], "meta": self._meta[key]}

    def handle_delete(self, message: Message):
        key = message.content["key"]
        existed = self._objects.pop(key, None) is not None
        self._meta.pop(key, None)
        return {"deleted": existed}

    def handle_list_keys(self, message: Message):
        prefix = message.content.get("prefix", "")
        return {"keys": [k for k in self.keys() if k.startswith(prefix)]}

    def handle_list_meta(self, message: Message):
        """Keys *and* their metadata under a prefix, without the payloads.

        Inventory RPC for repository-style consumers (the plan library's
        ``repro-grid planlib list`` walks its ``planlib/`` namespace this
        way): one round trip instead of list-keys + N retrieves, and no
        payload bytes on the wire.
        """
        prefix = message.content.get("prefix", "")
        return {
            "items": [
                {"key": key, "meta": dict(self._meta.get(key, {}))}
                for key in self.keys()
                if key.startswith(prefix)
            ]
        }
