"""Ontology service: distributes shells and populated ontologies.

"Ontology services maintain and distribute ontology shells (i.e.,
ontologies with classes and slots but without instances) as well as
ontologies populated with instances, global ontologies, and user-specific
ontologies."  KBs travel as their JSON-dict serialization so receivers get
independent copies (agents must never share mutable KB state across the
simulated network).

Replication (the sharded grid): the primary keeps a **versioned op log**
of ontology registrations and pushes each change to its subscribed
replicas as an ``ontology-delta`` INFORM — the same fine-grained push
pattern as the broker's ``registry-changed``, extended with a version
number so replicas can detect gaps.  A replica that observes a gap (or
joins an already-populated grid) catches up with one ``ontology-sync``
RPC carrying every op it missed.  Deltas are idempotent last-writer-wins
per ontology name, so the log compacts to one op per name and replicas
converge regardless of how they interleave push and catch-up.  With no
replicas subscribed nothing is ever pushed — the singleton grid's message
stream is untouched.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ServiceError
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message, Performative
from repro.ontology import KnowledgeBase, builtin_shell, kb_from_dict, kb_to_dict
from repro.services.base import CoreService

__all__ = ["OntologyService"]


class OntologyService(CoreService):
    service_type = "ontology"

    def __init__(
        self,
        env: GridEnvironment,
        name: str | None = None,
        site: str = "core",
        replica_of: str | None = None,
    ) -> None:
        super().__init__(env, name, site)
        self._ontologies: dict[str, KnowledgeBase] = {}
        #: Monotone replication version: bumped per registration.
        self.version = 0
        #: Compacted op log: one (version, name, kb dict) per ontology
        #: name, ordered by version — what ``ontology-sync`` serves.
        self._oplog: list[tuple[int, str, dict]] = []
        #: Replica agents subscribed to the delta stream (primary side).
        self._replicas: set[str] = set()
        #: Primary this instance replicates (replica side; None = primary).
        self.replica_of = replica_of
        #: Catch-up in flight (replica side) — one sync at a time.
        self._syncing = False
        if replica_of is None:
            # The global grid ontology (Figure 12) ships by default.
            self.add_ontology("grid", builtin_shell("grid"))

    # -- direct API ------------------------------------------------------------- #
    def add_ontology(self, name: str, kb: KnowledgeBase) -> None:
        self._ontologies[name] = kb
        self.version += 1
        self._oplog = [op for op in self._oplog if op[1] != name]
        self._oplog.append((self.version, name, kb_to_dict(kb)))
        self._push_delta(self._oplog[-1])

    def get(self, name: str) -> KnowledgeBase:
        kb = self._ontologies.get(name)
        if kb is None:
            raise ServiceError(f"unknown ontology {name!r}")
        return kb

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._ontologies))

    # -- replication: primary side ---------------------------------------------- #
    def subscribe_replica(self, agent: str) -> None:
        """Push every subsequent registration to *agent* as a versioned
        ``ontology-delta`` INFORM (it catches up separately on join)."""
        self._replicas.add(agent)

    def _push_delta(self, op: tuple[int, str, dict]) -> None:
        if not self._replicas:
            return
        version, name, kb = op
        self.env.router.route_many(
            [
                Message(
                    sender=self.name,
                    receiver=replica,
                    performative=Performative.INFORM,
                    action="ontology-delta",
                    content={"version": version, "name": name, "kb": kb},
                    size=2_000.0,
                )
                for replica in sorted(self._replicas)
            ],
            cause=self._current_cause,
        )

    def handle_ontology_sync(self, message: Message):
        """Catch-up: every op after the replica's ``since`` version."""
        since = int(message.content.get("since", 0))
        return {
            "version": self.version,
            "ops": [
                {"version": version, "name": name, "kb": kb}
                for version, name, kb in self._oplog
                if version > since
            ],
        }

    # -- replication: replica side ---------------------------------------------- #
    def _apply(self, version: int, name: str, kb: dict[str, Any]) -> None:
        self._ontologies[name] = kb_from_dict(kb)
        self._oplog = [op for op in self._oplog if op[1] != name]
        self._oplog.append((version, name, dict(kb)))
        self.version = version
        self.metrics.inc("ontology_replica_applied", agent=self.name)

    def _catch_up(self):
        """One sync round against the primary (generator process)."""
        try:
            reply = yield from self.call(
                self.replica_of, "ontology-sync", {"since": self.version}
            )
            for op in reply["ops"]:
                if op["version"] > self.version:
                    self._apply(op["version"], op["name"], op["kb"])
            self.metrics.inc("ontology_replica_synced", agent=self.name)
        finally:
            self._syncing = False

    def start_replication(self) -> None:
        """Join the delta stream and pull everything missed so far (the
        shard-join catch-up; also safe to call for gap repair)."""
        if self.replica_of is None:
            raise ServiceError(f"{self.name} is a primary, not a replica")
        if self._syncing:
            return
        self._syncing = True
        self.engine.spawn(self._catch_up(), name=f"{self.name}.sync")

    def on_unhandled(self, message: Message) -> None:
        if message.action == "ontology-delta" and self.replica_of is not None:
            content = message.content
            version = int(content["version"])
            if version == self.version + 1:
                self._apply(version, content["name"], content["kb"])
            elif version > self.version:
                # Gap: a delta was lost or this replica joined mid-stream —
                # repair with one catch-up RPC instead of trusting order.
                self.metrics.inc("ontology_replica_gap", agent=self.name)
                self.start_replication()
            # version <= self.version: stale duplicate, already applied.
            return
        super().on_unhandled(message)

    # -- message API --------------------------------------------------------------- #
    def handle_get_shell(self, message: Message):
        """An ontology's classes and slots, without instances."""
        kb = self.get(message.content["name"])
        return {"kb": kb_to_dict(kb.shell())}

    def handle_get_ontology(self, message: Message):
        """A populated ontology (classes, slots and instances)."""
        kb = self.get(message.content["name"])
        return {"kb": kb_to_dict(kb)}

    def handle_register_ontology(self, message: Message):
        content = message.content
        kb = kb_from_dict(content["kb"])
        self.add_ontology(content["name"], kb)
        return {"registered": content["name"], "instances": len(kb)}

    def handle_list_ontologies(self, message: Message):
        return {
            "ontologies": [
                {"name": name, "classes": len(self._ontologies[name].class_names),
                 "instances": len(self._ontologies[name])}
                for name in self.names
            ]
        }
