"""Ontology service: distributes shells and populated ontologies.

"Ontology services maintain and distribute ontology shells (i.e.,
ontologies with classes and slots but without instances) as well as
ontologies populated with instances, global ontologies, and user-specific
ontologies."  KBs travel as their JSON-dict serialization so receivers get
independent copies (agents must never share mutable KB state across the
simulated network).
"""

from __future__ import annotations

from repro.errors import ServiceError
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.ontology import KnowledgeBase, builtin_shell, kb_from_dict, kb_to_dict
from repro.services.base import CoreService

__all__ = ["OntologyService"]


class OntologyService(CoreService):
    service_type = "ontology"

    def __init__(self, env: GridEnvironment, name: str | None = None, site: str = "core") -> None:
        super().__init__(env, name, site)
        self._ontologies: dict[str, KnowledgeBase] = {}
        # The global grid ontology (Figure 12) ships by default.
        self.add_ontology("grid", builtin_shell("grid"))

    # -- direct API ------------------------------------------------------------- #
    def add_ontology(self, name: str, kb: KnowledgeBase) -> None:
        self._ontologies[name] = kb

    def get(self, name: str) -> KnowledgeBase:
        kb = self._ontologies.get(name)
        if kb is None:
            raise ServiceError(f"unknown ontology {name!r}")
        return kb

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._ontologies))

    # -- message API --------------------------------------------------------------- #
    def handle_get_shell(self, message: Message):
        """An ontology's classes and slots, without instances."""
        kb = self.get(message.content["name"])
        return {"kb": kb_to_dict(kb.shell())}

    def handle_get_ontology(self, message: Message):
        """A populated ontology (classes, slots and instances)."""
        kb = self.get(message.content["name"])
        return {"kb": kb_to_dict(kb)}

    def handle_register_ontology(self, message: Message):
        content = message.content
        kb = kb_from_dict(content["kb"])
        self.add_ontology(content["name"], kb)
        return {"registered": content["name"], "instances": len(kb)}

    def handle_list_ontologies(self, message: Message):
        return {
            "ontologies": [
                {"name": name, "classes": len(self._ontologies[name].class_names),
                 "instances": len(self._ontologies[name])}
                for name in self.names
            ]
        }
