"""Common machinery for the Figure-1 core services.

"We distinguish between core services, provided by the computing
infrastructure, that are persistent and reliable, and end-user services
provided by end-users."  Core services therefore never use the failure
oracle; they register their offering with the information service at
construction (bootstrap registration is direct, runtime discovery is
message-based, matching how Jade platforms bring up their AMS/DF).
"""

from __future__ import annotations

from repro.bus.policy import CallPolicy
from repro.grid.agent import Agent
from repro.grid.environment import GridEnvironment

__all__ = ["CoreService", "WELL_KNOWN"]

#: Conventional agent names for each core-service type.
WELL_KNOWN: dict[str, str] = {
    "information": "information",
    "brokerage": "brokerage",
    "matchmaking": "matchmaking",
    "monitoring": "monitoring",
    "ontology": "ontology",
    "storage": "storage",
    "authentication": "authentication",
    "scheduling": "scheduling",
    "simulation": "simulation",
    "planning": "planning",
    "coordination": "coordination",
}


class CoreService(Agent):
    """Base class: an agent with a service *type* and self-registration."""

    service_type: str = "core"

    def __init__(
        self,
        env: GridEnvironment,
        name: str | None = None,
        site: str = "core",
    ) -> None:
        super().__init__(env, name or WELL_KNOWN.get(self.service_type, self.service_type), site)
        information = getattr(env, "information_service", None)
        if information is not None and information is not self:
            information.register_offering(
                name=self.name,
                type=self.service_type,
                location=self.site,
                provider=self.name,
            )

    def handle_ping(self, message):
        return {"service": self.name, "type": self.service_type, "alive": True}

    def call_with_failover(
        self,
        providers: list[str],
        action: str,
        content: dict | None = None,
        timeout: float = 30.0,
    ):
        """RPC against the first *provider* that answers.

        "Core services are replicated to ensure an adequate level of
        performance and reliability" (Section 2): when a primary replica
        is down (silent -> timeout, or failing), the caller moves on to
        the next.  Raises the last error when every replica fails.
        Generator: ``result = yield from self.call_with_failover(...)``.

        Kept as the historical entry point; the mechanics now live in
        :meth:`~repro.grid.agent.Agent.call_any` under a declarative
        :class:`~repro.bus.policy.CallPolicy`.
        """
        result = yield from self.call_any(
            providers, action, content, policy=CallPolicy(timeout=timeout)
        )
        return result
