"""Common machinery for the Figure-1 core services.

"We distinguish between core services, provided by the computing
infrastructure, that are persistent and reliable, and end-user services
provided by end-users."  Core services therefore never use the failure
oracle; they register their offering with the information service at
construction (bootstrap registration is direct, runtime discovery is
message-based, matching how Jade platforms bring up their AMS/DF).
"""

from __future__ import annotations

from repro.bus.policy import CallPolicy
from repro.grid.agent import Agent
from repro.grid.environment import GridEnvironment
from repro.sim.engine import Signal

__all__ = ["CoreService", "WELL_KNOWN"]

#: Sentinel a coalesced-lookup leader fires when its RPC raised: joiners
#: retry from scratch instead of receiving a bogus reply.
_LOOKUP_FAILED = object()

#: Conventional agent names for each core-service type.
WELL_KNOWN: dict[str, str] = {
    "information": "information",
    "brokerage": "brokerage",
    "matchmaking": "matchmaking",
    "monitoring": "monitoring",
    "ontology": "ontology",
    "storage": "storage",
    "authentication": "authentication",
    "scheduling": "scheduling",
    "simulation": "simulation",
    "planning": "planning",
    "coordination": "coordination",
}


class CoreService(Agent):
    """Base class: an agent with a service *type* and self-registration."""

    service_type: str = "core"

    #: Shard label (e.g. ``"s2"``) when this instance is one replica of a
    #: sharded service group, else None.  Metrics are already shard-aware
    #: through the agent name; this feeds span attributes so profiles and
    #: trace trees name the shard that carried a case.
    shard: str | None = None

    def __init__(
        self,
        env: GridEnvironment,
        name: str | None = None,
        site: str = "core",
    ) -> None:
        super().__init__(env, name or WELL_KNOWN.get(self.service_type, self.service_type), site)
        #: key -> Signal for an identical lookup currently in flight
        #: (see :meth:`coalesced`).
        self._inflight: dict = {}
        information = getattr(env, "information_service", None)
        if information is not None and information is not self:
            information.register_offering(
                name=self.name,
                type=self.service_type,
                location=self.site,
                provider=self.name,
            )

    def handle_ping(self, message):
        return {"service": self.name, "type": self.service_type, "alive": True}

    def coalesced(self, key, factory, counter: str | None = None):
        """De-duplicate concurrent identical lookups (generator).

        The first request for *key* (the leader) runs ``factory()`` — a
        generator performing the lookup and filling whatever cache the
        caller maintains — and fires a signal with the reply; requests
        arriving while the leader is still parked join that signal instead
        of issuing their own RPCs.  This kills the cache-stampede pattern
        where N concurrent cases all miss the same cold key before the
        first reply lands (the dominant miss source in ``many_cases``: the
        fan-out's first activities all schedule at the same instant).

        Only meaningful on opt-in cached paths: callers gate on their TTL
        knob, so default-configuration message streams are untouched.
        Joiners share the leader's reply object by reference, matching the
        caches' no-mutate contract.  When the leader's lookup raises, the
        signal fires a failure sentinel and each joiner retries from
        scratch (hitting the cache, a newer leader, or missing on its
        own), so one failed RPC fails only its own requester.
        """
        inflight = self._inflight.get(key)
        if inflight is not None:
            if counter is not None:
                self.metrics.inc(counter, agent=self.name)
            reply = yield inflight
            if reply is not _LOOKUP_FAILED:
                return reply
            reply = yield from self.coalesced(key, factory, counter)
            return reply
        signal = Signal(self.engine, f"{self.name}.inflight")
        self._inflight[key] = signal
        try:
            reply = yield from factory()
        except BaseException:
            self._inflight.pop(key, None)
            signal.fire(_LOOKUP_FAILED)
            raise
        self._inflight.pop(key, None)
        signal.fire(reply)
        return reply

    def call_with_failover(
        self,
        providers: list[str],
        action: str,
        content: dict | None = None,
        timeout: float = 30.0,
    ):
        """RPC against the first *provider* that answers.

        "Core services are replicated to ensure an adequate level of
        performance and reliability" (Section 2): when a primary replica
        is down (silent -> timeout, or failing), the caller moves on to
        the next.  Raises the last error when every replica fails.
        Generator: ``result = yield from self.call_with_failover(...)``.

        Kept as the historical entry point; the mechanics now live in
        :meth:`~repro.grid.agent.Agent.call_any` under a declarative
        :class:`~repro.bus.policy.CallPolicy`.
        """
        result = yield from self.call_any(
            providers, action, content, policy=CallPolicy(timeout=timeout)
        )
        return result
