"""User Interface agents (the UI box of Figure 1).

"The User Interface (UI) provides access to the environment" and
"individual users may only be intermittently connected to the network"
(Section 2).  A :class:`UserInterface` therefore interacts with its
coordination-service proxy in a disconnection-tolerant way:

* :meth:`submit` fires the ``execute-task`` request without waiting for
  the (possibly hours-later) reply;
* :meth:`await_result` polls ``task-status`` on a fixed period, and keeps
  polling across disconnect/reconnect cycles — the coordinator holds the
  result until the user asks for it;
* :meth:`disconnect` / :meth:`reconnect` model the user dropping off the
  network (their inbound traffic is lost while away, which is exactly why
  the protocol polls instead of relying on a pushed reply).

Tasks can be submitted straight from frame instances via
:meth:`submit_from_kb` (the metainformation path of Figure 13).
"""

from __future__ import annotations

from collections.abc import Generator, Mapping
from typing import Any

from repro.bus.policy import CallPolicy
from repro.errors import ServiceError
from repro.grid.agent import Agent
from repro.grid.environment import GridEnvironment
from repro.ontology import KnowledgeBase
from repro.ontology_bridge import task_request_from_kb
from repro.process.conditions import Condition
from repro.services.base import WELL_KNOWN

__all__ = ["UserInterface"]


class UserInterface(Agent):
    """An end-user's access point, tolerant of intermittent connectivity."""

    coordination_name = WELL_KNOWN["coordination"]

    #: Seconds between task-status polls.
    poll_period = 5.0
    #: Per-poll RPC timeout (covers polls sent while disconnected).
    poll_timeout = 30.0

    def __init__(
        self,
        env: GridEnvironment,
        name: str = "ui",
        site: str = "user",
        owner: str = "user",
    ) -> None:
        super().__init__(env, name, site)
        self.owner = owner
        self.submitted: list[str] = []

    # -- submission ------------------------------------------------------------- #
    def submit(self, request: dict[str, Any]) -> str:
        """Fire an ``execute-task`` request; returns the task name used.

        Fire-and-forget: the user does not park on the reply (they may be
        about to disconnect); results are retrieved via polling.
        """
        task = request.get("task") or f"{self.owner}-task-{len(self.submitted) + 1}"
        request = {**request, "task": task}
        self.request(self.coordination_name, "execute-task", request)
        self.submitted.append(task)
        return task

    def submit_from_kb(
        self,
        kb: KnowledgeBase,
        task_id: str,
        constraints: Mapping[str, Condition] | None = None,
        extra: dict[str, Any] | None = None,
    ) -> str:
        """Submit a Task frame (Figure-13 path); *extra* merges additional
        request fields (e.g. a ``problem`` when Need Planning is set)."""
        request = task_request_from_kb(kb, task_id, constraints)
        request.update(extra or {})
        return self.submit(request)

    # -- connectivity ------------------------------------------------------------ #
    def disconnect(self) -> None:
        """Drop off the network: inbound messages are lost while away."""
        self.crash()

    def reconnect(self) -> None:
        self.restart()

    # -- result retrieval ---------------------------------------------------------- #
    def await_result(
        self, task: str, max_polls: int = 10_000
    ) -> Generator[Any, Any, dict[str, Any]]:
        """Poll until *task* completes or fails; returns the status reply.

        Generator (run it as a simulation process).  Polls issued while
        disconnected go nowhere and simply time out; polling resumes after
        :meth:`reconnect`.  Raises :class:`ServiceError` if the coordinator
        reports the task failed, or after *max_polls* unanswered polls.
        """
        for _ in range(max_polls):
            yield self.poll_period
            if not self.alive:
                continue  # offline: skip the round trip entirely
            try:
                status = yield from self.call(
                    self.coordination_name,
                    "task-status",
                    {"task": task},
                    policy=CallPolicy(timeout=self.poll_timeout),
                )
            except ServiceError:
                continue  # lost poll (e.g. disconnected mid-flight)
            if status.get("failed"):
                raise ServiceError(f"task {task!r} failed")
            if status.get("completed"):
                return status
        raise ServiceError(
            f"task {task!r} did not complete within {max_polls} polls"
        )
