"""Information service: the registry every other service consults.

"Information services play an important role; all end-user services and
other core services register their offerings with the information
services."  Offerings are (name, type, location, provider) records;
lookups filter by type and/or name.  Bootstrap registration is a direct
method call (:meth:`register_offering`); runtime registration and lookup
are message actions, so they appear in protocol traces (Figure 3 step 1-3
is exactly a ``lookup`` for a brokerage service).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.services.base import CoreService

__all__ = ["Offering", "InformationService"]


@dataclass(frozen=True)
class Offering:
    name: str
    type: str
    location: str
    provider: str


class InformationService(CoreService):
    service_type = "information"

    def __init__(self, env: GridEnvironment, name: str | None = None, site: str = "core") -> None:
        self._offerings: dict[str, Offering] = {}
        super().__init__(env, name, site)
        env.information_service = self  # type: ignore[attr-defined]
        self.register_offering(self.name, self.service_type, self.site, self.name)

    # -- direct (bootstrap) API -------------------------------------------------- #
    def register_offering(self, name: str, type: str, location: str, provider: str) -> None:
        self._offerings[name] = Offering(name, type, location, provider)

    def deregister_offering(self, name: str) -> bool:
        return self._offerings.pop(name, None) is not None

    def find(self, type: str | None = None, name: str | None = None) -> list[Offering]:
        out = []
        for offering in self._offerings.values():
            if type is not None and offering.type != type:
                continue
            if name is not None and offering.name != name:
                continue
            out.append(offering)
        return sorted(out, key=lambda o: o.name)

    @property
    def census(self) -> dict[str, int]:
        """Count of offerings per type (architecture benches assert on it)."""
        counts: dict[str, int] = {}
        for offering in self._offerings.values():
            counts[offering.type] = counts.get(offering.type, 0) + 1
        return counts

    # -- message API ---------------------------------------------------------------- #
    def handle_register(self, message: Message):
        content = message.content
        self.register_offering(
            name=content["name"],
            type=content.get("type", "end-user"),
            location=content.get("location", "unknown"),
            provider=content.get("provider", message.sender),
        )
        return {"registered": content["name"]}

    def handle_deregister(self, message: Message):
        return {"removed": self.deregister_offering(message.content["name"])}

    def handle_lookup(self, message: Message):
        found = self.find(
            type=message.content.get("type"), name=message.content.get("name")
        )
        return {"providers": [asdict(o) for o in found]}
