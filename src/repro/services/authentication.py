"""Authentication service: principals, credentials, tickets.

"The authentication services contribute to the security of the
environment."  We model the minimum the other services need: principals
with shared secrets, sim-time-limited tickets, and validation.  Tickets
are opaque deterministic tokens (no crypto — this is a simulation of the
protocol, not of the cryptography).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import AuthenticationError
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.services.base import CoreService

__all__ = ["Ticket", "AuthenticationService"]


@dataclass(frozen=True)
class Ticket:
    token: str
    principal: str
    issued_at: float
    expires_at: float


class AuthenticationService(CoreService):
    service_type = "authentication"

    #: Default ticket lifetime in simulated seconds.
    ticket_lifetime = 3600.0

    def __init__(self, env: GridEnvironment, name: str | None = None, site: str = "core") -> None:
        super().__init__(env, name, site)
        self._secrets: dict[str, str] = {}
        self._tickets: dict[str, Ticket] = {}
        self._counter = itertools.count(1)

    # -- direct API ---------------------------------------------------------------- #
    def add_principal(self, name: str, secret: str) -> None:
        if name in self._secrets:
            raise AuthenticationError(f"principal {name!r} already exists")
        self._secrets[name] = secret

    def issue(self, principal: str, secret: str) -> Ticket:
        expected = self._secrets.get(principal)
        if expected is None or expected != secret:
            raise AuthenticationError(f"bad credentials for {principal!r}")
        token = f"tkt-{next(self._counter)}"
        ticket = Ticket(
            token=token,
            principal=principal,
            issued_at=self.engine.now,
            expires_at=self.engine.now + self.ticket_lifetime,
        )
        self._tickets[token] = ticket
        return ticket

    def check(self, token: str) -> Ticket:
        ticket = self._tickets.get(token)
        if ticket is None:
            raise AuthenticationError(f"unknown ticket {token!r}")
        if self.engine.now > ticket.expires_at:
            raise AuthenticationError(f"ticket {token!r} expired")
        return ticket

    # -- message API ---------------------------------------------------------------- #
    def handle_register_principal(self, message: Message):
        content = message.content
        try:
            self.add_principal(content["name"], content["secret"])
        except AuthenticationError as exc:
            return {"registered": False, "error": str(exc)}
        return {"registered": True}

    def handle_authenticate(self, message: Message):
        content = message.content
        try:
            ticket = self.issue(content["principal"], content["secret"])
        except AuthenticationError as exc:
            from repro.errors import ServiceError

            raise ServiceError(str(exc)) from exc
        return {
            "ticket": ticket.token,
            "principal": ticket.principal,
            "expires_at": ticket.expires_at,
        }

    def handle_validate(self, message: Message):
        try:
            ticket = self.check(message.content["ticket"])
        except AuthenticationError as exc:
            return {"valid": False, "error": str(exc)}
        return {"valid": True, "principal": ticket.principal}
