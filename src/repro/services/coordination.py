"""Coordination service: the abstract ATN machine.

"Coordination services act as proxies for the end-user.  A coordination
service receives a case description and controls the enactment of the
workflow ...  The coordination service implements an abstract ATN
machine."  (Section 2)

Enactment walks the process description's recovered AST (the graph is
converted on receipt — which doubles as a well-structuredness check):

* end-user activities are dispatched through matchmaking -> scheduling ->
  the chosen application container, with bounded retries and performance
  reporting back to the brokerage;
* Fork/Join branches run as genuinely concurrent simulation processes;
* Choice conditions and Iterative stopping conditions are evaluated over
  the live *case data* (the data items produced so far and their
  properties — exactly the Figure-13 constraint semantics, e.g. Cons1
  looping until the resolution value is good enough);
* when an activity exhausts its retries, the coordinator triggers
  re-planning (Figure 3), resumes with the new process description, and
  carries all data produced so far into the new plan's enactment.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Generator
from typing import Any

from repro.analysis import Severity, analyze_process, critical_activities
from repro.bus.policy import CallPolicy
from repro.errors import ConversionError, EnactmentError, ServiceError
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message, Performative
from repro.obs.journal import JOURNAL_SCHEMA_VERSION, encode_events, journal_storage_key
from repro.obs.spans import Span
from repro.planner.problem import PlanningProblem
from repro.process.ast_nodes import (
    ActivityNode,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Node,
    SequenceNode,
)
from repro.process.conditions import MISSING
from repro.process.model import ProcessDescription
from repro.process.program import ActivityStep, EnactmentProgram, process_fingerprint
from repro.services.base import CoreService, WELL_KNOWN

__all__ = ["CoordinationService", "EnactmentRecord"]


class _ActivityFailed(ServiceError):
    """Internal: an end-user activity exhausted its retries."""

    def __init__(self, activity: str, reason: str) -> None:
        super().__init__(f"activity {activity!r} failed: {reason}")
        self.activity = activity
        self.reason = reason


class _CaseData:
    """Live case data: data name -> properties, plus payload locations.

    Implements the condition-evaluation protocol (lookup/peek) so Choice
    guards and iterative stopping conditions read it directly.  Mutation
    is monotone merge, matching the planner's state algebra.
    """

    def __init__(self, initial: dict[str, dict] | None = None) -> None:
        self.props: dict[str, dict] = {k: dict(v) for k, v in (initial or {}).items()}
        self.payload_keys: dict[str, str] = {}

    def lookup(self, data_name: str, prop: str) -> Any:
        return self.props[data_name][prop]

    def peek(self, data_name: str, prop: str) -> Any:
        item = self.props.get(data_name)
        if item is None:
            return MISSING
        return item.get(prop, MISSING)

    def merge(self, outputs: dict[str, dict], payload_keys: dict[str, str]) -> None:
        for name, props in outputs.items():
            self.props.setdefault(name, {}).update(props)
        self.payload_keys.update(payload_keys)

    def snapshot(self) -> dict[str, dict]:
        return {k: dict(v) for k, v in self.props.items()}


@dataclass
class EnactmentRecord:
    """Telemetry for one enactment (exposed in the reply and kept by the
    coordinator for experiment assertions)."""

    task: str
    #: Journal case id ("" when the case journal is disabled).
    case_id: str = ""
    events: list[tuple[float, str, str]] = field(default_factory=list)
    activities_run: int = 0
    activities_failed: int = 0
    replans: int = 0
    completed: bool = False
    failed: bool = False
    #: Final case data, set on completion — kept so intermittently
    #: connected users can poll for results after reconnecting.
    result: dict[str, dict] | None = None
    #: Activities on the process's static critical path (empty unless the
    #: coordinator's ``criticality_hints`` knob is on).
    critical: frozenset = frozenset()

    def log(self, time: float, kind: str, detail: str) -> None:
        self.events.append((time, kind, detail))


class CoordinationService(CoreService):
    service_type = "coordination"

    matchmaker_name = WELL_KNOWN["matchmaking"]
    scheduler_name = WELL_KNOWN["scheduling"]
    broker_name = WELL_KNOWN["brokerage"]
    planner_name = WELL_KNOWN["planning"]

    #: Retries per activity before declaring it failed (Figure-12 Activity
    #: frames carry a Retry Count slot).
    retry_limit = 2
    #: RPC timeout for container executions (crashed containers are silent).
    activity_timeout = 3_600.0
    #: Safety bound on iterative loops whose condition never goes false.
    max_loop_iterations = 25
    #: Re-planning rounds before giving up on a case.
    max_replans = 3
    #: Compiled enactment programs kept per coordinator (LRU by process
    #: fingerprint); 0 disables the cache and compiles per enactment.
    program_cache_size = 64
    #: Knowledge base for intake-time service resolvability (E501/W502);
    #: None skips that pass.
    knowledge_base = None
    #: Error codes tolerated at intake: E202 (overlapping Choice guards)
    #: is an error for a process *author* — branch uniqueness is broken —
    #: but this machine resolves it deterministically by first-match, so
    #: enactment proceeds (the finding is still attached to the record).
    #: E612 (a guard-coverage gap inside a fork branch) likewise: this
    #: coordinator falls through to the last arm when no guard holds, so
    #: the join cannot actually starve here.
    tolerated_findings = frozenset({"E202", "E612"})

    #: When True, activities on the static critical path (the concurrency
    #: verifier's :func:`~repro.analysis.concurrency.critical_activities`)
    #: carry a ``criticality`` hint in their schedule requests, letting
    #: the scheduler bias placement toward lightly loaded containers.
    #: Default off: schedule-request payloads stay byte-identical.
    criticality_hints: bool = False

    #: Name of the authentication service used when credentials are set.
    auth_name = WELL_KNOWN["authentication"]

    #: Coordinator-side match-reply cache TTL in simulated seconds.  0
    #: (the default) keeps one match RPC per activity dispatch — and the
    #: message stream byte-identical.  With a TTL (see
    #: :meth:`enable_match_cache`) repeated dispatches of the same service
    #: reuse the ranked candidate list without crossing the network; the
    #: broker's ``registry-changed`` push flushes it on (de)registration.
    match_cache_ttl: float = 0.0

    #: When set, per-activity performance reports to the broker go as
    #: one-way INFORM notifications instead of blocking RPCs — half the
    #: messages, no reply wait, and the broker books them inline in its
    #: serve loop (no handler process).  Default off: the RPC's reply is
    #: part of the recorded protocol traces.
    async_reports: bool = False

    def __init__(
        self,
        env: GridEnvironment,
        name: str | None = None,
        site: str = "core",
        credentials: tuple[str, str] | None = None,
    ) -> None:
        super().__init__(env, name, site)
        self.records: list[EnactmentRecord] = []
        #: (principal, secret) for secured containers; None = unsecured grid.
        self.credentials = credentials
        self._ticket: str | None = None
        self._ticket_expires = 0.0
        self._programs: OrderedDict[Any, EnactmentProgram] = OrderedDict()
        #: (process fingerprint, initial-data keys) -> intake findings.
        #: Analysis is pure and synchronous (no messages), so sharing one
        #: result across the N cases of a workflow is trace-safe; follows
        #: the program cache's size knob and LRU policy.
        self._analysis_cache: OrderedDict[Any, list] = OrderedDict()
        #: service -> (expires_at, candidate names best-first).
        self._match_cache: dict[str, tuple[float, list[str]]] = {}

    def enable_match_cache(self, ttl: float, broker=None) -> None:
        """Cache matchmaker replies per service for *ttl* simulated
        seconds; when *broker* (a BrokerageService) is given, subscribe to
        its registry push so (de)registrations invalidate immediately."""
        self.match_cache_ttl = ttl
        if broker is not None:
            broker.subscribe_registry(self.name)

    def invalidate_matches(self, services: list[str] | None = None) -> None:
        """Drop cached match replies — all of them, or (when the broker's
        push names the affected *services*) only those services' entries."""
        if services is None:
            self._match_cache.clear()
            return
        cache = self._match_cache
        for service in services:
            cache.pop(service, None)

    def on_unhandled(self, message: Message) -> None:
        if message.action == "registry-changed":
            self.invalidate_matches(message.content.get("services"))
            return
        super().on_unhandled(message)

    def _candidates_for(self, service: str, span: Span | None):
        """Ranked candidate containers for *service* (generator): the
        matchmaker RPC, behind the opt-in coordinator-side TTL cache."""
        ttl = self.match_cache_ttl
        if ttl > 0.0:
            entry = self._match_cache.get(service)
            if entry is not None and self.engine.now < entry[0]:
                self.metrics.inc("coord_match_cache_hit", agent=self.name)
                return list(entry[1])

            def fill():
                self.metrics.inc("coord_match_cache_miss", agent=self.name)
                match = yield from self._timed_call(
                    "match", span, self.matchmaker_name, "match",
                    {"service": service},
                )
                found = [c["container"] for c in match["candidates"]]
                if found:
                    self._match_cache[service] = (
                        self.engine.now + ttl, list(found)
                    )
                return found

            # Concurrent cold misses for one service share a single match
            # RPC (see CoreService.coalesced).
            candidates = yield from self.coalesced(
                ("match", service), fill, "coord_match_cache_join"
            )
            return list(candidates)
        match = yield from self._timed_call(
            "match", span, self.matchmaker_name, "match", {"service": service},
        )
        return [c["container"] for c in match["candidates"]]

    def _analyze(self, process: ProcessDescription, initial: set | None):
        """Intake findings for *process* (cached per fingerprint +
        initial-data keys; N cases of one workflow analyze once)."""
        if self.program_cache_size <= 0:
            return analyze_process(
                process, kb=self.knowledge_base, initial_data=initial
            )
        key = (
            process_fingerprint(process),
            frozenset(initial) if initial else None,
        )
        cached = self._analysis_cache.get(key)
        if cached is not None:
            self._analysis_cache.move_to_end(key)
            self.metrics.inc("analysis_cache_hit", agent=self.name)
            return cached
        findings = analyze_process(
            process, kb=self.knowledge_base, initial_data=initial
        )
        self.metrics.inc("analysis_cache_miss", agent=self.name)
        self._analysis_cache[key] = findings
        while len(self._analysis_cache) > self.program_cache_size:
            self._analysis_cache.popitem(last=False)
        return findings

    def _report_performance(
        self, service: str, container: str, duration: float, success: bool
    ):
        """Report an activity outcome to the broker (generator).  Blocking
        RPC by default; one-way INFORM under :attr:`async_reports`."""
        content = {
            "service": service,
            "container": container,
            "duration": duration,
            "success": success,
        }
        if self.async_reports:
            self.send(
                Message(
                    sender=self.name,
                    receiver=self.broker_name,
                    performative=Performative.INFORM,
                    action="record-performance",
                    content=content,
                    size=1_000.0,
                )
            )
            return
        yield from self.call(self.broker_name, "record-performance", content)

    def _program_for(self, process: ProcessDescription) -> EnactmentProgram:
        """Compile *process* (or fetch the shared compilation): N cases of
        one workflow share a single program.  Raises ConversionError for
        non-well-structured graphs, exactly like ``process_to_ast``."""
        if self.program_cache_size <= 0:
            return EnactmentProgram(process)
        key = process_fingerprint(process)
        program = self._programs.get(key)
        if program is not None:
            self._programs.move_to_end(key)
            self.metrics.inc("program_cache_hit", agent=self.name)
            return program
        program = EnactmentProgram(process)
        self.metrics.inc("program_cache_miss", agent=self.name)
        self._programs[key] = program
        while len(self._programs) > self.program_cache_size:
            self._programs.popitem(last=False)
        return program

    def _timed_call(
        self,
        kind: str,
        parent: Span | None,
        to: str,
        action: str,
        content: dict[str, Any],
        policy: CallPolicy | None = None,
        **attrs: Any,
    ) -> Generator[Any, Any, dict[str, Any]]:
        """RPC wrapped in a child span of *parent* (plain ``call`` when
        recording is off — the wrapper itself adds no engine events, so
        the message stream is identical either way)."""
        recorder = self.env.spans
        span = (
            recorder.start(action, kind, agent=self.name, parent=parent, **attrs)
            if recorder.enabled
            else None
        )
        try:
            reply = yield from self.call(to, action, content, policy=policy)
        except ServiceError:
            recorder.end(span, status="error")
            raise
        recorder.end(span)
        return reply

    def _ensure_ticket(self):
        """Obtain (and cache) an authentication ticket for dispatching to
        secured containers.  Generator; returns the token or None when the
        coordinator has no credentials configured."""
        if self.credentials is None:
            return None
        if self._ticket is not None and self.engine.now < self._ticket_expires:
            return self._ticket
        principal, secret = self.credentials
        reply = yield from self.call(
            self.auth_name,
            "authenticate",
            {"principal": principal, "secret": secret},
        )
        self._ticket = reply["ticket"]
        # Renew a minute before expiry to avoid in-flight rejection.
        self._ticket_expires = float(reply["expires_at"]) - 60.0
        return self._ticket

    # -- message API ----------------------------------------------------------------- #
    def handle_execute_task(self, message: Message):
        """Enact a case over a process description.

        Content:

        * ``process`` — a ProcessDescription (must be well-structured);
        * ``initial_data`` — data name -> properties (the case's initial
          data set with their specifications);
        * optional ``payload_keys`` — data name -> storage key of real
          payloads;
        * optional ``problem`` — the PlanningProblem, enabling re-planning;
        * optional ``task`` — display name;
        * optional ``work`` — service name -> work units (scheduling hint).

        Reply: final ``data`` properties, ``payload_keys``, and the
        enactment record (events, counts, replans).
        """
        content = message.content
        recorder = self.env.spans
        journal = self.env.journal
        case_span = (
            recorder.start(
                content.get("task", ""), "case",
                agent=self.name, trace_id=message.trace_id,
                **({"shard": self.shard} if self.shard else {}),
            )
            if recorder.enabled
            else None
        )
        case_id: str | None = None
        if journal.enabled:
            # Flight recorder: bind the case trace first, so every
            # downstream emission (containers, transfers — they only see
            # the trace id) lands in this case's journal.
            case_id = self._journal_case_id(content, message.trace_id)
            journal.bind(message.trace_id, case_id)
            process = content.get("process")
            journal.append(
                case_id, "case-intake",
                agent=self.name, trace_id=message.trace_id,
                process=process.name if process is not None else None,
                initial=sorted(content.get("initial_data") or ()),
                payload_keys=sorted(content.get("payload_keys") or ()),
                **({"shard": self.shard} if self.shard else {}),
            )
        try:
            result = yield from self._execute_task(content, case_span, case_id)
        except ServiceError as exc:
            recorder.end(case_span, status="error")
            if case_id is not None:
                journal.append(
                    case_id, "case-fail", agent=self.name,
                    trace_id=message.trace_id, error=str(exc),
                )
                if journal.mirror:
                    yield from self._journal_flush(case_id)
            raise
        recorder.end(case_span)
        if case_id is not None:
            journal.append(
                case_id, "case-complete", agent=self.name,
                trace_id=message.trace_id,
                activities_run=result.get("activities_run", 0),
                replans=result.get("replans", 0),
            )
            if journal.mirror:
                yield from self._journal_flush(case_id)
        return result

    @staticmethod
    def _journal_case_id(content: dict[str, Any], trace_id) -> str:
        """Stable journal/provenance identity for a case request."""
        task = content.get("task")
        if task:
            return str(task)
        process = content.get("process")
        if process is not None:
            return process.name
        problem = content.get("problem")
        if problem is not None:
            return problem.name
        return f"case@{trace_id}"

    def _journal_flush(self, case_id: str) -> Generator[Any, Any, None]:
        """Mirror *case_id*'s journal into the storage service as one
        schema-versioned JSONL blob under ``journal/<case_id>`` (shards
        and replicas share the store, so any monitoring replica can
        lazily sync the case back)."""
        journal = self.env.journal
        events = journal.events(case_id)
        yield from self.call(
            self.env.storage_name,
            "store",
            {
                "key": journal_storage_key(case_id),
                "payload": encode_events(case_id, events),
                "meta": {
                    "kind": "journal",
                    "case": case_id,
                    "events": len(events),
                    "schema": JOURNAL_SCHEMA_VERSION,
                },
            },
        )
        journal.mark_flushed(case_id)

    def _execute_task(
        self,
        content: dict[str, Any],
        case_span: Span | None,
        case_id: str | None = None,
    ) -> Generator[Any, Any, dict[str, Any]]:
        recorder = self.env.spans
        journal = self.env.journal
        process: ProcessDescription | None = content.get("process")
        findings = []
        if process is not None:
            # Semantic intake gate: user-supplied processes are analyzed
            # before any enactment work; error findings (minus the
            # tolerated set) refuse the case with a diagnostic reply.
            # Planner-produced processes skip this — imperfect plans are
            # the re-planning loop's job, not intake's.
            initial = content.get("initial_data")
            findings = self._analyze(
                process, set(initial) if initial else None
            )
            refused = [
                f
                for f in findings
                if f.severity is Severity.ERROR
                and f.code not in self.tolerated_findings
            ]
            if refused:
                self.metrics.inc("cases_refused", agent=self.name)
                if case_id is not None:
                    journal.append(
                        case_id, "refusal", agent=self.name,
                        reason="semantic-analysis",
                        findings=[str(f) for f in refused],
                    )
                raise ServiceError(
                    f"case {content.get('task', process.name)!r} refused: "
                    f"process {process.name!r} failed semantic analysis: "
                    + "; ".join(str(f) for f in refused)
                )
        plan_source: str | None = None
        if process is None:
            # No process description supplied (the Task's "Need Planning"
            # flag): obtain one from the planning service first — the
            # Figure-2 exchange.
            problem_for_plan: PlanningProblem = content["problem"]
            reply = yield from self._timed_call(
                "plan", case_span,
                self.planner_name, "plan", {"problem": problem_for_plan},
            )
            process = reply["process"]
            plan_source = reply.get("source")
            if case_id is not None:
                journal.append(
                    case_id, "plan", agent=self.name,
                    source=plan_source or "gp", process=process.name,
                    solved=reply.get("solved"), fitness=reply.get("fitness"),
                )
            if plan_source in ("hit", "repair") and not reply.get("verified"):
                # A plan-library plan may only skip GP when the planning
                # service re-verified it against the current registry in
                # *this* exchange — a stale plan is never enacted blind.
                self.metrics.inc("cases_refused", agent=self.name)
                if case_id is not None:
                    journal.append(
                        case_id, "refusal", agent=self.name,
                        reason="unverified-library-plan", source=plan_source,
                        process=process.name,
                    )
                raise ServiceError(
                    f"case {content.get('task', process.name)!r} refused: "
                    f"library {plan_source} for {process.name!r} was not "
                    "re-verified by the analyzer"
                )
        case = _CaseData(content.get("initial_data"))
        case.payload_keys.update(content.get("payload_keys", {}))
        problem: PlanningProblem | None = content.get("problem")
        record = EnactmentRecord(
            task=content.get("task", process.name), case_id=case_id or ""
        )
        if case_span is not None:
            case_span.name = record.task
            if plan_source is not None:
                case_span.attrs["plan_source"] = plan_source
        self.records.append(record)
        if plan_source is not None:
            record.log(self.engine.now, "plan-source", plan_source)
        for finding in findings:
            record.log(self.engine.now, "lint", str(finding))
        work: dict[str, float] = dict(content.get("work", {}))

        failed_activities: list[str] = []
        current = process
        while True:
            compile_span = (
                recorder.start(current.name, "compile", agent=self.name, parent=case_span)
                if recorder.enabled
                else None
            )
            try:
                program = self._program_for(current)
            except ConversionError as exc:
                recorder.end(compile_span, status="error")
                if case_id is not None:
                    journal.append(
                        case_id, "compile", agent=self.name,
                        process=current.name, error=str(exc),
                    )
                raise ServiceError(
                    f"process {current.name!r} is not well-structured: {exc}"
                ) from exc
            recorder.end(compile_span, **program.stats())
            if case_id is not None:
                stats = program.stats()
                journal.append(
                    case_id, "compile", agent=self.name,
                    process=current.name, activities=sorted(program.steps),
                    choices=stats.get("choices", 0), loops=stats.get("loops", 0),
                )
            if self.criticality_hints:
                record.critical = critical_activities(current)
            record.log(self.engine.now, "enact", f"process {current.name}")
            enact_span = (
                recorder.start(current.name, "enact", agent=self.name, parent=case_span)
                if recorder.enabled
                else None
            )
            try:
                yield from self._enact(
                    program.ast, program, case, record, work, enact_span
                )
                recorder.end(enact_span)
                record.completed = True
                self.metrics.inc(
                    "enactments_completed", agent=self.name, action=record.task
                )
                break
            except _ActivityFailed as failure:
                recorder.end(enact_span, status="error", failed=failure.activity)
                record.activities_failed += 1
                record.log(
                    self.engine.now, "activity-failed",
                    f"{failure.activity}: {failure.reason}",
                )
                if problem is None or record.replans >= self.max_replans:
                    record.failed = True
                    self.metrics.inc(
                        "enactments_failed", agent=self.name, action=record.task
                    )
                    raise ServiceError(
                        f"enactment of {record.task!r} failed at activity "
                        f"{failure.activity!r} and cannot re-plan"
                    ) from failure
                failed_activities.append(
                    self._planner_activity_name(current, failure.activity)
                )
                record.replans += 1
                self.metrics.inc("replans", agent=self.name, action=record.task)
                record.log(
                    self.engine.now, "replan",
                    f"excluding {sorted(set(failed_activities))}",
                )
                if case_id is not None:
                    journal.append(
                        case_id, "replan", agent=self.name,
                        round=record.replans,
                        excluded=sorted(set(failed_activities)),
                        aborted=failure.activity,
                    )
                reply = yield from self._timed_call(
                    "replan", case_span,
                    self.planner_name,
                    "replan",
                    {
                        "problem": problem,
                        "data": case.snapshot(),
                        "failed_activities": sorted(set(failed_activities)),
                    },
                    round=record.replans,
                )
                current = reply["process"]

        record.log(self.engine.now, "completed", record.task)
        record.result = case.snapshot()
        if case_span is not None:
            case_span.attrs.update(
                activities_run=record.activities_run, replans=record.replans
            )
        reply = {
            "status": "completed",
            "data": case.snapshot(),
            "payload_keys": dict(case.payload_keys),
            "activities_run": record.activities_run,
            "replans": record.replans,
            "events": list(record.events),
        }
        if findings:
            reply["findings"] = [f.to_dict() for f in findings]
        return reply

    def handle_task_status(self, message: Message):
        """Poll a task's progress/result by name.

        This is how intermittently connected users (Section 2) retrieve
        outcomes: the coordinator acts as their proxy and holds results
        until they reconnect and ask.
        """
        wanted = message.content["task"]
        for record in reversed(self.records):
            if record.task == wanted:
                reply = {
                    "known": True,
                    "completed": record.completed,
                    "failed": record.failed,
                    "activities_run": record.activities_run,
                    "replans": record.replans,
                }
                if record.completed and record.result is not None:
                    reply["data"] = record.result
                return reply
        return {"known": False, "completed": False, "failed": False}

    # -- the ATN machine ----------------------------------------------------------- #
    def _enact(
        self,
        node: Node,
        program: EnactmentProgram,
        case: _CaseData,
        record: EnactmentRecord,
        work: dict[str, float],
        span: Span | None = None,
    ) -> Generator[Any, Any, None]:
        recorder = self.env.spans
        if isinstance(node, ActivityNode):
            yield from self._run_activity(
                program.step(node.name), case, record, work, span
            )
            return
        if isinstance(node, SequenceNode):
            for child in node.children:
                yield from self._enact(child, program, case, record, work, span)
            return
        if isinstance(node, ForkNode):
            yield from self._run_fork(node, program, case, record, work, span)
            return
        if isinstance(node, ChoiceNode):
            branch = self._choose(node, program, case, record, span)
            yield from self._enact(branch, program, case, record, work, span)
            return
        if isinstance(node, IterativeNode):
            loop_span = (
                recorder.start("iterative", "loop", agent=self.name, parent=span)
                if recorder.enabled
                else None
            )
            holds = program.check(node)
            iterations = 0
            try:
                while True:
                    yield from self._enact(
                        node.body, program, case, record, work, loop_span
                    )
                    iterations += 1
                    if not holds(case):
                        break
                    if iterations >= self.max_loop_iterations:
                        record.log(
                            self.engine.now, "loop-bound",
                            f"iterative stopped after {iterations} iterations",
                        )
                        break
            except _ActivityFailed:
                recorder.end(loop_span, status="error", iterations=iterations)
                raise
            record.log(self.engine.now, "loop-done", f"{iterations} iterations")
            recorder.end(loop_span, iterations=iterations)
            return
        raise EnactmentError(f"unknown AST node {type(node).__name__}")

    def _choose(
        self,
        node: ChoiceNode,
        program: EnactmentProgram,
        case: _CaseData,
        record: EnactmentRecord,
        span: Span | None = None,
    ) -> Node:
        """First branch whose condition holds (Section 3.1's Choice)."""
        recorder = self.env.spans
        for index, (holds, condition, branch) in enumerate(program.branches(node)):
            if holds(case):
                record.log(self.engine.now, "choice", str(condition))
                if recorder.enabled:
                    # Instant span: condition evaluation is zero sim-time.
                    recorder.end(
                        recorder.start(
                            "choice", "choice", agent=self.name, parent=span,
                            branch=index, condition=str(condition),
                        )
                    )
                return branch
        # No condition holds: the paper leaves this undefined; taking the
        # last branch (conventionally the default/else arm) keeps the
        # machine live and is logged for the experimenter.
        record.log(self.engine.now, "choice-default", "no condition held")
        if recorder.enabled:
            recorder.end(
                recorder.start(
                    "choice", "choice", agent=self.name, parent=span,
                    branch=len(node.branches) - 1, condition="default",
                )
            )
        return node.branches[-1][1]

    def _run_fork(
        self,
        node: ForkNode,
        program: EnactmentProgram,
        case: _CaseData,
        record: EnactmentRecord,
        work: dict[str, float],
        span: Span | None = None,
    ) -> Generator[Any, Any, None]:
        recorder = self.env.spans
        fork_span = (
            recorder.start(
                "fork", "fork", agent=self.name, parent=span,
                branches=len(node.branches),
            )
            if recorder.enabled
            else None
        )

        def wrap(branch: Node):
            try:
                yield from self._enact(branch, program, case, record, work, fork_span)
                return ("ok", None)
            except _ActivityFailed as exc:
                return ("failed", exc)

        # spawn_scoped (not engine.spawn) so every branch stays inside the
        # requesting message's causal trace — the fork's concurrent calls
        # reconstruct as siblings under the execute-task request.
        handles = [
            self.spawn_scoped(wrap(branch), name=f"{self.name}.branch{i}")
            for i, branch in enumerate(node.branches)
        ]
        failures = []
        for handle in handles:
            status, exc = yield handle
            if status == "failed":
                failures.append(exc)
        record.log(self.engine.now, "join", f"{len(handles)} branches")
        if failures:
            recorder.end(fork_span, status="error")
            raise failures[0]
        recorder.end(fork_span)

    def _run_activity(
        self,
        step: ActivityStep,
        case: _CaseData,
        record: EnactmentRecord,
        work: dict[str, float],
        parent: Span | None = None,
    ) -> Generator[Any, Any, None]:
        name = step.name
        service = step.service
        recorder = self.env.spans
        journal = self.env.journal
        activity_span = (
            recorder.start(
                name, "activity", agent=self.name, parent=parent, service=service
            )
            if recorder.enabled
            else None
        )
        inputs = {
            d: dict(case.props[d]) for d in step.inputs if d in case.props
        }
        payload_keys = {
            d: case.payload_keys[d]
            for d in step.inputs
            if d in case.payload_keys
        }
        ticket = yield from self._ensure_ticket()
        last_error = "no candidates"
        for attempt in range(self.retry_limit + 1):
            container: str | None = None
            try:
                candidates = yield from self._candidates_for(
                    service, activity_span
                )
                if not candidates:
                    raise ServiceError(f"no container offers service {service!r}")
                schedule = yield from self._timed_call(
                    "schedule", activity_span,
                    self.scheduler_name,
                    "schedule",
                    {
                        "service": service,
                        "candidates": candidates,
                        "work": work.get(service, 10.0),
                        # Only present when the hints knob is on — default
                        # request payloads stay byte-identical.
                        **(
                            {"criticality": 1.0}
                            if name in record.critical
                            else {}
                        ),
                    },
                )
                container = schedule["container"]
                if journal.enabled and record.case_id:
                    journal.append(
                        record.case_id, "dispatch", agent=self.name,
                        activity=name, service=service, container=container,
                        inputs=sorted(inputs), attempt=attempt,
                    )
                started = self.engine.now
                result = yield from self._timed_call(
                    "dispatch", activity_span,
                    container,
                    "execute-activity",
                    {
                        "activity": name,
                        "service": service,
                        "inputs": inputs,
                        "payload_keys": payload_keys,
                        "input_order": step.input_order,
                        "output_order": step.output_order,
                        # Checkpointable services resume from here on retry
                        # (Section 1: long-lasting tasks need checkpointing).
                        "checkpoint_key": f"ckpt/{record.task}/{name}",
                        **({"ticket": ticket} if ticket else {}),
                    },
                    policy=CallPolicy(timeout=self.activity_timeout),
                    container=container,
                )
                yield from self._report_performance(
                    service, container, self.engine.now - started, True
                )
                case.merge(result.get("outputs", {}), result.get("payload_keys", {}))
                record.activities_run += 1
                record.log(
                    self.engine.now, "activity",
                    f"{name} ({service}) on {container}",
                )
                if journal.enabled and record.case_id:
                    journal.append(
                        record.case_id, "activity-complete", agent=self.name,
                        activity=name, service=service, container=container,
                        outputs=sorted(result.get("outputs", {})),
                        payload_keys=dict(result.get("payload_keys", {})),
                        retries=attempt,
                    )
                recorder.end(
                    activity_span, container=container, retries=attempt
                )
                return
            except ServiceError as exc:
                last_error = str(exc)
                record.log(
                    self.engine.now, "retry",
                    f"{name} attempt {attempt + 1} failed: {last_error}",
                )
                if container is not None:
                    yield from self._report_performance(
                        service, container, 0.0, False
                    )
        if journal.enabled and record.case_id:
            journal.append(
                record.case_id, "activity-fail", agent=self.name,
                activity=name, service=service, reason=last_error,
            )
        recorder.end(activity_span, status="error", retries=self.retry_limit)
        raise _ActivityFailed(name, last_error)

    @staticmethod
    def _planner_activity_name(process: ProcessDescription, name: str) -> str:
        """Map a (possibly ``X_2``-renamed) graph activity back to the
        planning-problem activity name it stands for."""
        base, _, suffix = name.rpartition("_")
        if suffix.isdigit() and base:
            return base
        return name
