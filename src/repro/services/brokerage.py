"""Brokerage service: service classes, resource classes, performance DB.

"Brokerage services maintain information about classes of services offered
by the environment, as well as past performance data bases.  Though the
brokerage services make a best effort to maintain accurate information
regarding the state of resources, such information may be obsolete."
(Section 2) — staleness is modelled explicitly: container advertisements
are snapshots; only the monitoring service has ground truth.

"Brokers must maintain full information about resources with similar
characteristics and group them in multiple equivalence classes based upon
different sets of properties." (Section 1) — the broker keeps a resource
knowledge base (Figure-12 Resource/Hardware frames) and answers
``equivalence-classes`` queries over arbitrary slot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.grid.node import GridNode
from repro.ontology import RESOURCE, KnowledgeBase, builtin_shell, equivalence_classes
from repro.services.base import CoreService
from repro.sim.stats import Tally

__all__ = ["ContainerAd", "BrokerageService"]


@dataclass
class ContainerAd:
    """A (possibly stale) container advertisement."""

    container: str
    site: str
    services: list[str]
    speed: float
    advertised_at: float
    node: str = ""


@dataclass
class _Performance:
    duration: Tally = field(default_factory=Tally)
    successes: int = 0
    failures: int = 0

    @property
    def runs(self) -> int:
        return self.successes + self.failures

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 1.0


class BrokerageService(CoreService):
    service_type = "brokerage"

    def __init__(self, env: GridEnvironment, name: str | None = None, site: str = "core") -> None:
        super().__init__(env, name, site)
        self._ads: dict[str, ContainerAd] = {}
        self._by_service: dict[str, set[str]] = {}
        self._performance: dict[tuple[str, str], _Performance] = {}
        self.resource_kb: KnowledgeBase = builtin_shell("broker-resources")

    # -- direct (bootstrap) API --------------------------------------------------- #
    def advertise(self, ad: ContainerAd) -> None:
        previous = self._ads.get(ad.container)
        if previous is not None:
            for svc in previous.services:
                self._by_service.get(svc, set()).discard(ad.container)
        self._ads[ad.container] = ad
        for svc in ad.services:
            self._by_service.setdefault(svc, set()).add(ad.container)

    def advertise_node(self, node: GridNode) -> None:
        """Record a node's Resource/Hardware frames in the broker KB."""
        node.register_in(self.resource_kb)

    def containers_for(self, service: str) -> list[str]:
        return sorted(self._by_service.get(service, ()))

    def record(self, service: str, container: str, duration: float, success: bool) -> None:
        perf = self._performance.setdefault((service, container), _Performance())
        if success:
            perf.successes += 1
            perf.duration.observe(duration)
        else:
            perf.failures += 1

    def performance_of(self, service: str, container: str) -> _Performance | None:
        return self._performance.get((service, container))

    # -- message API -------------------------------------------------------------------- #
    def handle_advertise_container(self, message: Message):
        content = message.content
        self.advertise(
            ContainerAd(
                container=content["container"],
                site=content.get("site", "unknown"),
                services=list(content.get("services", ())),
                speed=float(content.get("speed", 1.0)),
                advertised_at=self.engine.now,
                node=content.get("node", ""),
            )
        )
        return {"advertised": content["container"]}

    def handle_find_containers(self, message: Message):
        """Figure-3 steps 4-5: containers that can possibly provide the
        execution of an activity's service."""
        service = message.content["service"]
        return {"service": service, "containers": self.containers_for(service)}

    def handle_record_performance(self, message: Message):
        content = message.content
        self.record(
            content["service"],
            content["container"],
            float(content.get("duration", 0.0)),
            bool(content.get("success", True)),
        )
        return {"recorded": True}

    def handle_performance(self, message: Message):
        content = message.content
        perf = self.performance_of(content["service"], content["container"])
        if perf is None:
            return {"runs": 0, "success_rate": 1.0, "mean_duration": 0.0}
        return {
            "runs": perf.runs,
            "success_rate": perf.success_rate,
            "mean_duration": perf.duration.mean,
        }

    def handle_equivalence_classes(self, message: Message):
        """Group advertised resources by the values at the given slot paths
        (e.g. ``["Hardware/Speed", "Administration Domain"]``)."""
        key_paths = list(message.content.get("key_paths", ()))
        groups = equivalence_classes(
            self.resource_kb,
            self.resource_kb.instances_of(RESOURCE),
            key_paths,
        )
        return {
            "classes": [
                {"key": list(key), "resources": sorted(i.get("Name") for i in members)}
                for key, members in sorted(
                    groups.items(), key=lambda kv: repr(kv[0])
                )
            ]
        }

    def handle_container_info(self, message: Message):
        ad = self._ads.get(message.content["container"])
        if ad is None:
            return {"known": False}
        return {
            "known": True,
            "container": ad.container,
            "site": ad.site,
            "services": list(ad.services),
            "speed": ad.speed,
            "advertised_at": ad.advertised_at,
            "node": ad.node,
        }
