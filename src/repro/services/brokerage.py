"""Brokerage service: service classes, resource classes, performance DB.

"Brokerage services maintain information about classes of services offered
by the environment, as well as past performance data bases.  Though the
brokerage services make a best effort to maintain accurate information
regarding the state of resources, such information may be obsolete."
(Section 2) — staleness is modelled explicitly: container advertisements
are snapshots; only the monitoring service has ground truth.

"Brokers must maintain full information about resources with similar
characteristics and group them in multiple equivalence classes based upon
different sets of properties." (Section 1) — the broker keeps a resource
knowledge base (Figure-12 Resource/Hardware frames) and answers
``equivalence-classes`` queries over arbitrary slot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message, Performative
from repro.grid.node import GridNode
from repro.ontology import RESOURCE, KnowledgeBase, builtin_shell, equivalence_classes
from repro.services.base import CoreService
from repro.sim.stats import Tally

__all__ = ["ContainerAd", "BrokerageService"]


@dataclass
class ContainerAd:
    """A (possibly stale) container advertisement."""

    container: str
    site: str
    services: list[str]
    speed: float
    advertised_at: float
    node: str = ""


@dataclass
class _Performance:
    duration: Tally = field(default_factory=Tally)
    successes: int = 0
    failures: int = 0

    @property
    def runs(self) -> int:
        return self.successes + self.failures

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 1.0


class BrokerageService(CoreService):
    service_type = "brokerage"

    def __init__(self, env: GridEnvironment, name: str | None = None, site: str = "core") -> None:
        super().__init__(env, name, site)
        self._ads: dict[str, ContainerAd] = {}
        self._by_service: dict[str, set[str]] = {}
        self._performance: dict[tuple[str, str], _Performance] = {}
        self.resource_kb: KnowledgeBase = builtin_shell("broker-resources")
        #: Bumped on every container (de)registration; caches key on it.
        self.registry_version = 0
        #: Agents that asked to be INFORMed of registry changes (e.g. the
        #: matchmaker's candidate cache).  Opt-in only: with no subscribers
        #: the broker's message traffic is exactly as before.
        self._subscribers: set[str] = set()
        #: service -> sorted container list, rebuilt lazily per version.
        self._service_lists: dict[str, list[str]] = {}
        #: key_paths -> (kb version, reply classes) for equivalence queries.
        self._eqc_cache: dict[tuple[str, ...], tuple[int, list[dict]]] = {}
        #: Same-tick push log: (engine time, container -> services already
        #: announced to the current subscriber set).  A container that
        #: registers several services in one tick (e.g. a partitioned
        #: advertisement split per service) used to push one
        #: ``registry-changed`` per registration to every subscriber;
        #: redundant pushes are now deduped (see :meth:`_registry_changed`).
        self._push_log: tuple[float, dict[str, set[str]]] | None = None

    # -- direct (bootstrap) API --------------------------------------------------- #
    def advertise(self, ad: ContainerAd) -> None:
        previous = self._ads.get(ad.container)
        affected = set(ad.services)
        if previous is not None:
            affected.update(previous.services)
            for svc in previous.services:
                self._by_service.get(svc, set()).discard(ad.container)
        self._ads[ad.container] = ad
        for svc in ad.services:
            self._by_service.setdefault(svc, set()).add(ad.container)
        self._registry_changed(ad.container, affected)

    def withdraw(self, container: str) -> bool:
        """Deregister a container's advertisement (returns False when it
        was not advertised)."""
        ad = self._ads.pop(container, None)
        if ad is None:
            return False
        for svc in ad.services:
            self._by_service.get(svc, set()).discard(container)
        self._registry_changed(container, set(ad.services))
        return True

    def subscribe_registry(self, agent: str) -> None:
        """INFORM *agent* (action ``registry-changed``) after every
        container (de)registration — cache-invalidation push."""
        self._subscribers.add(agent)
        # A new subscriber has seen none of this tick's pushes, so the
        # dedupe log no longer describes the full audience.
        self._push_log = None

    def _registry_changed(
        self, container: str | None = None, services: set[str] | None = None
    ) -> None:
        self.registry_version += 1
        self._service_lists.clear()
        if not self._subscribers:
            return
        if container is not None:
            # Dedupe redundant same-tick fan-out: when one container
            # registers several services in a single tick, only the first
            # push (and pushes naming not-yet-announced services) go out.
            # An identical repeat push would be a strict no-op for every
            # subscriber — both land at the same simulated time and
            # invalidation is idempotent — but each one used to cost a
            # delivery per subscriber and polluted the invalidation
            # metrics.
            now = self.engine.now
            log = self._push_log
            if log is None or log[0] != now:
                self._push_log = log = (now, {})
            announced = log[1].get(container)
            wanted = set(services or ())
            if announced is not None and not (wanted - announced):
                self.metrics.inc("registry_push_deduped", agent=self.name)
                return
            log[1][container] = (announced or set()) | wanted
        # The push names the affected container and services so subscribers
        # can invalidate only the matching cache entries (a mid-run service
        # deployment used to flush every cached fact in the deployment's
        # blast radius, re-missing dozens of unrelated keys).
        content: dict = {"version": self.registry_version}
        if container is not None:
            content["container"] = container
            content["services"] = sorted(services or ())
        # One pre-batched delivery list: the push fan-out rides a single
        # engine event instead of one per subscriber (ordering unchanged).
        self.env.router.route_many(
            [
                Message(
                    sender=self.name,
                    receiver=subscriber,
                    performative=Performative.INFORM,
                    action="registry-changed",
                    content=dict(content),
                    size=100.0,
                )
                for subscriber in sorted(self._subscribers)
            ],
            cause=self._current_cause,
        )

    def advertise_node(self, node: GridNode) -> None:
        """Record a node's Resource/Hardware frames in the broker KB."""
        node.register_in(self.resource_kb)

    def containers_for(self, service: str) -> list[str]:
        cached = self._service_lists.get(service)
        if cached is None:
            cached = self._service_lists[service] = sorted(
                self._by_service.get(service, ())
            )
        return list(cached)

    def record(self, service: str, container: str, duration: float, success: bool) -> None:
        perf = self._performance.setdefault((service, container), _Performance())
        if success:
            perf.successes += 1
            perf.duration.observe(duration)
        else:
            perf.failures += 1

    def performance_of(self, service: str, container: str) -> _Performance | None:
        return self._performance.get((service, container))

    # -- message API -------------------------------------------------------------------- #
    def handle_advertise_container(self, message: Message):
        content = message.content
        self.advertise(
            ContainerAd(
                container=content["container"],
                site=content.get("site", "unknown"),
                services=list(content.get("services", ())),
                speed=float(content.get("speed", 1.0)),
                advertised_at=self.engine.now,
                node=content.get("node", ""),
            )
        )
        return {"advertised": content["container"]}

    def handle_find_containers(self, message: Message):
        """Figure-3 steps 4-5: containers that can possibly provide the
        execution of an activity's service."""
        service = message.content["service"]
        return {"service": service, "containers": self.containers_for(service)}

    def handle_record_performance(self, message: Message):
        content = message.content
        self.record(
            content["service"],
            content["container"],
            float(content.get("duration", 0.0)),
            bool(content.get("success", True)),
        )
        return {"recorded": True}

    def on_unhandled(self, message: Message) -> None:
        # One-way performance reports (the coordinator's async_reports
        # fast path): same bookkeeping as the RPC handler, processed
        # inline in the serve loop, no reply.
        if message.action == "record-performance":
            content = message.content
            self.record(
                content["service"],
                content["container"],
                float(content.get("duration", 0.0)),
                bool(content.get("success", True)),
            )
            return
        super().on_unhandled(message)

    def handle_performance(self, message: Message):
        content = message.content
        perf = self.performance_of(content["service"], content["container"])
        if perf is None:
            return {"runs": 0, "success_rate": 1.0, "mean_duration": 0.0}
        return {
            "runs": perf.runs,
            "success_rate": perf.success_rate,
            "mean_duration": perf.duration.mean,
        }

    def handle_equivalence_classes(self, message: Message):
        """Group advertised resources by the values at the given slot paths
        (e.g. ``["Hardware/Speed", "Administration Domain"]``).

        Results are cached per key-path tuple and invalidated by the
        resource KB's version counter (any instance add/retract/mutation
        recomputes on the next request)."""
        key_paths = list(message.content.get("key_paths", ()))
        cache_key = tuple(key_paths)
        version = self.resource_kb.version
        entry = self._eqc_cache.get(cache_key)
        if entry is not None and entry[0] == version:
            self.metrics.inc("eqc_cache_hit", agent=self.name)
            classes = entry[1]
        else:
            self.metrics.inc("eqc_cache_miss", agent=self.name)
            groups = equivalence_classes(
                self.resource_kb,
                self.resource_kb.instances_of(RESOURCE),
                key_paths,
            )
            classes = [
                {"key": list(key), "resources": sorted(i.get("Name") for i in members)}
                for key, members in sorted(
                    groups.items(), key=lambda kv: repr(kv[0])
                )
            ]
            self._eqc_cache[cache_key] = (version, classes)
        # Fresh outer/inner containers so callers can mutate their reply.
        return {
            "classes": [
                {"key": list(c["key"]), "resources": list(c["resources"])}
                for c in classes
            ]
        }

    def handle_withdraw_container(self, message: Message):
        return {"withdrawn": self.withdraw(message.content["container"])}

    def handle_subscribe_registry(self, message: Message):
        subscriber = message.content.get("subscriber", message.sender)
        self.subscribe_registry(subscriber)
        return {"subscribed": subscriber, "version": self.registry_version}

    def handle_container_info(self, message: Message):
        ad = self._ads.get(message.content["container"])
        if ad is None:
            return {"known": False}
        return {
            "known": True,
            "container": ad.container,
            "site": ad.site,
            "services": list(ad.services),
            "speed": ad.speed,
            "advertised_at": ad.advertised_at,
            "node": ad.node,
        }
