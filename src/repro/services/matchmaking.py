"""Matchmaking service: locate resources in the spot market.

"Matchmaking services allow individual users represented by their proxies
(coordination services) to locate resources in a spot market, subject to a
wide range of conditions."  A match request names the end-user service and
optional constraints (minimum speed, preferred site, liveness); the
matchmaker combines the broker's (possibly stale) advertisements with the
monitor's live status and returns ranked candidates.
"""

from __future__ import annotations

from repro.bus.policy import DEFAULT_POLICY, CallPolicy
from repro.grid.messages import Message
from repro.services.base import CoreService, WELL_KNOWN

__all__ = ["MatchmakingService"]


class MatchmakingService(CoreService):
    service_type = "matchmaking"

    broker_name = WELL_KNOWN["brokerage"]
    monitor_name = WELL_KNOWN["monitoring"]

    #: Envelope for broker/monitor lookups.  Core services are "persistent
    #: and reliable" (Section 2), so the default single-attempt, no-timeout
    #: policy applies; deployments with flakier cores override this.
    lookup_policy: CallPolicy = DEFAULT_POLICY

    def handle_match(self, message: Message):
        """Rank containers able to run a service under the given conditions.

        Content: ``service`` (required); optional ``min_speed``, ``site``,
        ``require_alive`` (default True), ``max_candidates``.
        Reply: ``candidates`` — list of dicts ordered best-first by
        (live load, -speed).
        """
        content = message.content
        service = content["service"]
        min_speed = float(content.get("min_speed", 0.0))
        wanted_site = content.get("site")
        require_alive = bool(content.get("require_alive", True))
        max_candidates = int(content.get("max_candidates", 8))

        found = yield from self.call(
            self.broker_name,
            "find-containers",
            {"service": service},
            policy=self.lookup_policy,
        )
        candidates = []
        for container in found["containers"]:
            status = yield from self.call(
                self.monitor_name,
                "status",
                {"agent": container},
                policy=self.lookup_policy,
            )
            if require_alive and not (
                status.get("alive") and status.get("node_up", True)
            ):
                continue
            speed = float(status.get("speed", 1.0))
            if speed < min_speed:
                continue
            if wanted_site is not None and status.get("site") != wanted_site:
                continue
            load = (
                status.get("slots_in_use", 0) + status.get("slots_queued", 0)
            ) / max(1, status.get("slots", 1))
            candidates.append(
                {
                    "container": container,
                    "site": status.get("site", "unknown"),
                    "speed": speed,
                    "load": load,
                }
            )
        candidates.sort(key=lambda c: (c["load"], -c["speed"], c["container"]))
        return {"service": service, "candidates": candidates[:max_candidates]}
