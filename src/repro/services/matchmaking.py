"""Matchmaking service: locate resources in the spot market.

"Matchmaking services allow individual users represented by their proxies
(coordination services) to locate resources in a spot market, subject to a
wide range of conditions."  A match request names the end-user service and
optional constraints (minimum speed, preferred site, liveness); the
matchmaker combines the broker's (possibly stale) advertisements with the
monitor's live status and returns ranked candidates.
"""

from __future__ import annotations

from typing import Any

from repro.bus.policy import DEFAULT_POLICY, CallPolicy
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.services.base import CoreService, WELL_KNOWN

__all__ = ["MatchmakingService"]


class MatchmakingService(CoreService):
    service_type = "matchmaking"

    broker_name = WELL_KNOWN["brokerage"]
    monitor_name = WELL_KNOWN["monitoring"]

    #: Envelope for broker/monitor lookups.  Core services are "persistent
    #: and reliable" (Section 2), so the default single-attempt, no-timeout
    #: policy applies; deployments with flakier cores override this.
    lookup_policy: CallPolicy = DEFAULT_POLICY

    #: Candidate-set cache TTL in simulated seconds.  0 (the default)
    #: disables caching entirely, keeping the broker/monitor message
    #: streams — and therefore every recorded trace — exactly as before.
    #: Throughput deployments set a TTL and subscribe the matchmaker to the
    #: broker's ``registry-changed`` push so (de)registrations invalidate
    #: cached candidate sets immediately.
    candidate_cache_ttl: float = 0.0

    def __init__(
        self, env: GridEnvironment, name: str | None = None, site: str = "core"
    ) -> None:
        super().__init__(env, name, site)
        #: constraint tuple -> (expires_at, ranked candidate dicts).
        self._candidate_cache: dict[tuple, tuple[float, list[dict[str, Any]]]] = {}

    def enable_candidate_cache(self, ttl: float, broker: Any | None = None) -> None:
        """Turn on candidate caching with the given TTL; when *broker* (a
        BrokerageService) is given, also subscribe to its registry pushes."""
        self.candidate_cache_ttl = ttl
        if broker is not None:
            broker.subscribe_registry(self.name)

    def invalidate_candidates(self, services: list[str] | None = None) -> None:
        """Drop cached candidate sets — all of them, or (when the broker's
        push names the affected *services*) only the entries for those
        services, whose provider lists actually changed."""
        if services is None:
            self._candidate_cache.clear()
            return
        affected = set(services)
        cache = self._candidate_cache
        for key in [k for k in cache if k[0] in affected]:
            del cache[key]

    def on_unhandled(self, message: Message) -> None:
        # The broker's cache-invalidation push (no reply expected).
        if message.action == "registry-changed":
            self.invalidate_candidates(message.content.get("services"))
            return
        super().on_unhandled(message)

    def handle_match(self, message: Message):
        """Rank containers able to run a service under the given conditions.

        Content: ``service`` (required); optional ``min_speed``, ``site``,
        ``require_alive`` (default True), ``max_candidates``.
        Reply: ``candidates`` — list of dicts ordered best-first by
        (live load, -speed).
        """
        content = message.content
        service = content["service"]
        min_speed = float(content.get("min_speed", 0.0))
        wanted_site = content.get("site")
        require_alive = bool(content.get("require_alive", True))
        max_candidates = int(content.get("max_candidates", 8))

        ttl = self.candidate_cache_ttl
        cache_key = (service, min_speed, wanted_site, require_alive, max_candidates)
        if ttl > 0.0:
            entry = self._candidate_cache.get(cache_key)
            if entry is not None and self.engine.now < entry[0]:
                self.metrics.inc("match_cache_hit", agent=self.name, action=service)
                return {
                    "service": service,
                    "candidates": [dict(c) for c in entry[1]],
                }

            def fill():
                self.metrics.inc(
                    "match_cache_miss", agent=self.name, action=service
                )
                ranked = yield from self._rank_candidates(
                    service, min_speed, wanted_site, require_alive,
                    max_candidates,
                )
                self._candidate_cache[cache_key] = (
                    self.engine.now + ttl,
                    [dict(c) for c in ranked],
                )
                return ranked

            # Concurrent cold misses on one constraint tuple collapse into
            # a single broker+monitor sweep (the fan-out's first activities
            # all match at the same instant).
            ranked = yield from self.coalesced(
                cache_key, fill, "match_cache_join"
            )
            return {
                "service": service,
                "candidates": [dict(c) for c in ranked],
            }

        ranked = yield from self._rank_candidates(
            service, min_speed, wanted_site, require_alive, max_candidates
        )
        return {"service": service, "candidates": ranked}

    def _rank_candidates(
        self, service, min_speed, wanted_site, require_alive, max_candidates
    ):
        """The actual broker + monitor sweep behind a match (generator)."""
        found = yield from self.call(
            self.broker_name,
            "find-containers",
            {"service": service},
            policy=self.lookup_policy,
        )
        candidates = []
        for container in found["containers"]:
            status = yield from self.call(
                self.monitor_name,
                "status",
                {"agent": container},
                policy=self.lookup_policy,
            )
            if require_alive and not (
                status.get("alive") and status.get("node_up", True)
            ):
                continue
            speed = float(status.get("speed", 1.0))
            if speed < min_speed:
                continue
            if wanted_site is not None and status.get("site") != wanted_site:
                continue
            load = (
                status.get("slots_in_use", 0) + status.get("slots_queued", 0)
            ) / max(1, status.get("slots", 1))
            candidates.append(
                {
                    "container": container,
                    "site": status.get("site", "unknown"),
                    "speed": speed,
                    "load": load,
                }
            )
        candidates.sort(key=lambda c: (c["load"], -c["speed"], c["container"]))
        return candidates[:max_candidates]
