"""Simulation service.

"Simulation services are necessary to study the scalability of the system
and they are also useful for end-users to simulate an experiment before
actually conducting it."  Both uses are provided:

* ``simulate-plan`` — run the planner's symbolic execution of a plan tree
  against a planning problem and report predicted validity/goal fitness
  (what an end-user checks before submitting a case);
* ``estimate-makespan`` — a coarse what-if of wall-clock time for a plan,
  given per-service work and a fleet speed (scalability studies).
"""

from __future__ import annotations

from repro.grid.messages import Message
from repro.plan.tree import Controller, ControllerKind, PlanNode, Terminal
from repro.planner.problem import PlanningProblem
from repro.planner.simulate import SimulationOptions, simulate_plan
from repro.services.base import CoreService

__all__ = ["SimulationService"]


class SimulationService(CoreService):
    service_type = "simulation"

    def handle_simulate_plan(self, message: Message):
        """Symbolically execute a plan; content: ``plan`` (PlanNode),
        ``problem`` (PlanningProblem), optional ``options``."""
        plan: PlanNode = message.content["plan"]
        problem: PlanningProblem = message.content["problem"]
        options = message.content.get("options") or SimulationOptions()
        report = simulate_plan(plan, problem, options)
        return {
            "validity": report.validity_fitness(),
            "goal": report.goal_fitness(problem),
            "flows": len(report.flows),
            "truncated": report.truncated,
        }

    def handle_estimate_makespan(self, message: Message):
        """Critical-path estimate of a plan's wall-clock time.

        Content: ``plan`` (PlanNode), ``work`` (service name -> work
        units; default 10 each), ``speed`` (fleet speed, default 1.0),
        ``iterations`` (assumed loop count, default 2).  Concurrent nodes
        contribute their longest child (perfect parallelism), sequential
        and iterative nodes sum, selective nodes contribute their *worst*
        child (conservative).
        """
        plan: PlanNode = message.content["plan"]
        work: dict[str, float] = dict(message.content.get("work", {}))
        speed = float(message.content.get("speed", 1.0))
        iterations = int(message.content.get("iterations", 2))
        makespan = _critical_path(plan, work, iterations) / speed
        return {"makespan": makespan}


def _critical_path(node: PlanNode, work: dict[str, float], iterations: int) -> float:
    if isinstance(node, Terminal):
        return work.get(node.activity, 10.0)
    assert isinstance(node, Controller)
    child_costs = [_critical_path(c, work, iterations) for c in node.children]
    if node.kind is ControllerKind.CONCURRENT:
        return max(child_costs)
    if node.kind is ControllerKind.SELECTIVE:
        return max(child_costs)
    total = sum(child_costs)
    if node.kind is ControllerKind.ITERATIVE:
        return total * iterations
    return total
