"""Monitoring service: ground-truth status of agents and nodes.

"Accurate information about the status of a resource may be obtained using
monitoring services" — in contrast to the broker's possibly-stale
advertisements, the monitor inspects the live environment at query time.
"""

from __future__ import annotations

from repro.grid.container import ApplicationContainer
from repro.grid.messages import Message
from repro.services.base import CoreService

__all__ = ["MonitoringService"]


class MonitoringService(CoreService):
    service_type = "monitoring"

    def handle_status(self, message: Message):
        """Live status of an agent (and its node, for containers)."""
        name = message.content["agent"]
        if not self.env.has_agent(name):
            return {"known": False, "alive": False}
        agent = self.env.agent(name)
        status = {
            "known": True,
            "alive": agent.alive,
            "site": agent.site,
            "queued_messages": len(agent.mailbox),
        }
        if isinstance(agent, ApplicationContainer):
            node = agent.node
            status.update(
                node=node.name,
                node_up=node.up,
                slots=node.slots.capacity,
                slots_in_use=node.slots.in_use,
                slots_queued=node.slots.queued,
                speed=node.hardware.speed,
                cost_rate=node.cost_rate,
            )
        return status

    def handle_node_status(self, message: Message):
        name = message.content["node"]
        if name not in self.env.node_names:
            return {"known": False}
        node = self.env.node(name)
        return {
            "known": True,
            "up": node.up,
            "site": node.site,
            "slots": node.slots.capacity,
            "slots_in_use": node.slots.in_use,
            "utilization": node.slots.utilization(),
            "speed": node.hardware.speed,
        }

    def handle_census(self, message: Message):
        """Environment-wide summary (agents, nodes, messages)."""
        return {
            "agents": len(self.env.agent_names),
            "nodes": len(self.env.node_names),
            "messages_delivered": len(self.env.trace.records),
            "messages_dropped": len(self.env.dropped),
            "time": self.engine.now,
        }
