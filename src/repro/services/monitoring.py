"""Monitoring service: ground-truth status of agents, nodes and the bus.

"Accurate information about the status of a resource may be obtained using
monitoring services" — in contrast to the broker's possibly-stale
advertisements, the monitor inspects the live environment at query time.

Beyond per-agent/per-node status it exposes the message fabric's
observability plane over plain RPC:

* ``metrics`` — a dump of the environment's
  :class:`~repro.bus.metrics.MetricsRegistry` (counters + latency
  histograms), filterable by agent or metric name;
* ``trace`` — the router's bounded delivery trace (exact totals survive
  eviction);
* ``trace-tree`` — a causal call tree reconstructed from
  ``trace_id``/``parent_id`` links, rendered and structured.
"""

from __future__ import annotations

from repro.bus.tracing import TraceEvent, format_tree
from repro.errors import ObservabilityError, ServiceError
from repro.grid.container import ApplicationContainer
from repro.grid.messages import Message
from repro.obs.journal import JOURNAL_KEY_PREFIX, decode_events, journal_storage_key
from repro.obs.profile import case_profile
from repro.obs.provenance import ProvenanceGraph
from repro.obs.spans import WatchRule
from repro.services.base import CoreService

__all__ = ["MonitoringService"]


def _event_dict(event: TraceEvent) -> dict:
    m = event.message
    return {
        "time": event.time,
        "sender": m.sender,
        "receiver": m.receiver,
        "performative": m.performative.value,
        "action": m.action,
        "conversation": m.conversation,
        "message_id": m.message_id,
        "trace_id": m.trace_id,
        "parent_id": m.parent_id,
    }


class MonitoringService(CoreService):
    service_type = "monitoring"

    def handle_status(self, message: Message):
        """Live status of an agent (and its node, for containers)."""
        name = message.content["agent"]
        if not self.env.has_agent(name):
            return {"known": False, "alive": False}
        agent = self.env.agent(name)
        status = {
            "known": True,
            "alive": agent.alive,
            "site": agent.site,
            "queued_messages": len(agent.mailbox),
        }
        if isinstance(agent, ApplicationContainer):
            node = agent.node
            status.update(
                node=node.name,
                node_up=node.up,
                slots=node.slots.capacity,
                slots_in_use=node.slots.in_use,
                slots_queued=node.slots.queued,
                speed=node.hardware.speed,
                cost_rate=node.cost_rate,
            )
        # Health as seen by the metrics registry: message and error
        # counts summed across actions for this agent.
        metrics = self.env.metrics
        status["metrics"] = {
            "messages_sent": metrics.total("messages_sent", agent=name),
            "messages_delivered": metrics.total("messages_delivered", agent=name),
            "messages_dropped": metrics.total("messages_dropped", agent=name),
            "requests_handled": metrics.total("requests_handled", agent=name),
            "rpc_errors": metrics.total("rpc_error", agent=name)
            + metrics.total("rpc_timeout", agent=name),
        }
        return status

    def handle_node_status(self, message: Message):
        name = message.content["node"]
        if name not in self.env.node_names:
            return {"known": False}
        node = self.env.node(name)
        return {
            "known": True,
            "up": node.up,
            "site": node.site,
            "slots": node.slots.capacity,
            "slots_in_use": node.slots.in_use,
            "utilization": node.slots.utilization(),
            "speed": node.hardware.speed,
        }

    def handle_census(self, message: Message):
        """Environment-wide summary (agents, nodes, messages).

        Message counts come from the trace's exact accounting (and the
        metrics registry), so they stay correct even after the bounded
        trace starts evicting old events.
        """
        return {
            "agents": len(self.env.agent_names),
            "nodes": len(self.env.node_names),
            "messages_sent": int(self.env.metrics.total("messages_sent")),
            "messages_delivered": self.env.trace.total_recorded,
            "messages_dropped": len(self.env.dropped),
            "time": self.engine.now,
        }

    # -- bus observability ------------------------------------------------- #
    def handle_metrics(self, message: Message):
        """Dump the environment's metrics registry.

        Content (all optional): ``agent`` and ``name`` filter the dump to
        one agent / one metric family.  Reply: ``counters`` (name ->
        "agent|action" -> value) and ``histograms`` (name -> "agent|action"
        -> count/sum/mean/min/max/p50/p99).
        """
        content = message.content
        return self.env.metrics.dump(
            agent=content.get("agent"), name=content.get("name")
        )

    def handle_trace(self, message: Message):
        """Query the router's bounded delivery trace.

        Content (optional): ``trace_id``, ``conversation``, ``limit``.
        Reply: serialized events plus the exact totals (``total_recorded``,
        ``evicted``) and the distinct ``trace_ids`` seen.
        """
        content = message.content
        trace = self.env.trace
        events = trace.events(
            trace_id=content.get("trace_id"),
            conversation=content.get("conversation"),
        )
        limit = content.get("limit")
        if limit is not None:
            events = events[-int(limit):]
        return {
            "total_recorded": trace.total_recorded,
            "resident": len(trace),
            "evicted": trace.evicted,
            "trace_ids": trace.trace_ids(),
            "events": [_event_dict(e) for e in events],
        }

    def handle_trace_tree(self, message: Message):
        """Reconstruct one trace's causal call tree.

        Content: ``trace_id``.  Reply: a ``rendered`` indented transcript,
        the flattened ``nodes`` in walk order (each with its depth), and
        size/depth summaries.
        """
        trace_id = message.content["trace_id"]
        roots = self.env.trace.tree(trace_id)
        nodes = []
        for root in roots:
            for depth, event in root.walk():
                nodes.append({"depth": depth, **_event_dict(event)})
        return {
            "trace_id": trace_id,
            "roots": len(roots),
            "size": sum(root.size for root in roots),
            "depth": max((root.depth for root in roots), default=0),
            "rendered": format_tree(roots),
            "nodes": nodes,
        }

    # -- span telemetry (the workflow observability plane) ------------------ #
    def handle_spans(self, message: Message):
        """Query the environment's span recorder.

        Content (all optional): ``trace_id``, ``kind``, ``name`` filter
        the closed spans; ``limit`` keeps the newest N.  Reply:
        serialized spans plus exact accounting (``total_started``,
        ``total_closed``, ``evicted``, ``open``) and the recorder's
        enablement — callers can tell "no spans" from "recording off".
        """
        content = message.content
        recorder = self.env.spans
        spans = recorder.spans(
            trace_id=content.get("trace_id"),
            kind=content.get("kind"),
            name=content.get("name"),
        )
        limit = content.get("limit")
        if limit is not None:
            spans = spans[-int(limit):]
        return {
            "enabled": recorder.enabled,
            "total_started": recorder.total_started,
            "total_closed": recorder.total_closed,
            "evicted": recorder.evicted,
            "open": len(recorder.open_spans()),
            "kinds": recorder.kinds(),
            "spans": [span.as_dict() for span in spans],
        }

    def handle_case_profile(self, message: Message):
        """Per-case time attribution (the ``repro profile`` table).

        Content: ``case`` (root span name) or ``trace_id``.  Reply: the
        :func:`repro.obs.profile.case_profile` dict — per-kind rows with
        count/total/mean/p50/p99/max/share, per-activity totals, and the
        coverage fraction of the case window.
        """
        content = message.content
        try:
            return case_profile(
                self.env.spans,
                case=content.get("case"),
                trace_id=content.get("trace_id"),
            )
        except ObservabilityError as exc:
            raise ServiceError(str(exc)) from exc

    def handle_add_watch(self, message: Message):
        """Install a threshold watch rule, evaluated on every span close.

        Content: ``name``, ``field`` (``"duration"`` or an attribute),
        ``bound``, optional ``op`` (default ``">"``) and ``kind`` filter.
        """
        content = message.content
        try:
            rule = WatchRule(
                name=content["name"],
                field=content.get("field", "duration"),
                bound=float(content["bound"]),
                op=content.get("op", ">"),
                kind=content.get("kind"),
            )
            self.env.spans.add_rule(rule)
        except ObservabilityError as exc:
            raise ServiceError(str(exc)) from exc
        return {"installed": rule.name, "rules": len(self.env.spans.rules)}

    def handle_watches(self, message: Message):
        return {
            "rules": [
                {
                    "name": rule.name,
                    "field": rule.field,
                    "op": rule.op,
                    "bound": rule.bound,
                    "kind": rule.kind,
                }
                for rule in self.env.spans.rules
            ]
        }

    def handle_alerts(self, message: Message):
        """Alerts fired by watch rules (newest last; bounded ring)."""
        content = message.content
        alerts = list(self.env.spans.alerts)
        rule = content.get("rule")
        if rule is not None:
            alerts = [a for a in alerts if a.rule == rule]
        limit = content.get("limit")
        if limit is not None:
            alerts = alerts[-int(limit):]
        return {
            "total_alerts": self.env.spans.total_alerts,
            "alerts": [
                {
                    "time": a.time,
                    "rule": a.rule,
                    "span_id": a.span_id,
                    "span_name": a.span_name,
                    "kind": a.kind,
                    "agent": a.agent,
                    "trace_id": a.trace_id,
                    "value": a.value,
                }
                for a in alerts
            ],
        }

    def handle_gauges(self, message: Message):
        """Summaries of the attached sim-time gauge sampler's series."""
        sampler = self.env.gauges
        if sampler is None:
            return {"attached": False, "series": {}}
        return {"attached": True, "series": sampler.summary()}

    # -- case journal / provenance ------------------------------------------- #
    def _journal_case_events(self, case_id: str):
        """Resident journal events for *case_id*, lazily synced from the
        storage mirror when the recorder no longer holds them (shards and
        replicas share one store, so a case enacted — or evicted —
        elsewhere is materialized on first query).  Generator."""
        journal = self.env.journal
        if journal.has_case(case_id):
            return journal.events(case_id)
        try:
            reply = yield from self.call(
                self.env.storage_name,
                "retrieve",
                {"key": journal_storage_key(case_id)},
            )
        except ServiceError:
            return []
        try:
            stored_case, events = decode_events(reply["payload"])
        except ObservabilityError:
            return []
        journal.absorb(stored_case, events)
        return journal.events(stored_case)

    def handle_journal(self, message: Message):
        """Query the case flight recorder.

        Content (optional): ``case`` — return that case's ordered event
        timeline (lazily synced from the storage mirror if not resident);
        ``limit`` keeps the newest N events.  The reply always carries
        the journal's enablement and exact accounting, so callers can
        tell "no events" from "recording off".
        """
        journal = self.env.journal
        content = message.content
        reply = {
            "enabled": journal.enabled,
            "stats": journal.stats(),
            "cases": list(journal.case_ids()),
        }
        case_id = content.get("case")
        if case_id is not None:
            events = yield from self._journal_case_events(case_id)
            limit = content.get("limit")
            if limit is not None:
                events = events[-int(limit):]
            reply["case"] = case_id
            reply["events"] = [event.as_dict() for event in events]
        return reply

    def handle_provenance(self, message: Message):
        """A case's full provenance graph (activity runs, data artifacts,
        edges) derived from its journal, plus the raw timeline."""
        journal = self.env.journal
        case_id = message.content["case"]
        events = yield from self._journal_case_events(case_id)
        graph = ProvenanceGraph.from_events(case_id, events)
        return {
            "enabled": journal.enabled,
            "case": case_id,
            "events": len(events),
            **graph.to_json(),
        }

    def handle_lineage(self, message: Message):
        """Lineage (backward closure) of a data artifact, or — with
        ``direction: "descendants"`` — the forward closure of an
        activity run.

        Content: ``key`` (artifact/activity id, bare name, or payload
        storage key), optional ``case`` to scope the search and trigger
        lazy mirror sync, optional ``direction``.
        """
        journal = self.env.journal
        content = message.content
        key = content["key"]
        case_id = content.get("case")
        graph = ProvenanceGraph()
        if case_id is not None:
            events = yield from self._journal_case_events(case_id)
            graph.add_events(case_id, events)
        else:
            graph = ProvenanceGraph.from_journal(journal)
        try:
            if content.get("direction") == "descendants":
                result = graph.descendants(key, case_id)
            else:
                result = graph.lineage(key, case_id)
        except ObservabilityError as exc:
            raise ServiceError(str(exc)) from exc
        return {"enabled": journal.enabled, "key": key, **result}

    def handle_journal_purge(self, message: Message):
        """Retention RPC: drop resident journal cases and delete their
        storage-mirrored blobs; exact purge counters in the reply."""
        journal = self.env.journal
        reply = yield from self.call(
            self.env.storage_name, "list-keys", {"prefix": JOURNAL_KEY_PREFIX}
        )
        storage_deleted = 0
        for key in reply["keys"]:
            outcome = yield from self.call(
                self.env.storage_name, "delete", {"key": key}
            )
            if outcome.get("deleted"):
                storage_deleted += 1
        cases, events = journal.purge()
        return {
            "purged_cases": cases,
            "purged_events": events,
            "storage_deleted": storage_deleted,
            "stats": journal.stats(),
        }
