"""Monitoring service: ground-truth status of agents, nodes and the bus.

"Accurate information about the status of a resource may be obtained using
monitoring services" — in contrast to the broker's possibly-stale
advertisements, the monitor inspects the live environment at query time.

Beyond per-agent/per-node status it exposes the message fabric's
observability plane over plain RPC:

* ``metrics`` — a dump of the environment's
  :class:`~repro.bus.metrics.MetricsRegistry` (counters + latency
  histograms), filterable by agent or metric name;
* ``trace`` — the router's bounded delivery trace (exact totals survive
  eviction);
* ``trace-tree`` — a causal call tree reconstructed from
  ``trace_id``/``parent_id`` links, rendered and structured.
"""

from __future__ import annotations

from repro.bus.tracing import TraceEvent, format_tree
from repro.grid.container import ApplicationContainer
from repro.grid.messages import Message
from repro.services.base import CoreService

__all__ = ["MonitoringService"]


def _event_dict(event: TraceEvent) -> dict:
    m = event.message
    return {
        "time": event.time,
        "sender": m.sender,
        "receiver": m.receiver,
        "performative": m.performative.value,
        "action": m.action,
        "conversation": m.conversation,
        "message_id": m.message_id,
        "trace_id": m.trace_id,
        "parent_id": m.parent_id,
    }


class MonitoringService(CoreService):
    service_type = "monitoring"

    def handle_status(self, message: Message):
        """Live status of an agent (and its node, for containers)."""
        name = message.content["agent"]
        if not self.env.has_agent(name):
            return {"known": False, "alive": False}
        agent = self.env.agent(name)
        status = {
            "known": True,
            "alive": agent.alive,
            "site": agent.site,
            "queued_messages": len(agent.mailbox),
        }
        if isinstance(agent, ApplicationContainer):
            node = agent.node
            status.update(
                node=node.name,
                node_up=node.up,
                slots=node.slots.capacity,
                slots_in_use=node.slots.in_use,
                slots_queued=node.slots.queued,
                speed=node.hardware.speed,
                cost_rate=node.cost_rate,
            )
        return status

    def handle_node_status(self, message: Message):
        name = message.content["node"]
        if name not in self.env.node_names:
            return {"known": False}
        node = self.env.node(name)
        return {
            "known": True,
            "up": node.up,
            "site": node.site,
            "slots": node.slots.capacity,
            "slots_in_use": node.slots.in_use,
            "utilization": node.slots.utilization(),
            "speed": node.hardware.speed,
        }

    def handle_census(self, message: Message):
        """Environment-wide summary (agents, nodes, messages).

        Message counts come from the trace's exact accounting (and the
        metrics registry), so they stay correct even after the bounded
        trace starts evicting old events.
        """
        return {
            "agents": len(self.env.agent_names),
            "nodes": len(self.env.node_names),
            "messages_sent": int(self.env.metrics.total("messages_sent")),
            "messages_delivered": self.env.trace.total_recorded,
            "messages_dropped": len(self.env.dropped),
            "time": self.engine.now,
        }

    # -- bus observability ------------------------------------------------- #
    def handle_metrics(self, message: Message):
        """Dump the environment's metrics registry.

        Content (all optional): ``agent`` and ``name`` filter the dump to
        one agent / one metric family.  Reply: ``counters`` (name ->
        "agent|action" -> value) and ``histograms`` (name -> "agent|action"
        -> count/sum/mean/min/max/p50/p99).
        """
        content = message.content
        return self.env.metrics.dump(
            agent=content.get("agent"), name=content.get("name")
        )

    def handle_trace(self, message: Message):
        """Query the router's bounded delivery trace.

        Content (optional): ``trace_id``, ``conversation``, ``limit``.
        Reply: serialized events plus the exact totals (``total_recorded``,
        ``evicted``) and the distinct ``trace_ids`` seen.
        """
        content = message.content
        trace = self.env.trace
        events = trace.events(
            trace_id=content.get("trace_id"),
            conversation=content.get("conversation"),
        )
        limit = content.get("limit")
        if limit is not None:
            events = events[-int(limit):]
        return {
            "total_recorded": trace.total_recorded,
            "resident": len(trace),
            "evicted": trace.evicted,
            "trace_ids": trace.trace_ids(),
            "events": [_event_dict(e) for e in events],
        }

    def handle_trace_tree(self, message: Message):
        """Reconstruct one trace's causal call tree.

        Content: ``trace_id``.  Reply: a ``rendered`` indented transcript,
        the flattened ``nodes`` in walk order (each with its depth), and
        size/depth summaries.
        """
        trace_id = message.content["trace_id"]
        roots = self.env.trace.tree(trace_id)
        nodes = []
        for root in roots:
            for depth, event in root.walk():
                nodes.append({"depth": depth, **_event_dict(event)})
        return {
            "trace_id": trace_id,
            "roots": len(roots),
            "size": sum(root.size for root in roots),
            "depth": max((root.depth for root in roots), default=0),
            "rendered": format_tree(roots),
            "nodes": nodes,
        }
