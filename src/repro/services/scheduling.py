"""Scheduling service.

"Scheduling services provide optimal schedules for sites offering to host
application containers for different end-user services."  Given a service
and candidate containers, the scheduler estimates each candidate's
completion time — live queue wait (from monitoring) plus compute time
(work / node speed), weighted by the broker's historical success rate —
and picks the minimum.
"""

from __future__ import annotations

from repro.bus.policy import DEFAULT_POLICY, CallPolicy
from repro.errors import SchedulingError, ServiceError
from repro.grid.messages import Message
from repro.services.base import CoreService, WELL_KNOWN

__all__ = ["SchedulingService"]


class SchedulingService(CoreService):
    service_type = "scheduling"

    broker_name = WELL_KNOWN["brokerage"]
    monitor_name = WELL_KNOWN["monitoring"]

    #: Envelope for the per-candidate fact-gathering RPCs (monitor status,
    #: broker performance).  Default single-attempt, no-timeout — core
    #: services are reliable; override for flaky-core experiments.
    lookup_policy: CallPolicy = DEFAULT_POLICY

    #: Penalty factor applied per observed failure fraction: a container at
    #: 50% success rate looks twice as slow as its raw estimate.
    reliability_weight = 1.0

    #: Candidate-fact cache TTL in simulated seconds.  0 (the default)
    #: disables caching, keeping the monitor/broker message streams — and
    #: therefore every recorded trace — exactly as before.  Throughput
    #: deployments set a TTL (see :meth:`enable_fact_cache`): the
    #: per-candidate status/performance lookups, by far the densest RPC
    #: traffic in enactment, are then amortized across schedule requests.
    #: Staleness is bounded by the TTL and partially compensated by the
    #: scheduler's own pending-assignment tracking, which keeps spreading
    #: load even against frozen occupancy facts.
    fact_cache_ttl: float = 0.0

    def __init__(self, env, name=None, site="core"):
        super().__init__(env, name, site)
        #: Pending assignments per container: expiry times of work we have
        #: scheduled but that monitoring may not see yet.  Concurrent
        #: requests (e.g. the three fork branches of Figure 10) would
        #: otherwise all observe zero load and herd onto one container —
        #: the Section-2 staleness problem in miniature.
        self._pending: dict[str, list[float]] = {}
        #: ("status", container) / ("perf", service, container) ->
        #: (expires_at, reply dict).
        self._fact_cache: dict[tuple, tuple[float, dict]] = {}

    def enable_fact_cache(self, ttl: float, broker=None) -> None:
        """Turn on candidate-fact caching with the given TTL; when
        *broker* (a BrokerageService) is given, also subscribe to its
        ``registry-changed`` push so (de)registrations flush stale facts."""
        self.fact_cache_ttl = ttl
        if broker is not None:
            broker.subscribe_registry(self.name)

    def invalidate_facts(self, container: str | None = None) -> None:
        """Drop cached facts — all of them, or (when the broker's push
        names the affected *container*) only that container's status and
        performance entries.  Monitor status and broker performance for
        *other* containers are untouched by a (de)registration, so the
        selective path keeps the dominant cached-fact population warm
        across mid-run service deployments."""
        if container is None:
            self._fact_cache.clear()
            return
        cache = self._fact_cache
        for key in [k for k in cache if k[-1] == container]:
            del cache[key]

    def on_unhandled(self, message: Message) -> None:
        # The broker's cache-invalidation push (no reply expected).
        if message.action == "registry-changed":
            self.invalidate_facts(message.content.get("container"))
            return
        super().on_unhandled(message)

    def _cached_call(self, key: tuple, to: str, action: str, content: dict):
        """One fact-gathering RPC through the TTL cache (generator).

        Cached replies are returned by reference, not copied — the
        scheduling facts path only reads them.  (The hot hit path is
        checked inline in :meth:`_schedule`; this method handles the miss
        and the first fill.)  Concurrent misses on one key coalesce into a
        single RPC via :meth:`~repro.services.base.CoreService.coalesced`
        — without it, the N cases of a fan-out all cold-miss the same
        facts at the same instant.
        """
        ttl = self.fact_cache_ttl
        if ttl <= 0.0:
            reply = yield from self.call(
                to, action, content, policy=self.lookup_policy
            )
            return reply
        entry = self._fact_cache.get(key)
        if entry is not None and self.engine.now < entry[0]:
            self.metrics.inc("sched_fact_cache_hit", agent=self.name)
            return entry[1]

        def fill():
            self.metrics.inc("sched_fact_cache_miss", agent=self.name)
            reply = yield from self.call(
                to, action, content, policy=self.lookup_policy
            )
            self._fact_cache[key] = (self.engine.now + ttl, reply)
            return reply

        reply = yield from self.coalesced(key, fill, "sched_fact_cache_join")
        return reply

    def _pending_load(self, container: str) -> int:
        entries = self._pending.get(container)
        if not entries:
            return 0
        now = self.engine.now
        entries[:] = [expiry for expiry in entries if expiry > now]
        return len(entries)

    def handle_schedule(self, message: Message):
        """Pick the best container for a service invocation.

        Content: ``service``, ``candidates`` (names), ``work`` (units,
        default 10); optional ``deadline`` (seconds from now — the
        Section-1 soft deadline: candidates whose estimate exceeds it are
        infeasible) and ``objective`` (``"time"``, the default, or
        ``"cost"``: cheapest deadline-feasible candidate, using each
        node's cost rate).  Reply: ``container``, ``estimate`` (seconds),
        ``cost``, ``alternatives`` (ranked remainder).
        """
        content = message.content
        recorder = self.env.spans
        span = (
            recorder.start(
                content.get("service", ""), "schedule-eval",
                agent=self.name, trace_id=message.trace_id,
                candidates=len(content.get("candidates", ())),
                **({"shard": self.shard} if self.shard else {}),
            )
            if recorder.enabled
            else None
        )
        try:
            reply = yield from self._schedule(content)
        except ServiceError:
            recorder.end(span, status="error")
            raise
        recorder.end(
            span, container=reply["container"], estimate=reply["estimate"]
        )
        return reply

    def _schedule(self, content: dict):
        service = content["service"]
        candidates = list(content.get("candidates", ()))
        work = float(content.get("work", 10.0))
        deadline = content.get("deadline")
        objective = content.get("objective", "time")
        # Critical-path hint from the coordinator's concurrency analysis:
        # a positive criticality inflates queueing-wait in the ranking key
        # so critical activities land on lightly loaded containers.  The
        # reply's estimate/cost stay the plain values — the hint reorders
        # preferences, it does not re-price anything.
        criticality = float(content.get("criticality", 0.0))
        if objective not in ("time", "cost"):
            raise ServiceError(f"unknown scheduling objective {objective!r}")
        if not candidates:
            raise ServiceError(f"no candidates to schedule service {service!r}")

        # Gather per-candidate facts first (each gather yields to other
        # agents, so concurrent schedule requests interleave here)...
        # Fact-cache hits are resolved inline: no generator frame and no
        # RPC machinery for the (dominant, once warmed) cached path.  The
        # clock is re-read per check because a miss's RPC advances it.
        ttl = self.fact_cache_ttl
        cache = self._fact_cache
        metrics = self.metrics
        count_hits = metrics.enabled
        facts: list[dict] = []
        for container in candidates:
            key = ("status", container)
            entry = cache.get(key) if ttl > 0.0 else None
            if entry is not None and self.engine.now < entry[0]:
                if count_hits:
                    metrics.inc("sched_fact_cache_hit", agent=self.name)
                status = entry[1]
            else:
                status = yield from self._cached_call(
                    key,
                    self.monitor_name,
                    "status",
                    {"agent": container},
                )
            if not status.get("known") or not status.get("alive"):
                continue
            key = ("perf", service, container)
            entry = cache.get(key) if ttl > 0.0 else None
            if entry is not None and self.engine.now < entry[0]:
                if count_hits:
                    metrics.inc("sched_fact_cache_hit", agent=self.name)
                perf = entry[1]
            else:
                perf = yield from self._cached_call(
                    key,
                    self.broker_name,
                    "performance",
                    {"service": service, "container": container},
                )
            reliability = float(perf.get("success_rate", 1.0))
            facts.append(
                {
                    "container": container,
                    "speed": float(status.get("speed", 1.0)),
                    "slots": max(1, int(status.get("slots", 1))),
                    "occupancy": int(status.get("slots_in_use", 0))
                    + int(status.get("slots_queued", 0)),
                    "penalty": 1.0
                    + self.reliability_weight * (1.0 - reliability),
                    "cost_rate": float(status.get("cost_rate", 1.0)),
                }
            )

        # ...then decide in one synchronous step, so this request sees every
        # pending assignment made by concurrently-processed requests (the
        # Figure-10 fork issues three schedule calls at the same instant;
        # deciding against stale data would herd them all onto one node).
        scored: list[tuple[float, float, float, str]] = []  # key, est, cost
        feasible_existed = False
        for fact in facts:
            compute = work / fact["speed"]
            ahead = fact["occupancy"] + self._pending_load(fact["container"])
            wait = (ahead / fact["slots"]) * compute
            estimate = fact["penalty"] * (wait + compute)
            cost = estimate * fact["cost_rate"]
            if deadline is not None and estimate > float(deadline):
                continue
            feasible_existed = True
            if objective == "cost":
                key = cost
            elif criticality > 0.0:
                key = fact["penalty"] * (wait * (1.0 + criticality) + compute)
            else:
                key = estimate
            scored.append((key, estimate, cost, fact["container"]))

        if not scored:
            if deadline is not None and not feasible_existed:
                raise ServiceError(
                    f"no candidate can run service {service!r} within the "
                    f"{deadline}s deadline"
                )
            raise ServiceError(
                f"no live candidate can run service {service!r}"
            )
        scored.sort()
        _, best_estimate, best_cost, best = scored[0]
        self._pending.setdefault(best, []).append(
            self.engine.now + best_estimate
        )
        return {
            "service": service,
            "container": best,
            "estimate": best_estimate,
            "cost": best_cost,
            "alternatives": [name for _, _, _, name in scored[1:]],
        }

    # -- advance reservations (Section 1) ------------------------------------- #
    def handle_quote_reservation(self, message: Message):
        """Price a reservation without booking it.

        Content: ``container``, ``duration``.  Reply: ``supported``,
        ``cost`` (the Section-1 "prohibitive cost" is the ledger's
        premium over the node's base rate).
        """
        node = yield from self._reservable_node(message.content["container"])
        if node is None:
            return {"supported": False}
        duration = float(message.content["duration"])
        return {"supported": True, "cost": node.reservations.quote(duration)}

    def handle_reserve(self, message: Message):
        """Book one slot: ``container``, ``start`` (absolute simulated
        time), ``duration``; reply carries the token and the cost."""
        content = message.content
        recorder = self.env.spans
        span = (
            recorder.start(
                content.get("container", ""), "reserve",
                agent=self.name, trace_id=message.trace_id,
            )
            if recorder.enabled
            else None
        )
        try:
            node = yield from self._reservable_node(content["container"])
        except ServiceError:
            recorder.end(span, status="error")
            raise
        if node is None:
            recorder.end(span, status="error")
            raise ServiceError(
                f"container {content['container']!r} does not support "
                f"advance reservations"
            )
        try:
            reservation = node.reservations.book(
                holder=message.sender,
                start=float(content["start"]),
                duration=float(content["duration"]),
            )
        except SchedulingError as exc:
            recorder.end(span, status="error")
            raise ServiceError(str(exc)) from exc
        recorder.end(span, cost=reservation.cost, start=reservation.start)
        return {
            "token": reservation.token,
            "start": reservation.start,
            "end": reservation.end,
            "cost": reservation.cost,
        }

    def handle_cancel_reservation(self, message: Message):
        content = message.content
        node = yield from self._reservable_node(content["container"])
        if node is None:
            return {"cancelled": False}
        return {"cancelled": node.reservations.cancel(content["token"])}

    def _reservable_node(self, container_name: str):
        """The container's node if it supports reservations, else None.

        (Generator for symmetry with the other handlers; resolves through
        the live environment, which is the scheduler's ground truth.)
        """
        if not self.env.has_agent(container_name):
            raise ServiceError(f"unknown container {container_name!r}")
        agent = self.env.agent(container_name)
        node = getattr(agent, "node", None)
        if node is None or node.reservations is None:
            return None
        return node
        yield  # pragma: no cover - make this a generator
