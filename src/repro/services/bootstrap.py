"""Environment bootstrap: bring up the Figure-1 architecture in one call.

:func:`build_core_services` attaches the eleven core services to an
environment; :func:`standard_environment` additionally creates nodes and
application containers hosting the given end-user services and advertises
them to the information and brokerage services — everything the paper's
Figure 1 shows, ready for a coordination request.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.grid.container import ApplicationContainer, EndUserService
from repro.grid.environment import GridEnvironment
from repro.grid.node import HardwareProfile
from repro.planner.config import GPConfig
from repro.services.authentication import AuthenticationService
from repro.services.brokerage import BrokerageService
from repro.services.coordination import CoordinationService
from repro.services.information import InformationService
from repro.services.matchmaking import MatchmakingService
from repro.services.monitoring import MonitoringService
from repro.services.ontology_service import OntologyService
from repro.services.planning import PlanningService
from repro.services.scheduling import SchedulingService
from repro.services.simulation_service import SimulationService
from repro.services.storage import PersistentStorageService
from repro.sim.failures import BernoulliFailures

__all__ = ["CoreServices", "build_core_services", "standard_environment"]


@dataclass
class CoreServices:
    """Handles to the attached core services."""

    information: InformationService
    brokerage: BrokerageService
    matchmaking: MatchmakingService
    monitoring: MonitoringService
    ontology: OntologyService
    storage: PersistentStorageService
    authentication: AuthenticationService
    scheduling: SchedulingService
    simulation: SimulationService
    planning: PlanningService
    coordination: CoordinationService

    def all(self) -> tuple:
        return (
            self.information,
            self.brokerage,
            self.matchmaking,
            self.monitoring,
            self.ontology,
            self.storage,
            self.authentication,
            self.scheduling,
            self.simulation,
            self.planning,
            self.coordination,
        )


def build_core_services(
    env: GridEnvironment,
    site: str = "core",
    planner_config: GPConfig | None = None,
    planner_seed: int = 0,
    coordination_credentials: tuple[str, str] | None = None,
) -> CoreServices:
    """Attach all eleven core services to *env* (information first — the
    others register their offerings with it)."""
    information = InformationService(env, site=site)
    services = CoreServices(
        information=information,
        brokerage=BrokerageService(env, site=site),
        matchmaking=MatchmakingService(env, site=site),
        monitoring=MonitoringService(env, site=site),
        ontology=OntologyService(env, site=site),
        storage=PersistentStorageService(env, site=site),
        authentication=AuthenticationService(env, site=site),
        scheduling=SchedulingService(env, site=site),
        simulation=SimulationService(env, site=site),
        planning=PlanningService(
            env, site=site, config=planner_config, rng=planner_seed
        ),
        coordination=CoordinationService(
            env, site=site, credentials=coordination_credentials
        ),
    )
    env.core_services = services  # type: ignore[attr-defined]
    return services


@dataclass
class _ContainerSpec:
    name: str
    site: str
    services: Sequence[EndUserService]
    speed: float = 1.0
    slots: int = 4


def standard_environment(
    end_user_services: Sequence[EndUserService],
    containers: int = 3,
    sites: Sequence[str] = ("siteA", "siteB", "siteC"),
    speeds: Sequence[float] = (1.0, 2.0, 4.0),
    cost_rates: Sequence[float] = (1.0, 2.5, 6.0),
    slots: int = 4,
    reservable: bool = False,
    secure: bool = False,
    failure_probability: float = 0.0,
    failure_seed: int = 7,
    planner_config: GPConfig | None = None,
    planner_seed: int = 0,
    tracing: bool = True,
    spans: bool = False,
    batched: bool = True,
    coalesce: bool = False,
) -> tuple[GridEnvironment, CoreServices, list[ApplicationContainer]]:
    """One-call Figure-1 grid: core services + *containers* application
    containers (each on its own node, cycling through *sites*/*speeds*,
    all hosting every end-user service), fully advertised.

    With ``failure_probability > 0`` every container invocation can fail,
    which is what the re-planning experiments dial up.  ``tracing=False``
    selects the router fast path (no per-delivery TraceEvents) for
    throughput runs; id streams are unaffected.  ``spans=True`` turns on
    the workflow span recorder (see :mod:`repro.obs.spans`).
    ``batched=False`` opts out of the engine's same-tick batch dispatch
    (the legacy heap kernel, kept for the trace-identity gate);
    ``coalesce=True`` opts in to direct same-tick signal resumption
    (deterministic, different intra-tick interleaving — throughput runs).
    """
    env = GridEnvironment(
        tracing=tracing, spans=spans, batched=batched, coalesce=coalesce
    )
    credentials = ("coordination", "grid-secret") if secure else None
    services = build_core_services(
        env,
        planner_config=planner_config,
        planner_seed=planner_seed,
        coordination_credentials=credentials,
    )
    if secure:
        services.authentication.add_principal(*credentials)
    failures = (
        BernoulliFailures(failure_probability, rng=failure_seed)
        if failure_probability > 0
        else None
    )
    fleet: list[ApplicationContainer] = []
    for idx in range(containers):
        site = sites[idx % len(sites)]
        speed = speeds[idx % len(speeds)]
        node = env.add_node(
            f"node{idx + 1}",
            site,
            HardwareProfile(speed=speed),
            slots=slots,
            domain=site,
            cost_rate=cost_rates[idx % len(cost_rates)],
        )
        if reservable:
            node.enable_reservations()
        container = ApplicationContainer(
            env,
            f"ac{idx + 1}",
            node,
            services={svc.name: svc for svc in end_user_services},
            failures=failures,
            require_auth=secure,
        )
        fleet.append(container)
        services.brokerage.advertise_node(node)
        from repro.services.brokerage import ContainerAd

        services.brokerage.advertise(
            ContainerAd(
                container=container.name,
                site=site,
                services=[svc.name for svc in end_user_services],
                speed=speed,
                advertised_at=0.0,
                node=node.name,
            )
        )
        services.information.register_offering(
            container.name, "application-container", site, container.name
        )
        for svc in end_user_services:
            services.information.register_offering(
                f"{svc.name}@{container.name}", "end-user", site, container.name
            )
    return env, services, fleet
