"""Environment bootstrap: bring up the Figure-1 architecture in one call.

:func:`build_core_services` attaches the eleven core services to an
environment; :func:`standard_environment` additionally creates nodes and
application containers hosting the given end-user services and advertises
them to the information and brokerage services — everything the paper's
Figure 1 shows, ready for a coordination request.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.grid.container import ApplicationContainer, EndUserService
from repro.grid.environment import GridEnvironment
from repro.grid.node import HardwareProfile
from repro.grid.sharding import ShardRing, ShardRouter
from repro.ontology.frames import KnowledgeBase
from repro.planner.config import GPConfig
from repro.planner.library import PlanLibrary
from repro.services.authentication import AuthenticationService
from repro.services.base import WELL_KNOWN
from repro.services.brokerage import BrokerageService
from repro.services.coordination import CoordinationService
from repro.services.information import InformationService
from repro.services.matchmaking import MatchmakingService
from repro.services.monitoring import MonitoringService
from repro.services.ontology_service import OntologyService
from repro.services.planning import PlanningService
from repro.services.scheduling import SchedulingService
from repro.services.sharded import PartitionedBrokerageService
from repro.services.simulation_service import SimulationService
from repro.services.storage import PersistentStorageService
from repro.sim.failures import BernoulliFailures

__all__ = [
    "CoreServices",
    "ShardGroup",
    "ShardedGridEnvironment",
    "build_core_services",
    "sharded_environment",
    "standard_environment",
]


@dataclass
class CoreServices:
    """Handles to the attached core services."""

    information: InformationService
    brokerage: BrokerageService
    matchmaking: MatchmakingService
    monitoring: MonitoringService
    ontology: OntologyService
    storage: PersistentStorageService
    authentication: AuthenticationService
    scheduling: SchedulingService
    simulation: SimulationService
    planning: PlanningService
    coordination: CoordinationService

    def all(self) -> tuple:
        return (
            self.information,
            self.brokerage,
            self.matchmaking,
            self.monitoring,
            self.ontology,
            self.storage,
            self.authentication,
            self.scheduling,
            self.simulation,
            self.planning,
            self.coordination,
        )


def build_core_services(
    env: GridEnvironment,
    site: str = "core",
    planner_config: GPConfig | None = None,
    planner_seed: int = 0,
    coordination_credentials: tuple[str, str] | None = None,
    plan_library: PlanLibrary | None = None,
    knowledge_base: KnowledgeBase | None = None,
) -> CoreServices:
    """Attach all eleven core services to *env* (information first — the
    others register their offerings with it).

    *plan_library* hands the planning service a warm-start plan repository
    (persisted through the storage service); *knowledge_base* is the
    registry view it re-verifies retrieved plans against — and the
    coordination intake gate's resolvability context.  Both default to
    None, which leaves planning byte-identical to a library-less grid.
    """
    information = InformationService(env, site=site)
    services = CoreServices(
        information=information,
        brokerage=BrokerageService(env, site=site),
        matchmaking=MatchmakingService(env, site=site),
        monitoring=MonitoringService(env, site=site),
        ontology=OntologyService(env, site=site),
        storage=PersistentStorageService(env, site=site),
        authentication=AuthenticationService(env, site=site),
        scheduling=SchedulingService(env, site=site),
        simulation=SimulationService(env, site=site),
        planning=PlanningService(
            env,
            site=site,
            config=planner_config,
            rng=planner_seed,
            library=plan_library,
            knowledge_base=knowledge_base,
        ),
        coordination=CoordinationService(
            env, site=site, credentials=coordination_credentials
        ),
    )
    if knowledge_base is not None:
        services.coordination.knowledge_base = knowledge_base
    env.core_services = services  # type: ignore[attr-defined]
    return services


@dataclass
class _ContainerSpec:
    name: str
    site: str
    services: Sequence[EndUserService]
    speed: float = 1.0
    slots: int = 4


def standard_environment(
    end_user_services: Sequence[EndUserService],
    containers: int = 3,
    sites: Sequence[str] = ("siteA", "siteB", "siteC"),
    speeds: Sequence[float] = (1.0, 2.0, 4.0),
    cost_rates: Sequence[float] = (1.0, 2.5, 6.0),
    slots: int = 4,
    reservable: bool = False,
    secure: bool = False,
    failure_probability: float = 0.0,
    failure_seed: int = 7,
    planner_config: GPConfig | None = None,
    planner_seed: int = 0,
    tracing: bool = True,
    spans: bool = False,
    journal: bool | str = False,
    batched: bool = True,
    coalesce: bool = False,
    plan_library: PlanLibrary | None = None,
    knowledge_base: KnowledgeBase | None = None,
) -> tuple[GridEnvironment, CoreServices, list[ApplicationContainer]]:
    """One-call Figure-1 grid: core services + *containers* application
    containers (each on its own node, cycling through *sites*/*speeds*,
    all hosting every end-user service), fully advertised.

    With ``failure_probability > 0`` every container invocation can fail,
    which is what the re-planning experiments dial up.  ``tracing=False``
    selects the router fast path (no per-delivery TraceEvents) for
    throughput runs; id streams are unaffected.  ``spans=True`` turns on
    the workflow span recorder (see :mod:`repro.obs.spans`).
    ``batched=False`` opts out of the engine's same-tick batch dispatch
    (the legacy heap kernel, kept for the trace-identity gate);
    ``coalesce=True`` opts in to direct same-tick signal resumption
    (deterministic, different intra-tick interleaving — throughput runs).
    """
    env = GridEnvironment(
        tracing=tracing, spans=spans, journal=journal, batched=batched, coalesce=coalesce
    )
    credentials = ("coordination", "grid-secret") if secure else None
    services = build_core_services(
        env,
        planner_config=planner_config,
        planner_seed=planner_seed,
        coordination_credentials=credentials,
        plan_library=plan_library,
        knowledge_base=knowledge_base,
    )
    if secure:
        services.authentication.add_principal(*credentials)
    failures = (
        BernoulliFailures(failure_probability, rng=failure_seed)
        if failure_probability > 0
        else None
    )
    fleet: list[ApplicationContainer] = []
    for idx in range(containers):
        site = sites[idx % len(sites)]
        speed = speeds[idx % len(speeds)]
        node = env.add_node(
            f"node{idx + 1}",
            site,
            HardwareProfile(speed=speed),
            slots=slots,
            domain=site,
            cost_rate=cost_rates[idx % len(cost_rates)],
        )
        if reservable:
            node.enable_reservations()
        container = ApplicationContainer(
            env,
            f"ac{idx + 1}",
            node,
            services={svc.name: svc for svc in end_user_services},
            failures=failures,
            require_auth=secure,
        )
        fleet.append(container)
        services.brokerage.advertise_node(node)
        from repro.services.brokerage import ContainerAd

        services.brokerage.advertise(
            ContainerAd(
                container=container.name,
                site=site,
                services=[svc.name for svc in end_user_services],
                speed=speed,
                advertised_at=0.0,
                node=node.name,
            )
        )
        services.information.register_offering(
            container.name, "application-container", site, container.name
        )
        for svc in end_user_services:
            services.information.register_offering(
                f"{svc.name}@{container.name}", "end-user", site, container.name
            )
    return env, services, fleet


# -- sharded multi-coordinator grid ----------------------------------------- #
@dataclass
class ShardGroup:
    """One coordination/scheduling shard: the per-case service replicas.

    Each group carries its own coordinator, scheduler, matchmaker, broker
    partition and ontology replica, wired to each other by concrete agent
    names (the coordinator's ``matchmaker_name`` etc. point inside the
    group), so a case routed to this shard runs its whole enactment loop
    without crossing shards — except for registry lookups the group's
    broker partition does not own, which scatter (see
    :class:`~repro.services.sharded.PartitionedBrokerageService`).
    """

    shard: str
    brokerage: PartitionedBrokerageService
    matchmaking: MatchmakingService
    scheduling: SchedulingService
    coordination: CoordinationService
    ontology: OntologyService


@dataclass
class ShardedGridEnvironment:
    """A grid whose per-case core services are replicated across shards.

    ``services`` is the familiar :class:`CoreServices` view — the shared
    singletons (information, monitoring, storage, authentication,
    simulation, planning, the ontology *primary*) plus shard group 0's
    replicas for the sharded types; at ``shards=1`` it is exactly the
    unsharded service set.  ``router`` is the consistent-hash resolver
    installed on the bus; ``ring`` its membership.
    """

    env: GridEnvironment
    services: CoreServices
    groups: list[ShardGroup]
    ring: ShardRing
    router: ShardRouter
    fleet: list[ApplicationContainer]

    @property
    def shards(self) -> tuple[str, ...]:
        return self.ring.shards

    def group_for(self, case_id: str) -> ShardGroup:
        """The shard group that owns *case_id* on the ring."""
        owner = self.ring.owner(str(case_id))
        for group in self.groups:
            if group.shard == owner:
                return group
        raise KeyError(owner)  # pragma: no cover - ring and groups agree

    def coordinator_for(self, case_id: str) -> str:
        """Agent name of the coordination replica owning *case_id*."""
        return self.group_for(case_id).coordination.name


def _shard_name(base: str, label: str, shards: int) -> str:
    """Agent name for *base* on shard *label* — unsuffixed at ``shards=1``
    so the single-shard grid is byte-identical to the unsharded one."""
    return base if shards == 1 else f"{base}@{label}"


def sharded_environment(
    end_user_services: Sequence[EndUserService],
    shards: int = 1,
    shard_labels: Sequence[str] | None = None,
    containers: int = 3,
    sites: Sequence[str] = ("siteA", "siteB", "siteC"),
    speeds: Sequence[float] = (1.0, 2.0, 4.0),
    cost_rates: Sequence[float] = (1.0, 2.5, 6.0),
    slots: int = 4,
    reservable: bool = False,
    secure: bool = False,
    failure_probability: float = 0.0,
    failure_seed: int = 7,
    planner_config: GPConfig | None = None,
    planner_seed: int = 0,
    tracing: bool = True,
    spans: bool = False,
    journal: bool | str = False,
    batched: bool = True,
    coalesce: bool = False,
    plan_library: PlanLibrary | None = None,
    knowledge_base: KnowledgeBase | None = None,
) -> ShardedGridEnvironment:
    """Figure-1 grid with *shards* replicated coordination/scheduling
    groups behind one bus.

    The singleton services of :func:`standard_environment` stay shared
    (information, monitoring, storage, authentication, simulation,
    planning, and the ontology *primary*); coordination, scheduling,
    matchmaking and brokerage are replicated per shard.  Case traffic
    addressed to the logical ``coordination`` name is rewritten at the
    bus to the owning shard's coordinator by consistent hash of the case
    id; the end-user service registry is partitioned across the broker
    replicas by service name on the same ring, with cross-shard scatter
    on a local miss.  Ontology replicas follow the primary through its
    versioned delta stream and catch up over ``ontology-sync`` on join.

    With ``shards=1`` every replica keeps its well-known unsharded name,
    the ring rewrite is the identity, and the message stream — and
    therefore every recorded protocol trace — is byte-identical to
    :func:`standard_environment`.
    """
    if shards < 1:
        raise ValueError("sharded_environment needs at least one shard")
    labels = (
        list(shard_labels)
        if shard_labels is not None
        else [f"s{index}" for index in range(shards)]
    )
    if len(labels) != shards or len(set(labels)) != shards:
        raise ValueError("shard_labels must give one distinct label per shard")
    ring = ShardRing(labels)

    env = GridEnvironment(
        tracing=tracing, spans=spans, journal=journal, batched=batched, coalesce=coalesce
    )
    credentials = ("coordination", "grid-secret") if secure else None

    # Construction order mirrors build_core_services exactly (information
    # first, coordination last) with each sharded type expanded in shard
    # order in place of its singleton — at shards=1 the agent sequence,
    # and with it every spawned process and id stream, is identical.
    information = InformationService(env)
    brokers = [
        PartitionedBrokerageService(
            env,
            _shard_name(WELL_KNOWN["brokerage"], label, shards),
            ring=ring if shards > 1 else None,
            shard=label if shards > 1 else None,
        )
        for label in labels
    ]
    matchmakers = [
        MatchmakingService(env, _shard_name(WELL_KNOWN["matchmaking"], label, shards))
        for label in labels
    ]
    monitoring = MonitoringService(env)
    ontology = OntologyService(env)
    storage = PersistentStorageService(env)
    authentication = AuthenticationService(env)
    schedulers = [
        SchedulingService(env, _shard_name(WELL_KNOWN["scheduling"], label, shards))
        for label in labels
    ]
    simulation = SimulationService(env)
    # Planning stays a shared singleton across shards, so one library —
    # like one broker registry — serves every shard group: a plan stored
    # by a case on shard A warm-starts the same workflow on shard B, and
    # the storage mirror makes it visible to out-of-process replicas too.
    planning = PlanningService(
        env,
        config=planner_config,
        rng=planner_seed,
        library=plan_library,
        knowledge_base=knowledge_base,
    )
    coordinators = [
        CoordinationService(
            env,
            _shard_name(WELL_KNOWN["coordination"], label, shards),
            credentials=credentials,
        )
        for label in labels
    ]
    replicas: list[OntologyService] = []
    if shards > 1:
        # Replicas join last: they subscribe to the primary's delta stream
        # and catch up on whatever it published during bootstrap.
        for label in labels:
            replica = OntologyService(
                env, f"{WELL_KNOWN['ontology']}@{label}", replica_of=ontology.name
            )
            ontology.subscribe_replica(replica.name)
            replica.start_replication()
            replicas.append(replica)

    groups: list[ShardGroup] = []
    peers = {label: broker.name for label, broker in zip(labels, brokers)}
    for index, label in enumerate(labels):
        broker = brokers[index]
        matchmaker = matchmakers[index]
        scheduler = schedulers[index]
        coordinator = coordinators[index]
        if shards > 1:
            broker.set_peers(peers)
            matchmaker.shard = label
            matchmaker.broker_name = broker.name
            scheduler.shard = label
            scheduler.broker_name = broker.name
            coordinator.shard = label
            coordinator.matchmaker_name = matchmaker.name
            coordinator.scheduler_name = scheduler.name
            coordinator.broker_name = broker.name
        groups.append(
            ShardGroup(
                shard=label,
                brokerage=broker,
                matchmaking=matchmaker,
                scheduling=scheduler,
                coordination=coordinator,
                ontology=replicas[index] if shards > 1 else ontology,
            )
        )

    services = CoreServices(
        information=information,
        brokerage=brokers[0],
        matchmaking=matchmakers[0],
        monitoring=monitoring,
        ontology=ontology,
        storage=storage,
        authentication=authentication,
        scheduling=schedulers[0],
        simulation=simulation,
        planning=planning,
        coordination=coordinators[0],
    )
    env.core_services = services  # type: ignore[attr-defined]
    if knowledge_base is not None:
        for coordinator in coordinators:
            coordinator.knowledge_base = knowledge_base
    if secure:
        authentication.add_principal(*credentials)

    # The bus-level routing seam: logical case traffic goes to the owning
    # coordinator (keyed on the case/task id), logical registry traffic to
    # the owning broker/matchmaker partition (keyed on the service name).
    shard_router = ShardRouter(
        ring,
        targets={
            WELL_KNOWN["coordination"]: {
                label: coord.name
                for label, coord in zip(labels, coordinators)
            },
            WELL_KNOWN["brokerage"]: dict(peers),
            WELL_KNOWN["matchmaking"]: {
                label: matchmaker.name
                for label, matchmaker in zip(labels, matchmakers)
            },
        },
        keys={
            WELL_KNOWN["brokerage"]: ("service",),
            WELL_KNOWN["matchmaking"]: ("service",),
        },
    )
    env.router.sharding = shard_router

    failures = (
        BernoulliFailures(failure_probability, rng=failure_seed)
        if failure_probability > 0
        else None
    )
    from repro.services.brokerage import ContainerAd

    fleet: list[ApplicationContainer] = []
    for idx in range(containers):
        site = sites[idx % len(sites)]
        speed = speeds[idx % len(speeds)]
        node = env.add_node(
            f"node{idx + 1}",
            site,
            HardwareProfile(speed=speed),
            slots=slots,
            domain=site,
            cost_rate=cost_rates[idx % len(cost_rates)],
        )
        if reservable:
            node.enable_reservations()
        container = ApplicationContainer(
            env,
            f"ac{idx + 1}",
            node,
            services={svc.name: svc for svc in end_user_services},
            failures=failures,
            require_auth=secure,
        )
        fleet.append(container)
        for label, broker in zip(labels, brokers):
            # Every partition keeps the full resource KB (nodes are few
            # and shard-agnostic); service ads land on the ring owner.
            broker.advertise_node(node)
            owned = [
                svc.name
                for svc in end_user_services
                if shards == 1 or ring.owner(svc.name) == label
            ]
            if owned:
                broker.advertise(
                    ContainerAd(
                        container=container.name,
                        site=site,
                        services=owned,
                        speed=speed,
                        advertised_at=0.0,
                        node=node.name,
                    )
                )
        information.register_offering(
            container.name, "application-container", site, container.name
        )
        for svc in end_user_services:
            information.register_offering(
                f"{svc.name}@{container.name}", "end-user", site, container.name
            )
    return ShardedGridEnvironment(
        env=env,
        services=services,
        groups=groups,
        ring=ring,
        router=shard_router,
        fleet=fleet,
    )
