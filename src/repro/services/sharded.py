"""Partitioned registry services for the sharded grid.

Each shard group (see :func:`repro.services.bootstrap.sharded_environment`)
owns the key-range of the end-user service registry that the grid's
:class:`~repro.grid.sharding.ShardRing` assigns to it: container
advertisements are split per service and placed on the owning partition,
so a shard's matchmaker answers the overwhelmingly common lookups — the
services its own coordinator dispatches — from its local partition without
crossing shards.

A local **miss** (the partition does not know the service, e.g. after ring
membership changed or when a coordinator dispatches a service owned
elsewhere) falls back to a cross-shard query: the ring owner's partition
is asked first, and if it comes back empty the query scatters across the
remaining partitions and merges their answers.  The hit/miss metrics
(``broker_local_hit`` / ``broker_scatter`` / ``broker_scatter_hit`` /
``broker_scatter_miss``) make the fallback rate observable per shard.

The layering follows renku-python's service architecture: thin controllers
(the message handlers) over per-partition cache gateways (the inherited
ad/performance state), with cross-partition traffic as explicit RPCs.
With a single shard there are no peers and every code path collapses to
the plain :class:`~repro.services.brokerage.BrokerageService` behaviour —
the N=1 message stream is byte-identical to the unsharded grid.
"""

from __future__ import annotations

from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.grid.sharding import ShardRing
from repro.services.brokerage import BrokerageService

__all__ = ["PartitionedBrokerageService"]


class PartitionedBrokerageService(BrokerageService):
    """A brokerage partition: one shard's slice of the service registry.

    *ring* and *shard* give the partition its identity on the consistent-
    hash ring; :meth:`set_peers` (called by the bootstrap once every
    partition exists) wires the scatter fallback.  Without peers the
    service behaves exactly like its base class.
    """

    def __init__(
        self,
        env: GridEnvironment,
        name: str | None = None,
        site: str = "core",
        ring: ShardRing | None = None,
        shard: str | None = None,
    ) -> None:
        super().__init__(env, name, site)
        self.ring = ring
        self.shard = shard
        #: shard label -> peer partition agent name (never includes self).
        self._peers: dict[str, str] = {}

    # -- partition identity ---------------------------------------------------- #
    def set_peers(self, peers: dict[str, str]) -> None:
        """Install the other partitions (shard label -> agent name)."""
        self._peers = {
            shard: agent for shard, agent in peers.items() if agent != self.name
        }

    def owns(self, service: str) -> bool:
        """Is this partition the ring owner of *service*'s key?"""
        if self.ring is None or self.shard is None:
            return True
        return self.ring.owner(service) == self.shard

    # -- message API ------------------------------------------------------------ #
    def handle_find_containers(self, message: Message):
        """Containers for a service: local partition first, cross-shard
        scatter on miss (ring owner queried before the remainder)."""
        service = message.content["service"]
        local = self.containers_for(service)
        if local or not self._peers:
            self.metrics.inc(
                "broker_local_hit" if local else "broker_local_miss",
                agent=self.name,
            )
            return {"service": service, "containers": local}
        self.metrics.inc("broker_scatter", agent=self.name, action=service)
        owner = self.ring.owner(service) if self.ring is not None else None
        ordered = sorted(
            self._peers.items(), key=lambda item: (item[0] != owner, item[0])
        )
        merged: set[str] = set()
        for shard, peer in ordered:
            reply = yield from self.call(
                peer, "find-containers-local", {"service": service}
            )
            merged.update(reply["containers"])
            if merged and shard == owner:
                # The authoritative partition answered; the rest of the
                # scatter cannot add providers it does not know about.
                break
        self.metrics.inc(
            "broker_scatter_hit" if merged else "broker_scatter_miss",
            agent=self.name,
        )
        return {"service": service, "containers": sorted(merged)}

    def handle_find_containers_local(self, message: Message):
        """Partition-local lookup — the scatter's leaf query (never
        recurses into another scatter)."""
        service = message.content["service"]
        return {"service": service, "containers": self.containers_for(service)}
