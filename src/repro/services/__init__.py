"""The Figure-1 core services (paper Section 2)."""

from repro.services.authentication import AuthenticationService, Ticket
from repro.services.base import WELL_KNOWN, CoreService
from repro.services.bootstrap import (
    CoreServices,
    ShardGroup,
    ShardedGridEnvironment,
    build_core_services,
    sharded_environment,
    standard_environment,
)
from repro.services.brokerage import BrokerageService, ContainerAd
from repro.services.coordination import CoordinationService, EnactmentRecord
from repro.services.information import InformationService, Offering
from repro.services.matchmaking import MatchmakingService
from repro.services.monitoring import MonitoringService
from repro.services.ontology_service import OntologyService
from repro.services.planning import PlanningService
from repro.services.scheduling import SchedulingService
from repro.services.sharded import PartitionedBrokerageService
from repro.services.simulation_service import SimulationService
from repro.services.storage import PersistentStorageService
from repro.services.user_interface import UserInterface

__all__ = [
    "CoreService",
    "WELL_KNOWN",
    "InformationService",
    "Offering",
    "BrokerageService",
    "ContainerAd",
    "MatchmakingService",
    "MonitoringService",
    "OntologyService",
    "PersistentStorageService",
    "AuthenticationService",
    "Ticket",
    "SchedulingService",
    "SimulationService",
    "PlanningService",
    "CoordinationService",
    "EnactmentRecord",
    "UserInterface",
    "CoreServices",
    "PartitionedBrokerageService",
    "ShardGroup",
    "ShardedGridEnvironment",
    "build_core_services",
    "sharded_environment",
    "standard_environment",
]
