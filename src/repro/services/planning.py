"""Planning service: ab-initio planning (Figure 2) and re-planning (Figure 3).

The planning service "accepts planning requests from the coordination
service", generates a valid process description with the GP planner of
Section 3.4, and returns it.  For re-planning it implements the paper's
second knowledge-acquisition method verbatim (Figure 3):

1. coordination sends the planning task and the non-executable activities;
2. planning asks the **information service** for a brokerage service;
3. information replies;
4. planning asks the **brokerage service** for application containers that
   can possibly provide each activity's execution;
5. brokerage replies;
6. planning asks each **application container** whether the activity is
   executable;
7. containers reply;
8. planning sends the new plan to coordination.

Activities with no executable container — plus those coordination already
reported failed (method one) — are removed from T before the GP runs, so
the new plan avoids them ("the planning service ... avoid[s] reusing in
the new plan those activities that prevent the previous plan from
successful execution").
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro._util import as_rng
from repro.bus.policy import CallPolicy
from repro.errors import ServiceError
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.plan.convert import tree_to_process
from repro.plan.tree import Controller, ControllerKind
from repro.planner.config import GPConfig
from repro.planner.gp import GPPlanner
from repro.planner.problem import PlanningProblem
from repro.planner.repair import repair_plan
from repro.planner.state import WorldState
from repro.process.conditions import TRUE, And, Condition, Not
from repro.process.model import Activity
from repro.services.base import CoreService, WELL_KNOWN

__all__ = ["PlanningService"]


class PlanningService(CoreService):
    service_type = "planning"

    information_name = WELL_KNOWN["information"]

    #: Reliability envelope for brokerage lookups during re-planning
    #: (replicated core service: timeout then fail over to the next).
    broker_policy = CallPolicy(timeout=30.0)
    #: Availability probes against possibly-crashed containers (Figure-3
    #: steps 6-7): silent peers must not hang the re-planning exchange.
    probe_policy = CallPolicy(timeout=60.0)

    def __init__(
        self,
        env: GridEnvironment,
        name: str | None = None,
        site: str = "core",
        config: GPConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        repair_plans: bool = True,
    ) -> None:
        super().__init__(env, name, site)
        self.config = config or GPConfig()
        self.rng = as_rng(rng)
        #: Post-process evolved plans with the never-valid-terminal repair
        #: pass (see :mod:`repro.planner.repair`) before emitting them.
        self.repair_plans = repair_plans
        self.plans_created = 0
        self.replans_created = 0

    # -- plan construction helpers ----------------------------------------------- #
    def _activity_library(self, problem: PlanningProblem) -> dict[str, Activity]:
        return {
            name: spec.as_activity() for name, spec in problem.activities.items()
        }

    def _condition_provider(self, problem: PlanningProblem):
        """Conditions for the emitted process description.

        Iterative nodes loop *until the goal holds* (re-try semantics);
        selective first branches get ``true`` (the planner has no basis to
        prefer either branch, and the coordinator takes the first branch
        whose condition holds).
        """
        goals = (
            problem.goals[0] if len(problem.goals) == 1 else And(problem.goals)
        )
        not_done = Not(goals)

        def provider(node: Controller) -> Condition:
            if node.kind is ControllerKind.ITERATIVE:
                return not_done
            return TRUE

        return provider

    def _run_planner(
        self,
        problem: PlanningProblem,
        config: GPConfig,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        # The GP run is synchronous (zero simulated time); the span records
        # it as an instant with *wall-clock* cost in its attributes — the
        # one place real time is the interesting number.
        recorder = self.env.spans
        span = (
            recorder.start(
                problem.name, "gp", agent=self.name, trace_id=trace_id
            )
            if recorder.enabled
            else None
        )
        wall_started = time.perf_counter() if span is not None else 0.0
        result = GPPlanner(config, rng=self.rng).plan(problem)
        if result.analysis_rejected:
            self.metrics.inc(
                "analysis_rejected",
                agent=self.name,
                amount=result.analysis_rejected,
            )
        plan = result.best_plan
        fitness = result.best_fitness
        repaired_away: tuple[str, ...] = ()
        if self.repair_plans:
            repaired = repair_plan(plan, problem)
            plan, fitness = repaired.plan, repaired.fitness
            repaired_away = repaired.removed
        process = tree_to_process(
            plan,
            name=f"plan-{problem.name}",
            library=self._activity_library(problem),
            condition_provider=self._condition_provider(problem),
        )
        if span is not None:
            recorder.end(
                span,
                wall_s=time.perf_counter() - wall_started,
                generations=result.generations_run,
                fitness=fitness.overall,
                solved=fitness.validity == 1.0 and fitness.goal == 1.0,
            )
        return {
            "plan": plan,
            "process": process,
            "fitness": fitness.overall,
            "validity": fitness.validity,
            "goal": fitness.goal,
            "solved": fitness.validity == 1.0 and fitness.goal == 1.0,
            "generations": result.generations_run,
            "analysis_rejected": result.analysis_rejected,
            "repaired_away": list(repaired_away),
        }

    # -- message API ----------------------------------------------------------------- #
    def handle_plan(self, message: Message):
        """Figure 2: a standard planning request.

        Content: ``problem`` (PlanningProblem); optional ``config``
        (GPConfig).  Reply: the plan tree, the elaborated process
        description and fitness telemetry.
        """
        problem: PlanningProblem = message.content["problem"]
        config: GPConfig = message.content.get("config") or self.config
        reply = self._run_planner(problem, config, trace_id=message.trace_id)
        self.plans_created += 1
        return reply

    def handle_replan(self, message: Message):
        """Figure 3: re-planning after a failed enactment.

        Content: ``problem`` (the original PlanningProblem), ``data``
        (current case data: name -> properties — "all available data,
        including the initial set ... and the data modified, or created
        during the execution"), ``failed_activities`` (names coordination
        knows are non-executable; may be empty), optional ``config``,
        optional ``probe`` (default True: run the 3-step availability
        check of Figure 3).
        """
        content = message.content
        problem: PlanningProblem = content["problem"]
        data: dict[str, dict] = dict(content.get("data") or {})
        failed: set[str] = set(content.get("failed_activities", ()))
        config: GPConfig = content.get("config") or self.config
        probe: bool = bool(content.get("probe", True))

        unexecutable = set(failed)
        recorder = self.env.spans
        if probe:
            probe_span = (
                recorder.start(
                    problem.name, "probe", agent=self.name,
                    trace_id=message.trace_id,
                )
                if recorder.enabled
                else None
            )
            # Steps 2-3: locate a brokerage service through information.
            # Several replicas may be registered; we keep them all and fail
            # over if the primary is down (core services are replicated).
            lookup = yield from self.call(
                self.information_name, "lookup", {"type": "brokerage"}
            )
            brokers = [p["provider"] for p in lookup["providers"]]
            if not brokers:
                recorder.end(probe_span, status="error")
                raise ServiceError("no brokerage service available for re-planning")

            # Steps 4-7: per activity, find candidate containers and probe them.
            probe_cache: dict[tuple[str, str], bool] = {}
            for name, spec in problem.activities.items():
                if name in unexecutable:
                    continue
                found = yield from self.call_any(
                    brokers,
                    "find-containers",
                    {"service": spec.service},
                    policy=self.broker_policy,
                )
                executable = False
                for container in found["containers"]:
                    key = (container, spec.service or name)
                    verdict = probe_cache.get(key)
                    if verdict is None:
                        try:
                            answer = yield from self.call(
                                container,
                                "can-execute",
                                {"service": spec.service},
                                policy=self.probe_policy,
                            )
                            verdict = bool(answer.get("executable"))
                        except ServiceError:
                            verdict = False
                        probe_cache[key] = verdict
                    if verdict:
                        executable = True
                        break
                if not executable:
                    unexecutable.add(name)
            recorder.end(
                probe_span,
                probed=len(probe_cache),
                unexecutable=len(unexecutable),
            )

        surviving = {
            name: spec
            for name, spec in problem.activities.items()
            if name not in unexecutable
        }
        if not surviving:
            raise ServiceError(
                "re-planning impossible: no executable activities remain"
            )
        new_problem = PlanningProblem(
            initial_state=WorldState(data) if data else problem.initial_state,
            goals=problem.goals,
            activities=surviving,
            name=f"{problem.name}-replan",
        )
        reply = self._run_planner(new_problem, config, trace_id=message.trace_id)
        reply["excluded_activities"] = sorted(unexecutable)
        self.replans_created += 1
        return reply
