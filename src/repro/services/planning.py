"""Planning service: ab-initio planning (Figure 2) and re-planning (Figure 3).

The planning service "accepts planning requests from the coordination
service", generates a valid process description with the GP planner of
Section 3.4, and returns it.  For re-planning it implements the paper's
second knowledge-acquisition method verbatim (Figure 3):

1. coordination sends the planning task and the non-executable activities;
2. planning asks the **information service** for a brokerage service;
3. information replies;
4. planning asks the **brokerage service** for application containers that
   can possibly provide each activity's execution;
5. brokerage replies;
6. planning asks each **application container** whether the activity is
   executable;
7. containers reply;
8. planning sends the new plan to coordination.

Activities with no executable container — plus those coordination already
reported failed (method one) — are removed from T before the GP runs, so
the new plan avoids them ("the planning service ... avoid[s] reusing in
the new plan those activities that prevent the previous plan from
successful execution").
"""

from __future__ import annotations

import re
import time
from typing import Any

import numpy as np

from repro._util import as_rng
from repro.analysis.analyzer import unresolvable_loci, verify_reusable
from repro.analysis.findings import Severity
from repro.bus.policy import CallPolicy
from repro.errors import ServiceError
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Message
from repro.ontology.builtin import SERVICE
from repro.ontology.frames import KnowledgeBase
from repro.ontology.query import Op, Query
from repro.plan.convert import tree_to_process
from repro.plan.tree import Controller, ControllerKind, PlanNode
from repro.planner.config import GPConfig
from repro.planner.fitness import PlanEvaluator
from repro.planner.gp import GPPlanner
from repro.planner.library import (
    PlanEntry,
    PlanLibrary,
    goal_signature,
    problem_digest,
    substitution_map,
)
from repro.planner.problem import PlanningProblem
from repro.planner.repair import repair_plan, swap_terminals
from repro.planner.state import WorldState
from repro.process.conditions import TRUE, And, Condition, Not
from repro.process.model import Activity
from repro.services.base import CoreService, WELL_KNOWN

__all__ = ["PlanningService"]

#: ``X_2`` → ``X``: undo tree_to_process's repeated-activity renaming when
#: mapping process-level finding loci back to plan terminal names.
_RENAME_SUFFIX = re.compile(r"^(?P<base>.+)_(?P<n>[0-9]+)$")


class PlanningService(CoreService):
    service_type = "planning"

    information_name = WELL_KNOWN["information"]

    #: Reliability envelope for brokerage lookups during re-planning
    #: (replicated core service: timeout then fail over to the next).
    broker_policy = CallPolicy(timeout=30.0)
    #: Availability probes against possibly-crashed containers (Figure-3
    #: steps 6-7): silent peers must not hang the re-planning exchange.
    probe_policy = CallPolicy(timeout=60.0)

    storage_name = WELL_KNOWN["storage"]

    def __init__(
        self,
        env: GridEnvironment,
        name: str | None = None,
        site: str = "core",
        config: GPConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        repair_plans: bool = True,
        library: PlanLibrary | None = None,
        knowledge_base: KnowledgeBase | None = None,
    ) -> None:
        super().__init__(env, name, site)
        self.config = config or GPConfig()
        self.rng = as_rng(rng)
        #: Post-process evolved plans with the never-valid-terminal repair
        #: pass (see :mod:`repro.planner.repair`) before emitting them.
        self.repair_plans = repair_plans
        #: Warm-start plan repository (see :mod:`repro.planner.library`).
        #: The ladder only runs when a library is wired *and* the request's
        #: ``GPConfig.library`` is ``"on"`` — with either off, planning is
        #: byte-identical to a grid that never heard of the library.
        self.library = library
        #: Current registry view for re-verifying retrieved plans.  Without
        #: it, library hits cannot be re-verified and are therefore *never
        #: enacted directly* — they demote to GP seeds.
        self.knowledge_base = knowledge_base
        #: Digests whose storage namespace this replica has already pulled.
        self._synced_digests: set[str] = set()
        self.plans_created = 0
        self.replans_created = 0

    # -- plan construction helpers ----------------------------------------------- #
    def _activity_library(self, problem: PlanningProblem) -> dict[str, Activity]:
        return {
            name: spec.as_activity() for name, spec in problem.activities.items()
        }

    def _condition_provider(self, problem: PlanningProblem):
        """Conditions for the emitted process description.

        Iterative nodes loop *until the goal holds* (re-try semantics);
        selective first branches get ``true`` (the planner has no basis to
        prefer either branch, and the coordinator takes the first branch
        whose condition holds).
        """
        goals = (
            problem.goals[0] if len(problem.goals) == 1 else And(problem.goals)
        )
        not_done = Not(goals)

        def provider(node: Controller) -> Condition:
            if node.kind is ControllerKind.ITERATIVE:
                return not_done
            return TRUE

        return provider

    def _run_planner(
        self,
        problem: PlanningProblem,
        config: GPConfig,
        trace_id: str | None = None,
        seeds: tuple[PlanNode, ...] = (),
    ) -> dict[str, Any]:
        # The GP run is synchronous (zero simulated time); the span records
        # it as an instant with *wall-clock* cost in its attributes — the
        # one place real time is the interesting number.
        recorder = self.env.spans
        span = (
            recorder.start(
                problem.name, "gp", agent=self.name, trace_id=trace_id
            )
            if recorder.enabled
            else None
        )
        wall_started = time.perf_counter() if span is not None else 0.0
        result = GPPlanner(config, rng=self.rng).plan(problem, seeds=seeds)
        if result.analysis_rejected:
            self.metrics.inc(
                "analysis_rejected",
                agent=self.name,
                amount=result.analysis_rejected,
            )
        plan = result.best_plan
        fitness = result.best_fitness
        repaired_away: tuple[str, ...] = ()
        if self.repair_plans:
            repaired = repair_plan(plan, problem)
            plan, fitness = repaired.plan, repaired.fitness
            repaired_away = repaired.removed
        process = tree_to_process(
            plan,
            name=f"plan-{problem.name}",
            library=self._activity_library(problem),
            condition_provider=self._condition_provider(problem),
        )
        if span is not None:
            recorder.end(
                span,
                wall_s=time.perf_counter() - wall_started,
                generations=result.generations_run,
                fitness=fitness.overall,
                solved=fitness.validity == 1.0 and fitness.goal == 1.0,
            )
        return {
            "plan": plan,
            "process": process,
            "fitness": fitness.overall,
            "validity": fitness.validity,
            "goal": fitness.goal,
            "solved": fitness.validity == 1.0 and fitness.goal == 1.0,
            "generations": result.generations_run,
            "analysis_rejected": result.analysis_rejected,
            "repaired_away": list(repaired_away),
        }

    # -- plan library (warm starts) ----------------------------------------------- #
    def _library_enabled(self, config: GPConfig) -> bool:
        return self.library is not None and config.library == "on"

    def _base_activity(self, locus: str, problem: PlanningProblem) -> str:
        """The plan-terminal name behind a process-activity locus."""
        if locus in problem.activities:
            return locus
        match = _RENAME_SUFFIX.match(locus)
        if match and match.group("base") in problem.activities:
            return match.group("base")
        return locus

    def _resolvable_services(self, problem: PlanningProblem) -> list[str]:
        """Services of T with at least one Service instance registered."""
        kb = self.knowledge_base
        assert kb is not None
        resolvable: list[str] = []
        for name in sorted(problem.activities):
            service = problem.activities[name].service or name
            if Query(SERVICE).where("Name", Op.EQ, service).run(kb):
                resolvable.append(service)
        return resolvable

    def _verify_entry(self, entry: PlanEntry) -> tuple[bool, list]:
        """Analyzer re-verification of a retrieved plan against the current
        registry.  No knowledge base ⇒ unverifiable ⇒ not enactable."""
        assert self.library is not None
        self.library.count("verify")
        self.metrics.inc("planlib_verify", agent=self.name)
        if self.knowledge_base is None:
            return False, []
        # Resolvability (the registry may have rotted under the entry) plus
        # the concurrency pass (entries stored before the E6xx codes were
        # never screened; a racy shape is rejected, not repaired).
        findings = verify_reusable(entry.process, self.knowledge_base)
        clean = not any(f.severity is Severity.ERROR for f in findings)
        return clean, findings

    def _repair_entry(
        self, entry: PlanEntry, problem: PlanningProblem, findings: list
    ) -> tuple[PlanEntry, tuple[tuple[str, str], ...]] | None:
        """Swap exactly the E501-flagged terminals for resolvable
        substitutes; None when any flagged activity has no viable swap."""
        if self.knowledge_base is None:
            return None
        flagged = sorted(
            {self._base_activity(locus, problem) for locus in unresolvable_loci(findings)}
        )
        if not flagged:
            return None
        mapping = substitution_map(
            problem, flagged, self._resolvable_services(problem)
        )
        if sorted(mapping) != flagged:
            return None
        plan, swapped = swap_terminals(entry.plan, mapping)
        process = tree_to_process(
            plan,
            name=f"plan-{problem.name}",
            library=self._activity_library(problem),
            condition_provider=self._condition_provider(problem),
        )
        after = verify_reusable(process, self.knowledge_base)
        if any(f.severity is Severity.ERROR for f in after):
            return None
        fitness = PlanEvaluator(problem)(plan)
        repaired = PlanEntry(
            digest=entry.digest,
            goal_sig=entry.goal_sig,
            plan=plan,
            process=process,
            fitness=fitness.overall,
            goals=entry.goals,
            validity=fitness.validity,
            goal=fitness.goal,
            problem_name=problem.name,
            stored_at=self.engine.now,
        )
        return repaired, swapped

    def _entry_reply(self, entry: PlanEntry, verified: bool) -> dict[str, Any]:
        """A planning reply shaped exactly like :meth:`_run_planner`'s."""
        return {
            "plan": entry.plan,
            "process": entry.process,
            "fitness": entry.fitness,
            "validity": entry.validity,
            "goal": entry.goal,
            "solved": entry.validity == 1.0 and entry.goal == 1.0,
            "generations": 0,
            "analysis_rejected": 0,
            "repaired_away": [],
            "verified": verified,
        }

    def _library_sync(self, digest: str):
        """Pull this digest's namespace from persistent storage (once).

        Entries stored by other planning replicas (or previous lifetimes of
        this one) become visible here; payloads failing the
        ``process_digest`` integrity check are skipped.
        """
        lib = self.library
        assert lib is not None
        if digest in self._synced_digests:
            return
        self._synced_digests.add(digest)
        listing = yield from self.call(
            self.storage_name, "list-keys", {"prefix": f"planlib/{digest}/"}
        )
        for key in listing["keys"]:
            parts = key.split("/")
            if len(parts) != 3 or (parts[1], parts[2]) in lib:
                continue
            stored = yield from self.call(
                self.storage_name, "retrieve", {"key": key}
            )
            entry = PlanEntry.from_payload(stored["payload"])
            if entry is not None and lib.absorb(entry):
                lib.count("sync")

    def _library_store(self, entry: PlanEntry):
        """Adopt an entry locally and mirror it (and evictions) to storage."""
        lib = self.library
        assert lib is not None
        evicted = lib.put(entry)
        lib.count("store")
        self.metrics.inc("planlib_store", agent=self.name)
        yield from self.call(
            self.storage_name,
            "store",
            {"key": entry.storage_key, "payload": entry.to_payload()},
        )
        for victim in evicted:
            yield from self.call(
                self.storage_name, "delete", {"key": victim.storage_key}
            )

    def _plan_with_library(
        self, problem: PlanningProblem, config: GPConfig, trace_id: str | None
    ):
        """The retrieve → verify → repair → seed ladder.

        Exact hit: re-verified against the current registry, enacted
        directly (never blind — an unverifiable or stale entry demotes).
        Stale hit: E501-flagged terminals swapped locally, re-verified,
        re-stored.  Near-miss: retrieved plans seed the GP initial
        population.  Miss: full GP; the result is stored for next time.
        """
        lib = self.library
        assert lib is not None
        digest = problem_digest(problem)
        goal_sig = goal_signature(problem.goals)
        goal_texts = tuple(str(goal) for goal in problem.goals)
        recorder = self.env.spans
        span = (
            recorder.start(
                problem.name, "library", agent=self.name, trace_id=trace_id
            )
            if recorder.enabled
            else None
        )
        yield from self._library_sync(digest)
        entry = lib.get(digest, goal_sig)
        source = "miss"
        reply: dict[str, Any] | None = None
        if entry is not None:
            clean, findings = self._verify_entry(entry)
            if clean:
                source = "hit"
                reply = self._entry_reply(entry, verified=True)
            else:
                repaired = self._repair_entry(entry, problem, findings)
                if repaired is not None:
                    fixed, swapped = repaired
                    yield from self._library_store(fixed)
                    source = "repair"
                    reply = self._entry_reply(fixed, verified=True)
                    reply["swapped"] = [list(pair) for pair in swapped]
                else:
                    # Stale and irreparable: drop it so the fresh plan
                    # stored below replaces it, and fall through to GP
                    # with the stale plan as a seed at most.
                    lib.remove(digest, goal_sig)
                    lib.count("reject")
                    self.metrics.inc("planlib_reject", agent=self.name)
        if reply is None:
            seeds = [near.plan for near in lib.related(digest, goal_texts)]
            if entry is not None and self.knowledge_base is None:
                # Unverifiable exact hit: warm-start from it, don't enact it.
                seeds.insert(0, entry.plan)
            if seeds:
                source = "seed"
            reply = self._run_planner(
                problem, config, trace_id=trace_id, seeds=tuple(seeds)
            )
            reply["verified"] = False
            fresh = PlanEntry(
                digest=digest,
                goal_sig=goal_sig,
                plan=reply["plan"],
                process=reply["process"],
                fitness=reply["fitness"],
                goals=goal_texts,
                validity=reply["validity"],
                goal=reply["goal"],
                problem_name=problem.name,
                stored_at=self.engine.now,
            )
            yield from self._library_store(fresh)
        lib.count(source)
        self.metrics.inc(f"planlib_{source}", agent=self.name)
        reply["source"] = source
        if span is not None:
            recorder.end(
                span, source=source, digest=digest[:8], entries=len(lib)
            )
        return reply

    # -- message API ----------------------------------------------------------------- #
    def handle_plan(self, message: Message):
        """Figure 2: a standard planning request.

        Content: ``problem`` (PlanningProblem); optional ``config``
        (GPConfig).  Reply: the plan tree, the elaborated process
        description and fitness telemetry.  With the plan library enabled
        the reply also carries ``source`` (hit/repair/seed/miss) and
        ``verified``; with it off this handler yields nothing, so the
        message exchange is byte-identical to pre-library behavior.
        """
        problem: PlanningProblem = message.content["problem"]
        config: GPConfig = message.content.get("config") or self.config
        if self._library_enabled(config):
            reply = yield from self._plan_with_library(
                problem, config, message.trace_id
            )
        else:
            reply = self._run_planner(problem, config, trace_id=message.trace_id)
        self.plans_created += 1
        return reply

    def handle_library_stats(self, message: Message):
        """Repository health: entry count, cap, and ladder counters."""
        if self.library is None:
            return {"enabled": False, "entries": 0, "counters": {}}
        stats = self.library.stats()
        return {
            "enabled": True,
            "entries": stats.entries,
            "max_entries": stats.max_entries,
            "counters": stats.counters,
        }

    def handle_library_list(self, message: Message):
        """Entries, most-recently-used first (``repro-grid planlib list``)."""
        limit = message.content.get("limit")
        rows: list[dict[str, Any]] = []
        if self.library is not None:
            for entry in reversed(self.library.entries()):
                rows.append(
                    {
                        "digest": entry.digest,
                        "goal_sig": entry.goal_sig,
                        "pd_digest": entry.pd_digest,
                        "problem": entry.problem_name,
                        "fitness": entry.fitness,
                        "size": entry.plan.size,
                        "uses": entry.uses,
                        "stored_at": entry.stored_at,
                    }
                )
                if limit is not None and len(rows) >= limit:
                    break
        return {"entries": rows}

    def handle_library_purge(self, message: Message):
        """Drop every entry here *and* its mirror in persistent storage."""
        if self.library is None:
            return {"purged": 0}
        victims = self.library.entries()
        purged = self.library.purge()
        self._synced_digests.clear()
        for victim in victims:
            yield from self.call(
                self.storage_name, "delete", {"key": victim.storage_key}
            )
        return {"purged": purged}

    def handle_replan(self, message: Message):
        """Figure 3: re-planning after a failed enactment.

        Content: ``problem`` (the original PlanningProblem), ``data``
        (current case data: name -> properties — "all available data,
        including the initial set ... and the data modified, or created
        during the execution"), ``failed_activities`` (names coordination
        knows are non-executable; may be empty), optional ``config``,
        optional ``probe`` (default True: run the 3-step availability
        check of Figure 3).
        """
        content = message.content
        problem: PlanningProblem = content["problem"]
        data: dict[str, dict] = dict(content.get("data") or {})
        failed: set[str] = set(content.get("failed_activities", ()))
        config: GPConfig = content.get("config") or self.config
        probe: bool = bool(content.get("probe", True))

        unexecutable = set(failed)
        recorder = self.env.spans
        if probe:
            probe_span = (
                recorder.start(
                    problem.name, "probe", agent=self.name,
                    trace_id=message.trace_id,
                )
                if recorder.enabled
                else None
            )
            # Steps 2-3: locate a brokerage service through information.
            # Several replicas may be registered; we keep them all and fail
            # over if the primary is down (core services are replicated).
            lookup = yield from self.call(
                self.information_name, "lookup", {"type": "brokerage"}
            )
            brokers = [p["provider"] for p in lookup["providers"]]
            if not brokers:
                recorder.end(probe_span, status="error")
                raise ServiceError("no brokerage service available for re-planning")

            # Steps 4-7: per activity, find candidate containers and probe them.
            probe_cache: dict[tuple[str, str], bool] = {}
            for name, spec in problem.activities.items():
                if name in unexecutable:
                    continue
                found = yield from self.call_any(
                    brokers,
                    "find-containers",
                    {"service": spec.service},
                    policy=self.broker_policy,
                )
                executable = False
                for container in found["containers"]:
                    key = (container, spec.service or name)
                    verdict = probe_cache.get(key)
                    if verdict is None:
                        try:
                            answer = yield from self.call(
                                container,
                                "can-execute",
                                {"service": spec.service},
                                policy=self.probe_policy,
                            )
                            verdict = bool(answer.get("executable"))
                        except ServiceError:
                            verdict = False
                        probe_cache[key] = verdict
                    if verdict:
                        executable = True
                        break
                if not executable:
                    unexecutable.add(name)
            recorder.end(
                probe_span,
                probed=len(probe_cache),
                unexecutable=len(unexecutable),
            )

        surviving = {
            name: spec
            for name, spec in problem.activities.items()
            if name not in unexecutable
        }
        if not surviving:
            raise ServiceError(
                "re-planning impossible: no executable activities remain"
            )
        new_problem = PlanningProblem(
            initial_state=WorldState(data) if data else problem.initial_state,
            goals=problem.goals,
            activities=surviving,
            name=f"{problem.name}-replan",
        )
        if self._library_enabled(config):
            # The restricted problem digests differently from the original
            # (T shrank), so replan results build their own library line.
            reply = yield from self._plan_with_library(
                new_problem, config, message.trace_id
            )
        else:
            reply = self._run_planner(
                new_problem, config, trace_id=message.trace_id
            )
        reply["excluded_activities"] = sorted(unexecutable)
        self.replans_created += 1
        return reply
