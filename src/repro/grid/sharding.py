"""Consistent-hash sharding: the case-routing seam for replicated services.

The paper's architecture runs one coordination agent, one broker and one
matchmaker for the whole grid.  Scaling past the Figure-10 demos means
replicating those services and partitioning the work across the replicas
— the decentralized-scheduling shape of Yu & Buyya's taxonomy.  Two small,
pure pieces make that possible without touching delivery semantics:

* :class:`ShardRing` — a consistent-hash ring (virtual nodes, stable
  byte-hash, no interpreter salt) that maps any string key to one of N
  shard labels.  Case ids hash to coordination shards; end-user service
  names hash to broker/matchmaker partitions.  Adding or removing a shard
  moves only the keys that land on the new/removed shard (bounded key
  movement), so a scale-out event invalidates a bounded slice of every
  cache and registry instead of all of them.
* :class:`ShardRouter` — the bus-level resolver the environment's
  :class:`~repro.bus.router.Router` consults per routed message: traffic
  addressed to a *logical* service name (``coordination``) is rewritten to
  the owning shard's agent (``coordination@s2``) keyed by the case id in
  the message content.  Replies are untouched (they address concrete
  agents), and with a single shard the rewrite is the identity, so the
  N=1 message stream is byte-identical to the unsharded grid.

Both classes are deterministic and engine-free: hashing uses
:func:`hashlib.blake2b` (never the salted builtin ``hash``), and the ring
walk is a ``bisect`` over a sorted point list.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.messages import Message

__all__ = ["ShardRing", "ShardRouter", "stable_hash"]

#: Virtual nodes per shard: enough for an even spread at single-digit
#: shard counts without making ring rebuilds noticeable.
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """A 64-bit hash of *key* that is identical across interpreter runs
    (the builtin ``hash`` is salted per process and banned here)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRing:
    """Consistent-hash ring over a set of shard labels.

    ``owner(key)`` walks clockwise from the key's hash to the next virtual
    node and returns that node's shard.  With *replicas* virtual nodes per
    shard the key population spreads near-uniformly, and membership
    changes move only the keys whose arc gained or lost its owner.
    """

    def __init__(
        self,
        shards: Sequence[str],
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if not shards:
            raise ValueError("ShardRing needs at least one shard")
        if replicas < 1:
            raise ValueError("ShardRing needs at least one virtual node")
        self.replicas = replicas
        self._shards: list[str] = []
        #: Sorted (point, shard) pairs — the ring itself.
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []
        for shard in shards:
            self.add(shard)

    # -- membership -------------------------------------------------------- #
    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(self._shards)

    def _vnodes(self, shard: str) -> list[tuple[int, str]]:
        return [
            (stable_hash(f"{shard}#{index}"), shard)
            for index in range(self.replicas)
        ]

    def add(self, shard: str) -> None:
        """Join *shard*; only keys on the new shard's arcs move."""
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        self._shards.append(shard)
        for pair in self._vnodes(shard):
            insort(self._ring, pair)
        self._points = [point for point, _ in self._ring]

    def remove(self, shard: str) -> None:
        """Leave *shard*; only its keys move (to their next neighbours)."""
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(shard)
        self._ring = [pair for pair in self._ring if pair[1] != shard]
        self._points = [point for point, _ in self._ring]

    # -- lookup ------------------------------------------------------------ #
    def owner(self, key: str) -> str:
        """The shard owning *key* (first virtual node clockwise)."""
        index = bisect_right(self._points, stable_hash(key))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Key count per shard (uniformity checks and docs tables)."""
        counts = dict.fromkeys(self._shards, 0)
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:
        return f"ShardRing({list(self._shards)!r}, replicas={self.replicas})"


class ShardRouter:
    """Rewrites logical service names to shard agents at the bus.

    *targets* maps a logical receiver name to ``{shard label: agent
    name}``; the shard is chosen by hashing the message's case key on
    *ring*.  The case key is, in order of preference, the ``case`` or
    ``task`` entry of the message content, falling back to the
    conversation id — so ``execute-task`` / ``task-status`` traffic for
    one case always lands on the same coordination shard, and keyless
    traffic still routes deterministically.

    Installed on :class:`~repro.bus.router.Router` via its ``sharding``
    attribute; the router consults :meth:`resolve` once per routed
    message, after identity assignment and before delivery lookup.
    """

    #: Content fields tried, in order, for the routing key of a logical
    #: name with no explicit override.
    DEFAULT_KEY_FIELDS = ("case", "task")

    def __init__(
        self,
        ring: ShardRing,
        targets: dict[str, dict[str, str]],
        keys: dict[str, tuple[str, ...]] | None = None,
    ) -> None:
        self.ring = ring
        self.targets = targets
        #: Per-logical-name override of the content fields keyed on (e.g.
        #: a registry partition routes by ``("service",)``).
        self.keys = dict(keys or {})

    def case_key(self, message: "Message") -> str:
        content = message.content
        for field in self.keys.get(message.receiver, self.DEFAULT_KEY_FIELDS):
            key = content.get(field)
            if key is not None:
                return str(key)
        return str(message.conversation or "")

    def resolve(self, message: "Message") -> str | None:
        """The concrete shard agent for *message*, or None when its
        receiver is not a sharded logical name."""
        shard_map = self.targets.get(message.receiver)
        if shard_map is None:
            return None
        return shard_map[self.ring.owner(self.case_key(message))]
