"""Simulated grid substrate: agents, messages, network, nodes, containers."""

from repro.grid.agent import Agent, MessageTrace
from repro.grid.container import ApplicationContainer, EndUserService
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Mailbox, Message, Performative
from repro.grid.network import LinkProfile, Network
from repro.grid.node import GridNode, HardwareProfile
from repro.grid.reservations import Reservation, ReservationLedger
from repro.grid.transfer import (
    TransferPlan,
    TransferSpec,
    Transformation,
    execute_plan,
    plan_transfer,
)

__all__ = [
    "Agent",
    "MessageTrace",
    "Message",
    "Mailbox",
    "Performative",
    "Network",
    "LinkProfile",
    "GridNode",
    "HardwareProfile",
    "ApplicationContainer",
    "EndUserService",
    "GridEnvironment",
    "Reservation",
    "ReservationLedger",
    "TransferSpec",
    "Transformation",
    "TransferPlan",
    "plan_transfer",
    "execute_plan",
]
