"""Simulated grid substrate: agents, messages, network, nodes, containers.

The message path itself (routing, call policies, causal tracing, metrics)
lives in :mod:`repro.bus`; the most commonly used pieces are re-exported
here for convenience.
"""

from repro.bus import CallPolicy, MetricsRegistry, Router, TraceEvent, TraceNode
from repro.grid.agent import Agent, MessageTrace
from repro.grid.container import ApplicationContainer, EndUserService
from repro.grid.environment import GridEnvironment
from repro.grid.messages import Mailbox, Message, Performative
from repro.grid.network import LinkProfile, Network
from repro.grid.node import GridNode, HardwareProfile
from repro.grid.reservations import Reservation, ReservationLedger
from repro.grid.transfer import (
    TransferPlan,
    TransferSpec,
    Transformation,
    execute_plan,
    plan_transfer,
)

__all__ = [
    "Agent",
    "CallPolicy",
    "MessageTrace",
    "MetricsRegistry",
    "Router",
    "TraceEvent",
    "TraceNode",
    "Message",
    "Mailbox",
    "Performative",
    "Network",
    "LinkProfile",
    "GridNode",
    "HardwareProfile",
    "ApplicationContainer",
    "EndUserService",
    "GridEnvironment",
    "Reservation",
    "ReservationLedger",
    "TransferSpec",
    "Transformation",
    "TransferPlan",
    "plan_transfer",
    "execute_plan",
]
