"""Advance reservations of compute capacity (Section 1).

"Even if the user knows the duration of each individual task and may wish
to reserve in advance resources for that task, the system may either not
support resource reservations, or may impose a prohibitive cost for the
advanced reservation of resources."

We model both halves of that sentence: a :class:`ReservationLedger` a node
*may* carry (nodes without one simply don't support reservations), and a
cost premium charged per reserved slot-second (the scheduling service
quotes it before booking).  A reservation guarantees that at most
``capacity`` bookings overlap any instant; it does not preempt live queue
occupancy — a documented simplification (the guarantee is against other
*reservations*, matching how advance reservation actually composes with
best-effort batch queues).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import SchedulingError

__all__ = ["Reservation", "ReservationLedger"]


@dataclass(frozen=True)
class Reservation:
    token: str
    holder: str
    start: float
    end: float
    cost: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


class ReservationLedger:
    """Bookings against a fixed slot capacity, with overlap checking."""

    #: Multiplier on the node's base cost rate — the "prohibitive cost"
    #: knob of Section 1.
    premium = 1.5

    def __init__(self, capacity: int, cost_rate: float = 1.0) -> None:
        if capacity < 1:
            raise SchedulingError(f"capacity must be >= 1, got {capacity}")
        if cost_rate < 0:
            raise SchedulingError(f"negative cost rate {cost_rate}")
        self.capacity = capacity
        self.cost_rate = cost_rate
        self._bookings: dict[str, Reservation] = {}
        self._tokens = itertools.count(1)

    def quote(self, duration: float) -> float:
        """The cost of reserving one slot for *duration* seconds."""
        if duration <= 0:
            raise SchedulingError(f"duration must be positive, got {duration}")
        return self.premium * self.cost_rate * duration

    def overlapping(self, start: float, end: float) -> list[Reservation]:
        return [
            r for r in self._bookings.values()
            if r.start < end and start < r.end
        ]

    def available(self, start: float, end: float) -> int:
        """Slots still reservable over the whole [start, end) window."""
        if end <= start:
            raise SchedulingError("empty reservation window")
        # Peak overlap across the window: evaluate at every booking edge.
        edges = {start}
        for r in self.overlapping(start, end):
            edges.add(max(start, r.start))
        peak = max(
            sum(1 for r in self._bookings.values() if r.active_at(t))
            for t in edges
        )
        return max(0, self.capacity - peak)

    def book(self, holder: str, start: float, duration: float) -> Reservation:
        """Reserve one slot for [start, start+duration); raises
        :class:`SchedulingError` when the window is fully booked."""
        end = start + duration
        if self.available(start, end) < 1:
            raise SchedulingError(
                f"no reservable capacity in [{start}, {end}) "
                f"({self.capacity} slots, "
                f"{len(self.overlapping(start, end))} overlapping bookings)"
            )
        reservation = Reservation(
            token=f"rsv-{next(self._tokens)}",
            holder=holder,
            start=start,
            end=end,
            cost=self.quote(duration),
        )
        self._bookings[reservation.token] = reservation
        return reservation

    def cancel(self, token: str) -> bool:
        return self._bookings.pop(token, None) is not None

    def get(self, token: str) -> Reservation | None:
        return self._bookings.get(token)

    def holder_bookings(self, holder: str) -> list[Reservation]:
        return sorted(
            (r for r in self._bookings.values() if r.holder == holder),
            key=lambda r: r.start,
        )

    def __len__(self) -> int:
        return len(self._bookings)
