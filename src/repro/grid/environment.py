"""The grid environment: agents, nodes, wiring helpers.

:class:`GridEnvironment` owns the simulation engine, the network model and
the agent registry; the message path itself — delivery, conversation /
trace identity, drop injection, metrics — lives in the environment's
:class:`~repro.bus.router.Router`, so any experiment gets a faithful,
deterministic, *observable* message fabric for free.

The environment is substrate only; the Figure-1 core services live in
:mod:`repro.services` and are attached by
:func:`repro.services.bootstrap.build_core_services` (or the one-call
:func:`repro.services.bootstrap.standard_environment`).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.bus.metrics import MetricsRegistry
from repro.bus.router import Router
from repro.bus.tracing import MessageTrace
from repro.errors import GridError
from repro.grid.agent import Agent
from repro.grid.messages import Message
from repro.grid.network import LinkProfile, Network
from repro.grid.node import GridNode, HardwareProfile
from repro.obs.gauges import GaugeSampler
from repro.obs.journal import CaseJournal
from repro.obs.spans import SpanRecorder
from repro.sim.engine import Engine

__all__ = ["GridEnvironment"]


class GridEnvironment:
    """Container for one simulated grid."""

    #: Name the persistent-storage service registers under; containers use
    #: it for payload traffic.
    storage_name = "storage"

    def __init__(
        self,
        engine: Engine | None = None,
        network: Network | None = None,
        router: Router | None = None,
        trace_capacity: int | None = None,
        tracing: bool = True,
        spans: bool = False,
        span_capacity: int | None = None,
        batched: bool = True,
        coalesce: bool = False,
        journal: bool | str = False,
        journal_cases: int | None = None,
    ) -> None:
        # batched=False opts out of the engine's same-tick batch dispatch
        # (the legacy one-event-per-heap-pop kernel) — the comparison knob
        # the byte-identical-trace gate runs both sides of.  coalesce=True
        # opts in to direct same-tick signal resumption (deterministic,
        # but intra-tick interleaving differs — throughput runs only).
        self.engine = engine or Engine(batched=batched, coalesce=coalesce)
        self.network = network or Network()
        self._agents: dict[str, Agent] = {}
        self._nodes: dict[str, GridNode] = {}
        # Span recording is default-off: every instrumented layer guards
        # on ``spans.enabled``, so the default configuration's event
        # stream and protocol traces are byte-identical to an
        # uninstrumented build (recording itself never schedules events).
        self.spans = (
            SpanRecorder(self.engine, enabled=spans, capacity=span_capacity)
            if span_capacity is not None
            else SpanRecorder(self.engine, enabled=spans)
        )
        # The case flight recorder follows the same default-off contract:
        # journal=False disables it entirely, journal="record" records
        # in memory only (recording is pure arithmetic — protocol traces
        # stay byte-identical), journal=True additionally mirrors each
        # completed case into the storage service as a JSONL blob.
        self.journal = CaseJournal(
            self.engine,
            enabled=bool(journal),
            mirror=journal is True or journal == "mirror",
            **({"max_cases": journal_cases} if journal_cases is not None else {}),
        )
        #: The attached gauge sampler (None until :meth:`attach_gauges`).
        self.gauges: GaugeSampler | None = None
        if router is not None:
            self.router = router
            router._agents = self._agents
        else:
            trace = (
                MessageTrace(capacity=trace_capacity)
                if trace_capacity is not None
                else MessageTrace()
            )
            # tracing=False keeps id streams identical but skips per-message
            # TraceEvent recording — the throughput configuration.
            self.router = Router(
                self.engine,
                self.network,
                agents=self._agents,
                trace=trace,
                record_trace=tracing,
            )

    # -- bus views --------------------------------------------------------------- #
    @property
    def trace(self) -> MessageTrace:
        """The router's bounded delivery trace (Figure-2/3 assertions)."""
        return self.router.trace

    @property
    def metrics(self) -> MetricsRegistry:
        return self.router.metrics

    @property
    def dropped(self) -> list[Message]:
        """Messages the fabric lost (unknown receiver, crashed agent, or
        the drop oracle) — the sender's timeout policy handles them."""
        return self.router.dropped

    # -- agents ---------------------------------------------------------------- #
    def _register_agent(self, agent: Agent) -> None:
        if agent.name in self._agents:
            raise GridError(f"duplicate agent name {agent.name!r}")
        self._agents[agent.name] = agent
        self.network.add_site(agent.site)

    def agent(self, name: str) -> Agent:
        try:
            return self._agents[name]
        except KeyError:
            raise GridError(f"unknown agent {name!r}") from None

    def has_agent(self, name: str) -> bool:
        return name in self._agents

    @property
    def agent_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._agents))

    def agents(self) -> Iterator[Agent]:
        return iter(self._agents.values())

    # -- nodes ------------------------------------------------------------------ #
    def add_node(
        self,
        name: str,
        site: str,
        hardware: HardwareProfile | None = None,
        slots: int = 4,
        domain: str = "default",
        cost_rate: float = 1.0,
    ) -> GridNode:
        if name in self._nodes:
            raise GridError(f"duplicate node name {name!r}")
        node = GridNode(self.engine, name, site, hardware, slots, domain, cost_rate)
        self._nodes[name] = node
        self.network.add_site(site)
        return node

    def node(self, name: str) -> GridNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise GridError(f"unknown node {name!r}") from None

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    # -- routing ----------------------------------------------------------------- #
    def route(self, message: Message, cause: Message | None = None) -> None:
        """Hand *message* to the router (see :meth:`Router.route`)."""
        self.router.route(message, cause=cause)

    # -- observability ------------------------------------------------------------ #
    def attach_gauges(self, period: float = 1.0) -> GaugeSampler:
        """Start periodic sim-time gauge sampling (opt-in; see
        :class:`~repro.obs.gauges.GaugeSampler`).  Idempotent: a second
        call resumes the existing sampler."""
        if self.gauges is None:
            self.gauges = GaugeSampler(self, period=period)
        self.gauges.start()
        return self.gauges

    # -- running ------------------------------------------------------------------ #
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Advance the simulation (delegates to the engine)."""
        return self.engine.run(until=until, max_events=max_events)

    def connect_sites(self, a: str, b: str, latency: float, bandwidth: float) -> None:
        self.network.connect(a, b, LinkProfile(latency, bandwidth))
