"""Agent base class: message loop, policy-driven RPC, handler dispatch.

An :class:`Agent` is one named participant in the environment with a
mailbox and a *serve loop*: it receives messages and spawns one handler
process per REQUEST/QUERY, so a long-running activity execution never
blocks the agent's other conversations (Jade behaviours work the same
way).

Handlers are generator methods named ``handle_<action>`` (dashes become
underscores): they may ``yield`` delays / signals like any process, and
their return value is sent back as an INFORM.  Raising
:class:`~repro.errors.ServiceError` (or returning via ``Failure``) produces
a FAILURE reply instead.

The :meth:`Agent.call` helper is the client side: it sends a REQUEST and
parks until the matching reply arrives, raising :class:`ServiceError` on
FAILURE/REFUSE — giving the core services a natural RPC style while every
exchange still crosses the simulated network and appears in the message
trace (which the Figure-2/3 protocol benches assert on).  Its reliability
envelope — timeout, bounded deterministic retries — is a
:class:`~repro.bus.policy.CallPolicy`; :meth:`Agent.call_any` adds
failover across a provider list on top.

Causality: while a handler (or a process spawned with
:meth:`spawn_scoped`) runs, every message it sends is linked to the
message it is handling — same ``trace_id``, ``parent_id`` pointing at the
cause — so the bus's trace reconstructs multi-hop protocol exchanges as
trees.  RPC round-trips are timed into the environment's
:class:`~repro.bus.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from types import GeneratorType
from collections.abc import Generator, Sequence
from typing import Any

from repro.bus.policy import CallPolicy
from repro.bus.tracing import MessageTrace  # noqa: F401  (re-export, historical home)
from repro.errors import ServiceError
from repro.grid.messages import Mailbox, Message, Performative
from repro.sim.engine import Engine, Signal

__all__ = ["Agent", "MessageTrace"]

#: Sentinel delivered to a parked caller when its RPC timeout expires.
_TIMEOUT = object()

#: action -> "handle_<action>" method-name cache (actions are a small
#: closed vocabulary; the per-dispatch replace+concat showed up in
#: enactment profiles).
_handler_names: dict[str, str] = {}


class Agent:
    """Base class for every grid participant (core services, containers,
    user proxies)."""

    #: Fixed processing overhead added before each handler runs (seconds).
    service_delay: float = 1e-3

    #: Performative sets the serve loop classifies against (class-level:
    #: no per-message tuple rebuild in the hot loop).
    _REPLY_PERFORMATIVES = frozenset(
        (
            Performative.INFORM,
            Performative.FAILURE,
            Performative.REFUSE,
            Performative.AGREE,
        )
    )
    _HANDLED_PERFORMATIVES = frozenset(
        (Performative.REQUEST, Performative.QUERY)
    )

    def __init__(self, env: "GridEnvironment", name: str, site: str) -> None:  # noqa: F821
        self.env = env
        self.name = name
        self.site = site
        self.engine: Engine = env.engine
        self.mailbox = Mailbox(self.engine, name)
        self._reply_waiters: dict[str, Signal] = {}
        #: The message whose handler is currently executing (causal scope;
        #: maintained by :meth:`_scoped` around every generator step).
        self._current_cause: Message | None = None
        self.alive = True
        env._register_agent(self)
        self._loop = self.engine.spawn(self._serve(), name=f"{name}.serve")

    @property
    def metrics(self):
        """The environment's shared metrics registry."""
        return self.env.router.metrics

    # -- sending -------------------------------------------------------------- #
    def send(self, message: Message, cause: Message | None = None) -> None:
        """Route *message*; its causal parent defaults to the message whose
        handler is currently running (if any)."""
        self.env.route(
            message, cause=cause if cause is not None else self._current_cause
        )

    def request(
        self,
        to: str,
        action: str,
        content: dict[str, Any] | None = None,
        size: float = 1_000.0,
    ) -> Message:
        """Fire-and-forget REQUEST; returns the sent message (with its
        router-assigned conversation id)."""
        message = Message(
            sender=self.name,
            receiver=to,
            performative=Performative.REQUEST,
            action=action,
            content=dict(content or {}),
            size=size,
        )
        self.send(message)
        return message

    def call(
        self,
        to: str,
        action: str,
        content: dict[str, Any] | None = None,
        size: float = 1_000.0,
        timeout: float | None = None,
        policy: CallPolicy | None = None,
    ) -> Generator[Any, Any, dict[str, Any]]:
        """RPC helper (generator — use ``result = yield from agent.call(...)``).

        Sends a REQUEST and parks until the reply in the same conversation
        arrives.  Returns the reply content dict; FAILURE/REFUSE raise
        :class:`ServiceError` carrying the remote error text.

        The reliability envelope is a *policy*: with a timeout (simulated
        seconds), a silent peer — e.g. a crashed container — raises
        ServiceError instead of deadlocking the caller (a reply landing
        after the timeout is dropped via :meth:`on_unhandled`); with
        retries, failed attempts repeat after the policy's deterministic
        backoff.  The legacy *timeout*/*size* arguments build a
        single-attempt policy; an explicit *policy* wins over both.
        """
        if policy is None:
            policy = CallPolicy(timeout=timeout, size=size)
        last_error: ServiceError | None = None
        for attempt in range(policy.attempts):
            if attempt:
                self.metrics.inc("rpc_retry", agent=to, action=action)
                pause = policy.backoff_before(attempt)
                if pause > 0:
                    yield pause
            try:
                result = yield from self._call_once(to, action, content, policy)
                return result
            except ServiceError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def _call_once(
        self,
        to: str,
        action: str,
        content: dict[str, Any] | None,
        policy: CallPolicy,
    ) -> Generator[Any, Any, dict[str, Any]]:
        """One request/reply round trip under *policy*'s timeout."""
        message = self.request(to, action, content, policy.size)
        conversation = message.conversation
        # The conversation id is already unique — naming the signal with it
        # directly skips an f-string per RPC.
        signal = Signal(self.engine, conversation)
        self._reply_waiters[conversation] = signal
        timer = None
        timeout = policy.timeout
        if timeout is not None:
            def _expire() -> None:
                if not signal.fired:
                    self._reply_waiters.pop(conversation, None)
                    signal.fire(_TIMEOUT)

            timer = self.engine.schedule(timeout, _expire)
        started = self.engine.now
        reply = yield signal
        if timer is not None:
            timer.cancelled = True
        metrics = self.metrics
        if reply is _TIMEOUT:
            metrics.inc("rpc_timeout", agent=to, action=action)
            raise ServiceError(f"{to}!{action} timed out after {timeout}s")
        assert isinstance(reply, Message)
        # One guard instead of two guaranteed no-op registry calls per RPC
        # when the registry is switched off (throughput configurations).
        if metrics.enabled:
            metrics.observe(
                "rpc_latency", self.engine.now - started, agent=to, action=action
            )
        if reply.is_error:
            metrics.inc("rpc_error", agent=to, action=action)
            raise ServiceError(
                f"{to}!{action} failed: {reply.content.get('error', 'unknown error')}"
            )
        if metrics.enabled:
            metrics.inc("rpc_ok", agent=to, action=action)
        return reply.content

    def call_any(
        self,
        providers: Sequence[str],
        action: str,
        content: dict[str, Any] | None = None,
        policy: CallPolicy | None = None,
    ) -> Generator[Any, Any, dict[str, Any]]:
        """RPC against the first *provider* that answers (failover).

        Applies *policy* per provider (timeout and retries included), and
        moves to the next provider when one fails outright.  Raises the
        last error when every provider fails.  Generator:
        ``result = yield from agent.call_any(...)``.
        """
        if not providers:
            raise ServiceError(f"no providers available for {action!r}")
        last_error: ServiceError | None = None
        for index, provider in enumerate(providers):
            if index:
                self.metrics.inc("rpc_failover", agent=provider, action=action)
            try:
                result = yield from self.call(provider, action, content, policy=policy)
                return result
            except ServiceError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def reply_to(
        self,
        original: Message,
        performative: Performative,
        content: dict[str, Any] | None = None,
        size: float = 1_000.0,
    ) -> None:
        self.send(original.reply(performative, content, size), cause=original)

    # -- receiving -------------------------------------------------------------- #
    def _serve(self):
        while True:
            message: Message = yield self.mailbox.receive()
            if not self.alive:
                continue  # crashed agents drop traffic silently
            if (
                message.conversation in self._reply_waiters
                and message.performative in self._REPLY_PERFORMATIVES
            ):
                self._reply_waiters.pop(message.conversation).fire(message)
                continue
            if message.performative in self._HANDLED_PERFORMATIVES:
                self.engine.spawn(
                    self._scoped(self._run_handler(message), message),
                    name=f"{self.name}.{message.action}",
                )
            else:
                self.on_unhandled(message)

    def _scoped(self, gen: Generator, cause: Message | None) -> Generator:
        """Drive *gen* with :attr:`_current_cause` set to *cause* around
        every step, so messages it sends are causally linked.  Execution
        is cooperative and single-threaded, so save/restore around each
        ``send`` cannot race with other handlers."""
        value = None
        while True:
            previous = self._current_cause
            self._current_cause = cause
            try:
                yielded = gen.send(value)
            except StopIteration as stop:
                return stop.value
            finally:
                self._current_cause = previous
            value = yield yielded

    def spawn_scoped(self, gen: Generator, name: str | None = None):
        """Spawn a process that inherits the current causal scope (e.g. the
        concurrent branches of a Fork stay inside their request's trace)."""
        return self.engine.spawn(
            self._scoped(gen, self._current_cause),
            name=name or f"{self.name}.proc",
        )

    def _run_handler(self, message: Message):
        handler_name = _handler_names.get(message.action)
        if handler_name is None:
            handler_name = _handler_names[message.action] = (
                "handle_" + message.action.replace("-", "_")
            )
        handler = getattr(self, handler_name, None)
        if handler is None:
            self.reply_to(
                message,
                Performative.REFUSE,
                {"error": f"{self.name} does not provide {message.action!r}"},
            )
            return
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc(
                "requests_handled", agent=self.name, action=message.action
            )
        if self.service_delay:
            yield self.service_delay
        try:
            gen = handler(message)
            result = (yield from gen) if isinstance(gen, GeneratorType) else gen
        except ServiceError as exc:
            self.reply_to(message, Performative.FAILURE, {"error": str(exc)})
            return
        self.reply_to(message, Performative.INFORM, dict(result or {}))

    def on_unhandled(self, message: Message) -> None:
        """Hook for non-request traffic outside any RPC conversation."""

    # -- lifecycle -------------------------------------------------------------- #
    def crash(self) -> None:
        """Stop handling traffic (failure injection)."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}@{self.site})"
