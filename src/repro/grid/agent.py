"""Agent base class: message loop, RPC helper, handler dispatch.

An :class:`Agent` is one named participant in the environment with a
mailbox and a *serve loop*: it receives messages and spawns one handler
process per REQUEST/QUERY, so a long-running activity execution never
blocks the agent's other conversations (Jade behaviours work the same
way).

Handlers are generator methods named ``handle_<action>`` (dashes become
underscores): they may ``yield`` delays / signals like any process, and
their return value is sent back as an INFORM.  Raising
:class:`~repro.errors.ServiceError` (or returning via ``Failure``) produces
a FAILURE reply instead.

The :meth:`Agent.call` helper is the client side: it sends a REQUEST and
parks until the matching reply arrives, raising :class:`ServiceError` on
FAILURE/REFUSE — giving the core services a natural RPC style while every
exchange still crosses the simulated network and appears in the message
trace (which the Figure-2/3 protocol benches assert on).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ServiceError
from repro.grid.messages import Mailbox, Message, Performative
from repro.sim.engine import Engine, Signal

__all__ = ["Agent", "MessageTrace"]

#: Sentinel delivered to a parked caller when its RPC timeout expires.
_TIMEOUT = object()


class MessageTrace:
    """Global, chronological record of every delivered message."""

    def __init__(self) -> None:
        self.records: list[tuple[float, Message]] = []

    def record(self, time: float, message: Message) -> None:
        self.records.append((time, message))

    def between(self, sender: str, receiver: str) -> list[Message]:
        return [
            m
            for _, m in self.records
            if m.sender == sender and m.receiver == receiver
        ]

    def actions(self) -> list[tuple[str, str, str, str]]:
        """(sender, receiver, performative, action) tuples, in order."""
        return [
            (m.sender, m.receiver, m.performative.value, m.action)
            for _, m in self.records
        ]

    def clear(self) -> None:
        self.records.clear()


class Agent:
    """Base class for every grid participant (core services, containers,
    user proxies)."""

    #: Fixed processing overhead added before each handler runs (seconds).
    service_delay: float = 1e-3

    def __init__(self, env: "GridEnvironment", name: str, site: str) -> None:  # noqa: F821
        self.env = env
        self.name = name
        self.site = site
        self.engine: Engine = env.engine
        self.mailbox = Mailbox(self.engine, name)
        self._reply_waiters: dict[str, Signal] = {}
        self.alive = True
        env._register_agent(self)
        self._loop = self.engine.spawn(self._serve(), name=f"{name}.serve")

    # -- sending -------------------------------------------------------------- #
    def send(self, message: Message) -> None:
        self.env.route(message)

    def request(
        self,
        to: str,
        action: str,
        content: dict[str, Any] | None = None,
        size: float = 1_000.0,
    ) -> Message:
        """Fire-and-forget REQUEST; returns the sent message."""
        message = Message(
            sender=self.name,
            receiver=to,
            performative=Performative.REQUEST,
            action=action,
            content=dict(content or {}),
            size=size,
        )
        self.send(message)
        return message

    def call(
        self,
        to: str,
        action: str,
        content: dict[str, Any] | None = None,
        size: float = 1_000.0,
        timeout: float | None = None,
    ) -> Generator[Any, Any, dict[str, Any]]:
        """RPC helper (generator — use ``result = yield from agent.call(...)``).

        Sends a REQUEST and parks until the reply in the same conversation
        arrives.  Returns the reply content dict; FAILURE/REFUSE raise
        :class:`ServiceError` carrying the remote error text.  With a
        *timeout* (simulated seconds), a silent peer — e.g. a crashed
        container — raises ServiceError instead of deadlocking the caller;
        a reply landing after the timeout is dropped via
        :meth:`on_unhandled`.
        """
        message = self.request(to, action, content, size)
        conversation = message.conversation
        signal = self.engine.signal(f"{self.name}.reply.{conversation}")
        self._reply_waiters[conversation] = signal
        timer = None
        if timeout is not None:
            def _expire() -> None:
                if not signal.fired:
                    self._reply_waiters.pop(conversation, None)
                    signal.fire(_TIMEOUT)

            timer = self.engine.schedule(timeout, _expire)
        reply = yield signal
        if timer is not None:
            timer.cancelled = True
        if reply is _TIMEOUT:
            raise ServiceError(f"{to}!{action} timed out after {timeout}s")
        assert isinstance(reply, Message)
        if reply.is_error:
            raise ServiceError(
                f"{to}!{action} failed: {reply.content.get('error', 'unknown error')}"
            )
        return reply.content

    def reply_to(
        self,
        original: Message,
        performative: Performative,
        content: dict[str, Any] | None = None,
        size: float = 1_000.0,
    ) -> None:
        self.send(original.reply(performative, content, size))

    # -- receiving -------------------------------------------------------------- #
    def _serve(self):
        while True:
            message: Message = yield self.mailbox.receive()
            if not self.alive:
                continue  # crashed agents drop traffic silently
            if message.conversation in self._reply_waiters and message.performative in (
                Performative.INFORM,
                Performative.FAILURE,
                Performative.REFUSE,
                Performative.AGREE,
            ):
                self._reply_waiters.pop(message.conversation).fire(message)
                continue
            if message.performative in (Performative.REQUEST, Performative.QUERY):
                self.engine.spawn(
                    self._run_handler(message),
                    name=f"{self.name}.{message.action}",
                )
            else:
                self.on_unhandled(message)

    def _run_handler(self, message: Message):
        handler_name = "handle_" + message.action.replace("-", "_")
        handler = getattr(self, handler_name, None)
        if handler is None:
            self.reply_to(
                message,
                Performative.REFUSE,
                {"error": f"{self.name} does not provide {message.action!r}"},
            )
            return
        if self.service_delay:
            yield self.service_delay
        try:
            gen = handler(message)
            result = (yield from gen) if isinstance(gen, Generator) else gen
        except ServiceError as exc:
            self.reply_to(message, Performative.FAILURE, {"error": str(exc)})
            return
        self.reply_to(message, Performative.INFORM, dict(result or {}))

    def on_unhandled(self, message: Message) -> None:
        """Hook for non-request traffic outside any RPC conversation."""

    # -- lifecycle -------------------------------------------------------------- #
    def crash(self) -> None:
        """Stop handling traffic (failure injection)."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}@{self.site})"
