"""Data transformations for task migration (Section 1).

"Task migration is likely to be more difficult in this environment.
Additional data transformations may be necessary before and/or after
migrating a task.  Transformation[s] such as data compression /
decompression, encryption / decryption and byte swapping are likely to be
necessary."

This module models exactly those three families:

* :func:`plan_transfer` — given a payload's :class:`TransferSpec` (size,
  byte order, flags) and the destination's requirements, produce the
  ordered list of :class:`Transformation` steps with their CPU work and
  size effects;
* :func:`execute_plan` — fold the plan into (bytes over the wire,
  sender CPU seconds, receiver CPU seconds) for given node speeds.

The cost model is deliberately simple and fully documented: each
transformation charges ``work_per_mb`` CPU work per (input) megabyte;
compression scales the wire size by ``COMPRESSION_RATIO``.  The shape the
experiments care about: compressing pays off on slow links and costs on
fast ones, byte swapping only appears between unlike architectures, and
encryption adds symmetric cost on both ends.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import GridError

__all__ = [
    "TransferSpec",
    "Transformation",
    "TransferPlan",
    "plan_transfer",
    "execute_plan",
    "COMPRESSION_RATIO",
]

#: Wire-size multiplier achieved by compression (scientific data: ~2.5x).
COMPRESSION_RATIO = 0.4

_BYTE_ORDERS = ("little", "big")

#: CPU work units per megabyte for each transformation kind (roughly:
#: a speed-1 node compresses at 5 MB/s, swaps bytes at 10 MB/s).
_WORK_PER_MB = {
    "compress": 0.20,
    "decompress": 0.10,
    "encrypt": 0.40,
    "decrypt": 0.40,
    "byteswap": 0.10,
}


@dataclass(frozen=True)
class TransferSpec:
    """A payload as it sits at its source."""

    size: float  # bytes
    byte_order: str = "little"
    compressed: bool = False
    encrypted: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise GridError(f"negative payload size {self.size}")
        if self.byte_order not in _BYTE_ORDERS:
            raise GridError(f"unknown byte order {self.byte_order!r}")


@dataclass(frozen=True)
class Transformation:
    """One step: where it runs and what it does."""

    kind: str  # compress | decompress | encrypt | decrypt | byteswap
    side: str  # "source" | "destination"

    @property
    def work_per_mb(self) -> float:
        return _WORK_PER_MB[self.kind]


@dataclass(frozen=True)
class TransferPlan:
    """An ordered transformation pipeline plus the resulting wire size."""

    steps: tuple[Transformation, ...]
    wire_size: float
    source_spec: TransferSpec
    delivered_spec: TransferSpec

    def work_on(self, side: str) -> float:
        """Total CPU work units charged on *side*."""
        mb = self.source_spec.size / 1e6
        wire_mb = self.wire_size / 1e6
        total = 0.0
        for step in self.steps:
            if step.side != side:
                continue
            # Source-side steps see the raw size; destination-side steps
            # see what came over the wire.
            reference = mb if side == "source" else wire_mb
            total += step.work_per_mb * reference
        return total


def plan_transfer(
    spec: TransferSpec,
    dest_byte_order: str = "little",
    encrypt_in_transit: bool = False,
    compress_over_wan: bool = False,
    deliver_plain: bool = True,
) -> TransferPlan:
    """Decide which transformations a migration needs.

    * ``compress_over_wan`` — compress at the source (unless already
      compressed) to shrink the wire size; the destination decompresses
      when *deliver_plain*.
    * ``encrypt_in_transit`` — encrypt at the source, decrypt at the
      destination when *deliver_plain* (non-cooperative environments,
      Section 1).
    * byte swapping happens at the destination when architectures differ
      — but only for *plain* delivery, since compressed/encrypted blobs
      are order-agnostic until unpacked.
    """
    if dest_byte_order not in _BYTE_ORDERS:
        raise GridError(f"unknown byte order {dest_byte_order!r}")
    steps: list[Transformation] = []
    current = spec
    wire_size = spec.size

    if compress_over_wan and not current.compressed:
        steps.append(Transformation("compress", "source"))
        current = replace(current, compressed=True)
        wire_size = spec.size * COMPRESSION_RATIO

    if encrypt_in_transit and not current.encrypted:
        steps.append(Transformation("encrypt", "source"))
        current = replace(current, encrypted=True)

    if deliver_plain:
        if current.encrypted:
            steps.append(Transformation("decrypt", "destination"))
            current = replace(current, encrypted=False)
        if current.compressed:
            steps.append(Transformation("decompress", "destination"))
            current = replace(current, compressed=False)
        if current.byte_order != dest_byte_order:
            steps.append(Transformation("byteswap", "destination"))
            current = replace(current, byte_order=dest_byte_order)

    return TransferPlan(
        steps=tuple(steps),
        wire_size=wire_size,
        source_spec=spec,
        delivered_spec=current,
    )


def execute_plan(
    plan: TransferPlan,
    source_speed: float = 1.0,
    dest_speed: float = 1.0,
    metrics: "MetricsRegistry | None" = None,
    component: str = "transfer",
    span: "Span | None" = None,
    journal=None,
    trace_id=None,
    node: str = "",
    data: str = "",
    key: str = "",
) -> tuple[float, float, float]:
    """(wire bytes, source CPU seconds, destination CPU seconds).

    With a *metrics* registry (the bus's
    :class:`~repro.bus.metrics.MetricsRegistry`), the execution is also
    recorded: wire bytes and per-side CPU seconds as histograms labelled
    with *component*, plus a counter per transformation kind — so
    migration costs show up in the same observability plane as RPC
    latencies.  With a *span* (an open
    :class:`~repro.obs.spans.Span`), the same numbers land in the span's
    attributes, so trace exports show what each transfer moved and paid.
    With a *journal* (the environment's
    :class:`~repro.obs.journal.CaseJournal`) and the requesting case's
    *trace_id*, a ``transfer`` event with the migration steps joins the
    case's flight record as well.
    """
    if source_speed <= 0 or dest_speed <= 0:
        raise GridError("node speeds must be positive")
    source_seconds = plan.work_on("source") / source_speed
    dest_seconds = plan.work_on("destination") / dest_speed
    if journal is not None and journal.enabled:
        journal.append_traced(
            trace_id, "transfer", agent=component,
            data=data, key=key, direction="migrate", node=node,
            steps=[step.kind for step in plan.steps],
            wire_bytes=plan.wire_size,
        )
    if span is not None:
        span.attrs.update(
            wire_bytes=plan.wire_size,
            cpu_source_s=source_seconds,
            cpu_dest_s=dest_seconds,
            steps=[step.kind for step in plan.steps],
        )
    if metrics is not None:
        metrics.inc("transfer_plans", agent=component)
        metrics.observe("transfer_wire_bytes", plan.wire_size, agent=component)
        if source_seconds > 0:
            metrics.observe(
                "transfer_cpu_seconds", source_seconds, agent=component, action="source"
            )
        if dest_seconds > 0:
            metrics.observe(
                "transfer_cpu_seconds", dest_seconds, agent=component, action="destination"
            )
        for step in plan.steps:
            metrics.inc("transfer_steps", agent=component, action=step.kind)
    return (plan.wire_size, source_seconds, dest_seconds)
