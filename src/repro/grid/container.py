"""Application containers hosting end-user services.

"Every end-user activity corresponds to an end-user computing service ...
Such activities run under the control of Application Containers" (§3.1).
An :class:`ApplicationContainer` is an agent bound to a
:class:`~repro.grid.node.GridNode`; it accepts ``execute-activity``
requests from the coordination service, runs the named end-user service
(taking simulated time proportional to the service's work and the node's
speed), and returns the output data properties.

End-user services are :class:`EndUserService` definitions: either static
effects (symbolic postconditions, like the planner's ActivitySpec) or a
*compute* callable producing real outputs — the virolab case study plugs
its numpy reconstruction programs in through this hook.

Failure injection: a :class:`~repro.sim.failures.BernoulliFailures` oracle
makes individual invocations fail (FAILURE reply), and :meth:`Agent.crash`
silences the container entirely (callers time out) — the two failure modes
the re-planning experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.errors import GridError, ServiceError
from repro.grid.agent import Agent
from repro.grid.messages import Message
from repro.grid.node import GridNode
from repro.grid.transfer import TransferSpec, execute_plan, plan_transfer
from repro.process.conditions import TRUE, Condition, compile_condition
from repro.sim.failures import BernoulliFailures

__all__ = ["EndUserService", "ApplicationContainer"]

#: compute(input_props, input_payloads) -> (output_props, output_payloads)
ComputeFn = Callable[
    [dict[str, dict], dict[str, Any]],
    tuple[dict[str, dict], dict[str, Any]],
]


@dataclass
class EndUserService:
    """Definition of one end-user computing service.

    *work* is in abstract work units (node speed divides it into seconds).
    *effects* gives static output-data properties; *compute* (optional)
    produces real outputs from real inputs and wins over *effects*.
    *input_condition* guards execution — the Figure-13 ``Input Condition``
    slot (C1..C8) — evaluated over the input data properties.

    *checkpointable* services execute in *checkpoint_chunks* equal slices
    and persist their progress to storage after each slice (Section 1:
    "Some of the computational tasks are long lasting and require
    checkpointing").  A retry of a failed checkpointable activity — on the
    same or a different container — resumes from the last completed slice
    instead of restarting; per-slice failure checks model crashes striking
    mid-computation.
    """

    name: str
    work: float = 10.0
    effects: dict[str, dict] = field(default_factory=dict)
    compute: ComputeFn | None = None
    input_condition: Condition = TRUE
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    cost: float = 1.0
    checkpointable: bool = False
    checkpoint_chunks: int = 5

    def __post_init__(self) -> None:
        if self.work < 0:
            raise GridError(f"negative work for service {self.name!r}")
        if self.checkpoint_chunks < 1:
            raise GridError(
                f"service {self.name!r}: checkpoint_chunks must be >= 1"
            )
        if not self.outputs:
            self.outputs = tuple(self.effects)
        self._check_input = compile_condition(self.input_condition)

    def run(
        self, props: dict[str, dict], payloads: dict[str, Any]
    ) -> tuple[dict[str, dict], dict[str, Any]]:
        if self.compute is not None:
            return self.compute(props, payloads)
        return {k: dict(v) for k, v in self.effects.items()}, {}


class _PropsView:
    """Adapter so conditions can evaluate over a plain props dict."""

    __slots__ = ("_props",)

    def __init__(self, props: dict[str, dict]) -> None:
        self._props = props

    def lookup(self, data_name: str, prop: str) -> Any:
        return self._props[data_name][prop]

    def peek(self, data_name: str, prop: str) -> Any:
        from repro.process.conditions import MISSING

        item = self._props.get(data_name)
        if item is None:
            return MISSING
        return item.get(prop, MISSING)


class ApplicationContainer(Agent):
    """An agent hosting end-user services on a grid node."""

    #: Agent name of the authentication service (for ticket validation).
    auth_name = "authentication"

    def __init__(
        self,
        env: "GridEnvironment",  # noqa: F821
        name: str,
        node: GridNode,
        services: dict[str, EndUserService] | None = None,
        failures: BernoulliFailures | None = None,
        require_auth: bool = False,
    ) -> None:
        super().__init__(env, name, node.site)
        self.node = node
        self.services: dict[str, EndUserService] = dict(services or {})
        self.failures = failures
        self.require_auth = require_auth
        self.executions: list[tuple[float, str, str, bool]] = []
        self.transfers: list[tuple[float, str, tuple[str, ...]]] = []

    def host(self, service: EndUserService) -> None:
        if service.name in self.services:
            raise GridError(
                f"container {self.name!r} already hosts {service.name!r}"
            )
        self.services[service.name] = service

    @property
    def hosted(self) -> tuple[str, ...]:
        return tuple(sorted(self.services))

    # -- protocol handlers ---------------------------------------------------- #
    def handle_can_execute(self, message: Message):
        """Availability probe (Figure-3 steps 6-7 of the re-planning flow)."""
        service = message.content.get("service", "")
        executable = service in self.services and self.node.up and self.alive
        return {"service": service, "executable": executable}

    def handle_hosted_services(self, message: Message):
        return {"services": list(self.hosted)}

    def _run_checkpointed(
        self,
        service: EndUserService,
        activity: str,
        service_name: str,
        checkpoint_key: str,
    ):
        """Execute *service* in checkpointed slices, resuming prior progress.

        Raises :class:`ServiceError` on a mid-slice failure; completed
        slices stay recorded in storage, so the coordinator's retry (on any
        container) pays only for the remaining work.
        """
        chunks = service.checkpoint_chunks
        done = 0
        try:
            record = yield from self.call(
                self.env.storage_name, "retrieve", {"key": checkpoint_key}
            )
            done = int(record["payload"].get("chunks_done", 0))
        except ServiceError:
            done = 0
        done = max(0, min(done, chunks))
        slice_duration = self.node.duration(service.work) / chunks
        for index in range(done, chunks):
            yield slice_duration
            if self.failures is not None and self.failures.should_fail_fraction(
                self.name, 1.0 / chunks, self.engine.now
            ):
                self.executions.append(
                    (self.engine.now, activity, service_name, False)
                )
                self.metrics.inc(
                    "activities_failed", agent=self.name, action=service_name
                )
                raise ServiceError(
                    f"service {service_name!r} on {self.name} failed at "
                    f"checkpoint {index + 1}/{chunks}"
                )
            yield from self.call(
                self.env.storage_name,
                "store",
                {
                    "key": checkpoint_key,
                    "payload": {
                        "chunks_done": index + 1,
                        "chunks": chunks,
                        "service": service_name,
                        "container": self.name,
                    },
                },
            )

    def handle_execute_activity(self, message: Message):
        """Run one end-user activity.

        Content: ``activity`` (name, for the log), ``service``, ``inputs``
        (data name -> properties), optionally ``payload_keys`` (data name
        -> persistent-storage key for real input payloads).
        """
        content = message.content
        recorder = self.env.spans
        span = (
            recorder.start(
                content.get("activity", content.get("service", "")),
                "execute",
                agent=self.name,
                trace_id=message.trace_id,
                service=content.get("service", ""),
                node=self.node.name,
            )
            if recorder.enabled
            else None
        )
        try:
            reply = yield from self._execute_activity(content, span, message.trace_id)
        except ServiceError:
            recorder.end(span, status="error")
            raise
        recorder.end(span)
        return reply

    def _execute_activity(self, content: dict, span, trace_id=None):
        recorder = self.env.spans
        journal = self.env.journal
        service_name = content.get("service", "")
        activity = content.get("activity", service_name)
        service = self.services.get(service_name)
        if service is None:
            raise ServiceError(
                f"container {self.name} does not host service {service_name!r}"
            )
        if not self.node.up:
            raise ServiceError(f"node {self.node.name} is down")

        if self.require_auth:
            # Non-cooperative environments (Section 1): this container only
            # executes for principals holding a valid ticket.
            ticket = content.get("ticket")
            if not ticket:
                raise ServiceError(
                    f"container {self.name} requires an authentication ticket"
                )
            verdict = yield from self.call(
                self.auth_name, "validate", {"ticket": ticket}
            )
            if not verdict.get("valid"):
                raise ServiceError(
                    f"container {self.name} rejected ticket: "
                    f"{verdict.get('error', 'invalid')}"
                )

        # Formal/actual parameter binding (Figure 13's Input/Output Data
        # Order): when the request carries ordered actual data names and
        # the service declares formal ones of the same arity, inputs are
        # renamed actual->formal before the run and outputs formal->actual
        # after it.  Without orders, names pass through unchanged (the
        # synthetic-services case, where formal == actual).
        if journal.enabled:
            # The container never sees the case id; the dispatch RPC's
            # trace (bound at intake) files the event under the case.
            journal.append_traced(
                trace_id, "execute", agent=self.name,
                activity=activity, service=service_name,
                node=self.node.name, container=self.name,
                inputs=sorted(content.get("inputs", {})),
            )

        input_order: list[str] = list(content.get("input_order", ()))
        rename_in: dict[str, str] = {}
        if service.inputs and len(service.inputs) == len(input_order):
            rename_in = dict(zip(input_order, service.inputs))

        actual_props: dict[str, dict] = {
            k: dict(v) for k, v in content.get("inputs", {}).items()
        }
        # The input condition (Figure 13's C1..C8) is written over the
        # case's actual data names, so check before the formal rename.
        if not service._check_input(_PropsView(actual_props)):
            raise ServiceError(
                f"input condition of service {service_name!r} not met"
            )
        props = {rename_in.get(k, k): v for k, v in actual_props.items()}

        # Fetch real payloads from persistent storage, if referenced.
        # Payloads carrying format metadata may need migration
        # transformations (decompression, decryption, byte swapping —
        # Section 1); the resulting CPU time is spent here, on this node.
        payloads: dict[str, Any] = {}
        for data_name, key in content.get("payload_keys", {}).items():
            fetch_span = (
                recorder.start(
                    data_name, "payload", agent=self.name, parent=span,
                    key=key, direction="fetch",
                )
                if recorder.enabled
                else None
            )
            result = yield from self.call(
                self.env.storage_name, "retrieve", {"key": key}
            )
            recorder.end(fetch_span)
            if journal.enabled:
                journal.append_traced(
                    trace_id, "transfer", agent=self.name,
                    data=data_name, key=key, direction="fetch",
                    node=self.node.name,
                )
            fmt = (result.get("meta") or {}).get("format")
            if fmt:
                spec = TransferSpec(
                    size=float(fmt.get("size", 0.0)),
                    byte_order=fmt.get("byte_order", "little"),
                    compressed=bool(fmt.get("compressed", False)),
                    encrypted=bool(fmt.get("encrypted", False)),
                )
                plan = plan_transfer(
                    spec, dest_byte_order=self.node.hardware.byte_order
                )
                _, _, dest_seconds = execute_plan(
                    plan,
                    dest_speed=self.node.hardware.speed,
                    metrics=self.metrics,
                    component=self.name,
                    journal=journal,
                    trace_id=trace_id,
                    node=self.node.name,
                    data=data_name,
                    key=key,
                )
                if dest_seconds > 0:
                    migrate_span = (
                        recorder.start(
                            data_name, "transfer", agent=self.name,
                            parent=span, key=key,
                            steps=[s.kind for s in plan.steps],
                            wire_size=plan.wire_size,
                        )
                        if recorder.enabled
                        else None
                    )
                    yield dest_seconds
                    recorder.end(migrate_span)
                    self.transfers.append(
                        (self.engine.now, key, tuple(s.kind for s in plan.steps))
                    )
            payloads[rename_in.get(data_name, data_name)] = result["payload"]

        checkpoint_key = content.get("checkpoint_key")
        use_checkpoints = bool(service.checkpointable and checkpoint_key)

        wait_span = (
            recorder.start(
                self.node.name, "slot-wait", agent=self.name, parent=span,
                in_use=self.node.slots.in_use, queued=self.node.slots.queued,
            )
            if recorder.enabled
            else None
        )
        grant = yield self.node.slots.acquire()
        recorder.end(wait_span)
        compute_span = (
            recorder.start(
                service_name, "compute", agent=self.name, parent=span,
                work=service.work, checkpointed=use_checkpoints,
            )
            if recorder.enabled
            else None
        )
        try:
            if use_checkpoints:
                yield from self._run_checkpointed(
                    service, activity, service_name, checkpoint_key
                )
            else:
                yield self.node.duration(service.work)
                if self.failures is not None and self.failures.should_fail(
                    self.name, self.engine.now
                ):
                    self.executions.append(
                        (self.engine.now, activity, service_name, False)
                    )
                    self.metrics.inc(
                        "activities_failed", agent=self.name, action=service_name
                    )
                    raise ServiceError(
                        f"service {service_name!r} on {self.name} failed"
                    )
            out_props, out_payloads = service.run(props, payloads)
        except ServiceError:
            recorder.end(compute_span, status="error")
            raise
        finally:
            self.node.slots.release(grant)
        recorder.end(compute_span)

        if use_checkpoints:
            # The activity completed: retire its checkpoint record.
            yield from self.call(
                self.env.storage_name, "delete", {"key": checkpoint_key}
            )

        output_order: list[str] = list(content.get("output_order", ()))
        if service.outputs and len(service.outputs) == len(output_order):
            rename_out = dict(zip(service.outputs, output_order))
            out_props = {rename_out.get(k, k): v for k, v in out_props.items()}
            out_payloads = {
                rename_out.get(k, k): v for k, v in out_payloads.items()
            }

        payload_keys: dict[str, str] = {}
        for data_name, payload in out_payloads.items():
            key = f"{self.name}/{activity}/{data_name}/{self.engine.now:.6f}"
            store_span = (
                recorder.start(
                    data_name, "payload", agent=self.name, parent=span,
                    key=key, direction="store",
                )
                if recorder.enabled
                else None
            )
            yield from self.call(
                self.env.storage_name,
                "store",
                {"key": key, "payload": payload},
            )
            recorder.end(store_span)
            if journal.enabled:
                journal.append_traced(
                    trace_id, "transfer", agent=self.name,
                    data=data_name, key=key, direction="store",
                    node=self.node.name,
                )
            payload_keys[data_name] = key

        self.executions.append((self.engine.now, activity, service_name, True))
        self.metrics.inc(
            "activities_completed", agent=self.name, action=service_name
        )
        self.metrics.observe(
            "activity_duration",
            self.node.duration(service.work),
            agent=self.name,
            action=service_name,
        )
        return {
            "activity": activity,
            "service": service_name,
            "outputs": out_props,
            "payload_keys": payload_keys,
            "container": self.name,
            "duration": self.node.duration(service.work),
        }
