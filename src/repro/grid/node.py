"""Grid nodes: hardware profiles and compute slots.

A :class:`GridNode` is a physical resource at a site: a hardware profile
(CPU speed, memory, interconnect characteristics — the Figure-12 Hardware
frame) plus a :class:`~repro.sim.resources.CapacityResource` of CPU slots.
Application containers run *on* nodes: an activity's wall-clock duration is
``work / speed`` plus queueing for a free slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GridError
from repro.grid.reservations import ReservationLedger
from repro.ontology import HARDWARE, RESOURCE, Instance, KnowledgeBase
from repro.sim.engine import Engine
from repro.sim.resources import CapacityResource

__all__ = ["HardwareProfile", "GridNode"]


@dataclass(frozen=True)
class HardwareProfile:
    """Figure-12 Hardware slots, with the units used across the repo.

    *speed* — normalized compute rate (work units / second / slot);
    *memory_gb* — main memory; *bandwidth_gbps* / *latency_us* — the
    node-internal interconnect (what makes a cluster good or bad for
    fine-grain parallelism, per the Section-1 discussion).
    """

    speed: float = 1.0
    memory_gb: float = 4.0
    bandwidth_gbps: float = 1.0
    latency_us: float = 100.0
    manufacturer: str = "generic"
    model: str = "node"
    byte_order: str = "little"

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise GridError(f"speed must be positive, got {self.speed}")
        if self.memory_gb <= 0:
            raise GridError(f"memory must be positive, got {self.memory_gb}")


class GridNode:
    """One compute resource: hardware + slots + up/down state."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        site: str,
        hardware: HardwareProfile | None = None,
        slots: int = 4,
        domain: str = "default",
        cost_rate: float = 1.0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.site = site
        self.hardware = hardware or HardwareProfile()
        self.slots = CapacityResource(engine, slots, name=f"{name}.cpu")
        self.domain = domain
        self.cost_rate = cost_rate
        self.up = True
        #: Advance-reservation ledger; None = reservations unsupported
        #: (the paper explicitly allows that).
        self.reservations: ReservationLedger | None = None

    def enable_reservations(self) -> ReservationLedger:
        """Turn on advance reservations for this node."""
        if self.reservations is None:
            self.reservations = ReservationLedger(
                self.slots.capacity, self.cost_rate
            )
        return self.reservations

    def duration(self, work: float) -> float:
        """Wall-clock seconds for *work* units on one slot of this node."""
        if work < 0:
            raise GridError(f"negative work {work}")
        return work / self.hardware.speed

    # -- ontology export ----------------------------------------------------- #
    def register_in(self, kb: KnowledgeBase) -> Instance:
        """Create Resource + Hardware instances describing this node."""
        hw = kb.new_instance(
            HARDWARE,
            {
                "Type": "CPU",
                "Speed": self.hardware.speed,
                "Size": self.hardware.memory_gb,
                "Bandwidth": self.hardware.bandwidth_gbps,
                "Latency": self.hardware.latency_us,
                "Manufacturer": self.hardware.manufacturer,
                "Model": self.hardware.model,
            },
            id=f"HW-{self.name}",
        )
        return kb.new_instance(
            RESOURCE,
            {
                "Name": self.name,
                "Type": "compute-node",
                "Location": self.site,
                "Number of Nodes": self.slots.capacity,
                "Administration Domain": self.domain,
                "Hardware": hw.id,
            },
            id=f"RES-{self.name}",
        )

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"GridNode({self.name!r}@{self.site}, {state})"
