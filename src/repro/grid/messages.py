"""ACL-style messages and mailboxes for the agent substrate.

The paper builds on Jade, whose agents exchange FIPA-ACL messages.  We keep
the same observable vocabulary — performatives, conversation ids, sender /
receiver, content — over the discrete-event kernel.  A
:class:`Mailbox` hands messages to its owning agent process in arrival
order; arrival times come from the network model, so message traces (the
Figure-2/Figure-3 protocols) are fully deterministic.

Identity is assigned by the environment's
:class:`~repro.bus.router.Router` when a message is first routed:
conversation ids are counters *per router* (two environments in one
process get independent, reproducible streams), and every message is
stamped with ``message_id`` / ``trace_id`` / ``parent_id`` so protocol
exchanges reconstruct as causal trees.  The id fields are excluded from
equality/repr — two messages with the same observable ACL content compare
equal regardless of when they were routed.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GridError
from repro.sim.engine import Engine, Signal

__all__ = ["Performative", "Message", "Mailbox"]


class Performative(enum.Enum):
    """The FIPA-ACL subset the core services use."""

    REQUEST = "request"
    INFORM = "inform"
    AGREE = "agree"
    REFUSE = "refuse"
    FAILURE = "failure"
    QUERY = "query"


@dataclass(frozen=True, slots=True)
class Message:
    """One ACL message.

    *action* names the operation requested/answered (e.g. ``plan``,
    ``execute-activity``); *content* is a plain dict payload; *size* is the
    payload size in bytes for network-delay modelling.

    *conversation* is usually left empty and assigned by the router at
    send time (replies inherit it via :meth:`reply`).  The trailing id
    fields are router-owned tracing metadata.
    """

    sender: str
    receiver: str
    performative: Performative
    action: str
    content: dict[str, Any] = field(default_factory=dict)
    conversation: str = ""
    size: float = 1_000.0
    #: Router-assigned identity (set once at first routing, excluded from
    #: equality): unique message id, causal trace id, and the message id
    #: of the message that caused this one.
    message_id: int | None = field(default=None, compare=False, repr=False)
    trace_id: str | None = field(default=None, compare=False, repr=False)
    parent_id: int | None = field(default=None, compare=False, repr=False)

    def reply(
        self,
        performative: Performative,
        content: dict[str, Any] | None = None,
        size: float = 1_000.0,
    ) -> "Message":
        """A response in the same conversation, addressed to the sender."""
        return Message(
            sender=self.receiver,
            receiver=self.sender,
            performative=performative,
            action=self.action,
            content=dict(content or {}),
            conversation=self.conversation,
            size=size,
        )

    @property
    def is_error(self) -> bool:
        return self.performative in (Performative.FAILURE, Performative.REFUSE)


class Mailbox:
    """FIFO message queue integrated with the simulation engine.

    ``receive()`` returns a :class:`Signal` the owner process yields on;
    it fires with the next message (immediately when one is queued).
    Only one receiver may be parked at a time — agents are single message
    loops, matching Jade's behaviour model.
    """

    def __init__(self, engine: Engine, owner: str) -> None:
        self.engine = engine
        self.owner = owner
        self._queue: deque[Message] = deque()
        self._waiting: Signal | None = None
        # One reusable receive signal: a mailbox has at most one parked
        # receiver, and by the time receive() is called again the previous
        # signal's waiter has already been resumed (it is that waiter
        # calling), so resetting in place is observationally identical to
        # a fresh Signal — without one allocation per delivered message.
        self._signal = Signal(engine, f"{owner}.recv")

    def deliver(self, message: Message) -> None:
        """Called by the network once the message arrives."""
        if self._waiting is not None:
            signal, self._waiting = self._waiting, None
            signal.fire(message)
        else:
            self._queue.append(message)

    def receive(self) -> Signal:
        """A signal that fires with the next message."""
        if self._waiting is not None:
            raise GridError(
                f"mailbox of {self.owner!r} already has a parked receiver"
            )
        signal = self._signal
        signal.fired = False
        signal.payload = None
        if self._queue:
            signal.fire(self._queue.popleft())
        else:
            self._waiting = signal
        return signal

    def __len__(self) -> int:
        return len(self._queue)
