"""Network model: sites, links, message delays.

Agents live at *sites*; message delivery time between two sites is
``latency + size / bandwidth``.  Intra-site messages use a (much faster)
loopback profile.  The model is deliberately simple — the paper's planner
and coordinator only ever observe delays and failures, not packets — but
heterogeneous enough for the matchmaking scenarios of Section 1 (a "PC
cluster with a switch with high latency and low bandwidth" really is a
poor choice for fine-grain parallel work under this model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GridError

__all__ = ["LinkProfile", "Network"]


@dataclass(frozen=True)
class LinkProfile:
    """Latency in seconds, bandwidth in bytes/second."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise GridError(f"negative latency {self.latency}")
        if self.bandwidth <= 0:
            raise GridError(f"bandwidth must be positive, got {self.bandwidth}")

    def delay(self, size: float) -> float:
        return self.latency + size / self.bandwidth


#: Same-site message profile: sub-millisecond, effectively infinite bandwidth.
LOOPBACK = LinkProfile(latency=1e-4, bandwidth=1e12)

#: Default wide-area profile used when two sites have no explicit link.
DEFAULT_WAN = LinkProfile(latency=0.05, bandwidth=10e6)


class Network:
    """Site-to-site link table with symmetric profiles."""

    def __init__(self, default: LinkProfile = DEFAULT_WAN) -> None:
        self.default = default
        self._links: dict[frozenset[str], LinkProfile] = {}
        self._sites: set[str] = set()

    def add_site(self, site: str) -> None:
        self._sites.add(site)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self._sites))

    def connect(self, a: str, b: str, profile: LinkProfile) -> None:
        """Define the (symmetric) link profile between sites *a* and *b*."""
        if a == b:
            raise GridError("use loopback for intra-site traffic")
        self._sites.update((a, b))
        self._links[frozenset((a, b))] = profile

    def profile(self, a: str, b: str) -> LinkProfile:
        if a == b:
            return LOOPBACK
        return self._links.get(frozenset((a, b)), self.default)

    def delay(self, a: str, b: str, size: float) -> float:
        """Delivery delay in seconds for *size* bytes from site a to b."""
        return self.profile(a, b).delay(size)
