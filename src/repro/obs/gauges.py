"""Sim-time gauges: periodic samples of live queue/utilization state.

Spans answer *where one case's time went*; gauges answer *what the grid
looked like while it ran* — per-node slot occupancy and queue depth,
per-agent mailbox backlog, open spans and in-flight transfers.  The
:class:`GaugeSampler` schedules a lightweight engine callback every
*period* simulated seconds that reads those quantities into the existing
:class:`~repro.sim.stats.TimeSeries` machinery (piecewise-constant
``time_average`` then summarizes a whole run).

Sampling is read-only: the callback sends no messages and touches no
agent state, so message ordering is unaffected — the only observable
difference is the sampler's own engine events, which is why gauges are
**opt-in** (``GridEnvironment.attach_gauges``).  The sampler stops itself
when it finds the event queue otherwise empty, so ``env.run()`` still
terminates; :meth:`GaugeSampler.start` after new work is queued resumes
sampling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ObservabilityError
from repro.sim.stats import MetricSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.environment import GridEnvironment

__all__ = ["GaugeSampler"]


class GaugeSampler:
    """Periodic sim-time sampler of environment gauges."""

    def __init__(
        self,
        env: "GridEnvironment",
        period: float = 1.0,
        metrics: MetricSet | None = None,
    ) -> None:
        if period <= 0:
            raise ObservabilityError(f"gauge period must be positive, got {period}")
        self.env = env
        self.period = period
        self.metrics = metrics if metrics is not None else MetricSet()
        self.samples_taken = 0
        self.running = False

    # -- scheduling ----------------------------------------------------------- #
    def start(self) -> None:
        """Begin (or resume) sampling every *period* simulated seconds."""
        if not self.running:
            self.running = True
            self.env.engine.schedule(self.period, self._tick)

    def stop(self) -> None:
        self.running = False

    def _tick(self) -> None:
        if not self.running:
            return
        self.sample()
        # The tick that fired is already off the queue: when nothing else
        # is pending the simulation is over — stop rescheduling so
        # env.run() terminates instead of sampling an idle grid forever.
        if self.env.engine.pending == 0:
            self.running = False
            return
        self.env.engine.schedule(self.period, self._tick)

    # -- sampling ------------------------------------------------------------- #
    def sample(self) -> None:
        """Take one sample of every gauge at the current simulated time."""
        now = self.env.engine.now
        observe = self.metrics.observe_at
        for name in self.env.node_names:
            node = self.env.node(name)
            observe(f"node.{name}.slots_in_use", now, float(node.slots.in_use))
            observe(f"node.{name}.slots_queued", now, float(node.slots.queued))
        for agent in self.env.agents():
            observe(f"mailbox.{agent.name}", now, float(len(agent.mailbox)))
        recorder = self.env.spans
        observe("spans.open", now, float(recorder.open_count))
        observe(
            "transfers.inflight",
            now,
            float(len(recorder.open_spans(kind="transfer"))),
        )
        self.samples_taken += 1

    # -- reading -------------------------------------------------------------- #
    def summary(self) -> dict[str, dict[str, Any]]:
        """Per-series time-average / extremes over the sampled horizon."""
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self.metrics.series):
            series = self.metrics.series[name]
            values = series.values
            out[name] = {
                "samples": len(values),
                "time_average": series.time_average(),
                "max": max(values) if values else 0.0,
                "last": values[-1] if values else 0.0,
            }
        return out
