"""Per-case time attribution: the ``repro-grid profile`` table.

Given a recorded case span tree, :func:`case_profile` answers the
profiling question directly: for one case, how much simulated time went
to each kind of work (planning, matchmaking, scheduling, container
execution, transfers, slot waits, ...), with percentiles per kind from
the bus's :class:`~repro.bus.metrics.LatencyHistogram` — and how much of
the case's wall (sim) time the spans actually account for.

Coverage is computed honestly: the union of the root's direct-child
intervals, clipped to the root's own window — nested children and
overlapping Fork branches are not double-counted, and instrumentation
gaps (time under the root no child claims) lower the number instead of
hiding.  Per-kind totals, by contrast, sum *inclusive* durations (an
``activity`` span contains its ``match``/``schedule``/``execute``
children), which is what a flame-graph style table wants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.bus.metrics import LatencyHistogram
from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import Span, SpanRecorder

__all__ = ["case_profile", "interval_union", "render_profile"]


def interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by the (possibly overlapping) intervals."""
    covered = 0.0
    end_of_covered = float("-inf")
    for start, end in sorted(intervals):
        if end <= end_of_covered:
            continue
        covered += end - max(start, end_of_covered)
        end_of_covered = end
    return covered


def _find_case(
    recorder: "SpanRecorder", case: str | None, trace_id: str | None
) -> "Span | None":
    """The most recent closed case span matching *case* / *trace_id*."""
    for span in reversed(recorder.closed):
        if span.kind != "case":
            continue
        if case is not None and span.name != case:
            continue
        if trace_id is not None and span.trace_id != trace_id:
            continue
        return span
    return None


def case_profile(
    recorder: "SpanRecorder",
    case: str | None = None,
    trace_id: str | None = None,
) -> dict[str, Any]:
    """Time-attribution profile of one enacted case.

    Identify the case by its task name (*case*) and/or its *trace_id*;
    with neither, the most recently closed case span is profiled.  Raises
    :class:`~repro.errors.ObservabilityError` when no matching case span
    exists (spans disabled, or the case has not completed).
    """
    root = _find_case(recorder, case, trace_id)
    if root is None:
        wanted = case or trace_id or "<latest>"
        raise ObservabilityError(
            f"no closed case span for {wanted!r} — was the environment "
            f"built with spans enabled?"
        )

    tree = list(recorder.tree(root))
    # Spans from *other* agents join the case through the shared trace_id
    # (a container's execute/slot-wait/compute tree has no cross-agent
    # parent link — see the spans module docstring).  They contribute to
    # the per-kind table; coverage stays strictly tree-based.
    in_tree = {span.span_id for _, span in tree}
    remote = (
        [
            span
            for span in recorder.spans(trace_id=root.trace_id)
            if span.span_id not in in_tree and span.kind != "case"
        ]
        if root.trace_id is not None
        else []
    )
    histograms: dict[str, LatencyHistogram] = {}
    activities: dict[str, dict[str, float]] = {}
    errors = 0
    for depth, span in tree + [(1, span) for span in remote]:
        if depth == 0:
            continue
        histogram = histograms.get(span.kind)
        if histogram is None:
            histogram = histograms[span.kind] = LatencyHistogram()
        histogram.observe(span.duration)
        if span.status != "ok":
            errors += 1
        if span.kind == "activity":
            entry = activities.setdefault(
                span.name, {"count": 0, "total": 0.0, "retries": 0}
            )
            entry["count"] += 1
            entry["total"] += span.duration
            entry["retries"] += int(span.attrs.get("retries", 0))

    duration = root.duration
    direct = [
        (span.start, min(span.end, root.end))
        for depth, span in tree
        if depth == 1 and span.end is not None and span.end > span.start
    ]
    covered = interval_union(direct)
    coverage = covered / duration if duration > 0 else 1.0

    rows = []
    for kind in sorted(histograms):
        histogram = histograms[kind]
        rows.append(
            {
                "kind": kind,
                "count": histogram.count,
                "total": histogram.total,
                "mean": histogram.mean,
                "p50": histogram.quantile(0.5),
                "p99": histogram.quantile(0.99),
                "max": histogram.max,
                "share": histogram.total / duration if duration > 0 else 0.0,
            }
        )
    rows.sort(key=lambda row: -row["total"])

    return {
        "case": root.name,
        "trace_id": root.trace_id,
        "start": root.start,
        "end": root.end,
        "duration": duration,
        "status": root.status,
        "spans": len(tree) + len(remote),
        "errors": errors,
        "coverage": coverage,
        "rows": rows,
        "activities": {
            name: dict(entry) for name, entry in sorted(activities.items())
        },
    }


def render_profile(profile: dict[str, Any]) -> str:
    """Plain-text table for the CLI (`repro-grid profile`)."""
    lines = [
        f"case {profile['case']}  trace={profile['trace_id']}  "
        f"status={profile['status']}",
        f"sim time {profile['duration']:.3f}s  spans={profile['spans']}  "
        f"coverage={profile['coverage'] * 100.0:.1f}%",
        "",
        f"{'kind':<14} {'count':>5} {'total_s':>10} {'share':>7} "
        f"{'mean_s':>9} {'p50_s':>9} {'p99_s':>9} {'max_s':>9}",
    ]
    for row in profile["rows"]:
        lines.append(
            f"{row['kind']:<14} {row['count']:>5} {row['total']:>10.3f} "
            f"{row['share'] * 100.0:>6.1f}% {row['mean']:>9.3f} "
            f"{row['p50']:>9.3f} {row['p99']:>9.3f} {row['max']:>9.3f}"
        )
    if profile["activities"]:
        lines.append("")
        lines.append(f"{'activity':<20} {'runs':>5} {'total_s':>10} {'retries':>8}")
        for name, entry in profile["activities"].items():
            lines.append(
                f"{name:<20} {entry['count']:>5} {entry['total']:>10.3f} "
                f"{entry['retries']:>8}"
            )
    return "\n".join(lines)
