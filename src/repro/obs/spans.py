"""Span-based workflow telemetry: where does enactment time go?

The monitoring service is the paper's ground-truth observability plane,
but message counters alone cannot answer the profiling question a
production workflow engine faces daily: *which part of a case's enactment
spent the time* — planning, scheduling, container queues, transfers, the
activities themselves?  A :class:`Span` is one named, sim-time-stamped
interval of work; spans nest (``parent_id``) into a per-case tree whose
root is the case enactment itself, and every span carries the causal
``trace_id`` of the message exchange that produced it, so a span joins to
its messages through :class:`~repro.bus.tracing.MessageTrace` (filter the
trace by ``trace_id`` and the span's ``[start, end]`` window).

The :class:`SpanRecorder` is the environment-wide sink.  Its contract
mirrors the metrics registry's: **recording is synchronous arithmetic and
never schedules a simulation event**, so instrumentation cannot perturb
message ordering — and it is **disabled by default**: every instrumented
site guards on :attr:`SpanRecorder.enabled`, which costs one attribute
load and a branch, keeping the default configuration's protocol traces
byte-identical to an uninstrumented build.

Closed spans live in a bounded ring (like the message trace) with exact
``total_closed`` / ``evicted`` accounting; open spans are tracked by id so
lifecycle bugs (double close, close-after-evict) surface as
:class:`~repro.errors.ObservabilityError` instead of silent corruption.

Threshold **watch rules** ride on the recorder: a :class:`WatchRule`
names a span population (by kind) and a bound over a field (the span's
duration or any attribute — e.g. an activity span's retry count, a
slot-wait span's queue depth) and is evaluated synchronously on span
close; firings append to a bounded alert log the monitoring service
serves over RPC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

__all__ = ["Span", "SpanRecorder", "WatchRule", "Alert", "DEFAULT_SPAN_CAPACITY"]

#: Default resident bound for closed spans — same order as the message
#: trace: complete for every experiment in the repo, bounded for soaks.
DEFAULT_SPAN_CAPACITY = 100_000


class Span:
    """One named interval of simulated time, nested under a parent span."""

    __slots__ = (
        "span_id", "name", "kind", "agent", "trace_id", "parent_id",
        "start", "end", "status", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        kind: str,
        agent: str,
        trace_id: str | None,
        parent_id: int | None,
        start: float,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.kind = kind
        self.agent = agent
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.attrs: dict[str, Any] = {}

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds from start to close (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "agent": self.agent,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"closed dur={self.duration:.4f}" if self.closed else "open"
        return f"Span(#{self.span_id} {self.kind}:{self.name!r} {state})"


@dataclass(frozen=True)
class WatchRule:
    """Alert when a closing span's *field* crosses *bound*.

    *field* is ``"duration"`` or the name of a span attribute (missing
    attributes never fire).  *op* is one of ``> >= < <= ==``; *kind*
    restricts the rule to spans of that kind (None = every span).
    """

    name: str
    field: str
    bound: float
    op: str = ">"
    kind: str | None = None

    _OPS = {
        ">": lambda v, b: v > b,
        ">=": lambda v, b: v >= b,
        "<": lambda v, b: v < b,
        "<=": lambda v, b: v <= b,
        "==": lambda v, b: v == b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ObservabilityError(
                f"watch rule {self.name!r}: unknown op {self.op!r}"
            )

    def check(self, span: Span) -> float | None:
        """The observed value when this rule fires on *span*, else None."""
        if self.kind is not None and span.kind != self.kind:
            return None
        value = span.duration if self.field == "duration" else span.attrs.get(self.field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return None
        return float(value) if self._OPS[self.op](value, self.bound) else None

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "field": self.field,
            "bound": self.bound,
            "op": self.op,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class Alert:
    """One watch-rule firing, stamped with the closing span's identity."""

    time: float
    rule: str
    span_id: int
    span_name: str
    kind: str
    agent: str
    trace_id: str | None
    value: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "rule": self.rule,
            "span_id": self.span_id,
            "span_name": self.span_name,
            "kind": self.kind,
            "agent": self.agent,
            "trace_id": self.trace_id,
            "value": self.value,
        }


class SpanRecorder:
    """Bounded, environment-wide sink for workflow spans.

    ``enabled`` gates every instrumented site: when False (the default),
    :meth:`start` returns None and :meth:`end` ignores None, so the whole
    subsystem reduces to a branch per site.  Enable at construction
    (``GridEnvironment(spans=True)``) or flip :attr:`enabled` before the
    run — spans opened while enabled close normally after disabling.
    """

    def __init__(
        self,
        engine: "Engine",
        enabled: bool = False,
        capacity: int | None = DEFAULT_SPAN_CAPACITY,
        alert_capacity: int = 10_000,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ObservabilityError(
                f"span capacity must be >= 1 or None, got {capacity}"
            )
        self.engine = engine
        self.enabled = enabled
        self.capacity = capacity
        self.closed: deque[Span] = deque(maxlen=capacity)
        self._open: dict[int, Span] = {}
        self._ids = 0
        #: Exact lifecycle accounting (survives ring eviction).
        self.total_started = 0
        self.total_closed = 0
        self.rules: list[WatchRule] = []
        self.alerts: deque[Alert] = deque(maxlen=alert_capacity)
        self.total_alerts = 0

    # -- lifecycle ----------------------------------------------------------- #
    def start(
        self,
        name: str,
        kind: str,
        agent: str = "",
        trace_id: str | None = None,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span | None:
        """Open a span at the current simulated time (None when disabled).

        *parent* nests this span under an open span of the same tree;
        the child inherits the parent's ``trace_id`` unless given its own.
        """
        if not self.enabled:
            return None
        self._ids += 1
        if parent is not None and trace_id is None:
            trace_id = parent.trace_id
        span = Span(
            self._ids, name, kind, agent, trace_id,
            parent.span_id if parent is not None else None,
            self.engine.now,
        )
        if attrs:
            span.attrs.update(attrs)
        self._open[span.span_id] = span
        self.total_started += 1
        return span

    def end(
        self, span: Span | None, status: str = "ok", **attrs: Any
    ) -> None:
        """Close *span* (no-op for None, so disabled sites need no guard)."""
        if span is None:
            return
        if self._open.pop(span.span_id, None) is None:
            raise ObservabilityError(
                f"span #{span.span_id} ({span.kind}:{span.name!r}) closed twice"
            )
        span.end = self.engine.now
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self.closed.append(span)
        self.total_closed += 1
        for rule in self.rules:
            value = rule.check(span)
            if value is not None:
                self.alerts.append(
                    Alert(
                        span.end, rule.name, span.span_id, span.name,
                        span.kind, span.agent, span.trace_id, value,
                    )
                )
                self.total_alerts += 1

    # -- accounting ----------------------------------------------------------- #
    @property
    def evicted(self) -> int:
        """Closed spans the capacity bound has discarded."""
        return self.total_closed - len(self.closed)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def open_spans(self, kind: str | None = None) -> list[Span]:
        spans = self._open.values()
        if kind is None:
            return list(spans)
        return [s for s in spans if s.kind == kind]

    # -- queries -------------------------------------------------------------- #
    def spans(
        self,
        trace_id: str | None = None,
        kind: str | None = None,
        name: str | None = None,
    ) -> list[Span]:
        """Closed spans in close order, optionally filtered."""
        out = []
        for span in self.closed:
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if kind is not None and span.kind != kind:
                continue
            if name is not None and span.name != name:
                continue
            out.append(span)
        return out

    def kinds(self) -> list[str]:
        """Distinct span kinds, in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self.closed:
            seen.setdefault(span.kind, None)
        return list(seen)

    def tree(self, root: Span) -> Iterator[tuple[int, Span]]:
        """Walk *root*'s closed descendants depth-first as (depth, span)."""
        children: dict[int, list[Span]] = {}
        for span in self.closed:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)

        def walk(span: Span, depth: int) -> Iterator[tuple[int, Span]]:
            yield depth, span
            for child in children.get(span.span_id, ()):
                yield from walk(child, depth + 1)

        return walk(root, 0)

    # -- watch rules ---------------------------------------------------------- #
    def add_rule(self, rule: WatchRule) -> None:
        if any(existing.name == rule.name for existing in self.rules):
            raise ObservabilityError(f"duplicate watch rule {rule.name!r}")
        self.rules.append(rule)

    def remove_rule(self, name: str) -> bool:
        before = len(self.rules)
        self.rules = [r for r in self.rules if r.name != name]
        return len(self.rules) != before

    def clear(self) -> None:
        """Drop recorded spans and alerts (rules and accounting reset too)."""
        self.closed.clear()
        self._open.clear()
        self.alerts.clear()
        self.total_started = 0
        self.total_closed = 0
        self.total_alerts = 0
