"""Telemetry exporters: Chrome trace-event JSON and flat JSONL.

Two formats, chosen for zero-dependency interop:

* :func:`chrome_trace` emits the `trace-event format`__ that
  ``chrome://tracing`` / Perfetto open directly — each closed span becomes
  one complete event (``"ph": "X"``) with microsecond ``ts``/``dur``, the
  recording agent mapped to a named ``tid`` so the timeline groups per
  agent, and the span's identity (``span_id``/``parent_id``/``trace_id``)
  carried in ``args`` for joining back to the message trace.

* :func:`spans_jsonl` emits one JSON object per line (the
  :meth:`~repro.obs.spans.Span.as_dict` shape) — the grep/jq-friendly
  archival format.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Both are pure functions over closed spans; :func:`validate_chrome_trace`
is the schema check the tests (and any downstream pipeline) assert with.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Any

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "chrome_trace",
    "spans_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "validate_chrome_trace",
]

#: Every span timeline shares one synthetic process.
_PID = 1


def _span_list(source: "SpanRecorder | Iterable[Span]") -> list["Span"]:
    closed = getattr(source, "closed", source)
    return list(closed)


def chrome_trace(source: "SpanRecorder | Iterable[Span]") -> dict[str, Any]:
    """Render closed spans as a ``chrome://tracing`` trace-event document.

    Sim-time seconds map to trace microseconds.  Agents become named
    threads (metadata events), so per-agent swimlanes come for free.
    """
    spans = _span_list(source)
    agents: dict[str, int] = {}
    for span in spans:
        agents.setdefault(span.agent or "-", len(agents) + 1)
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": tid,
            "args": {"name": agent},
        }
        for agent, tid in agents.items()
    ]
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": _PID,
                "tid": agents[span.agent or "-"],
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "trace_id": span.trace_id,
                    "status": span.status,
                    **span.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_jsonl(source: "SpanRecorder | Iterable[Span]") -> Iterator[str]:
    """One compact JSON object per closed span, in close order."""
    for span in _span_list(source):
        yield json.dumps(span.as_dict(), sort_keys=True, default=str)


def write_chrome_trace(path: str, source: "SpanRecorder | Iterable[Span]") -> int:
    """Write the Chrome trace document to *path*; returns the event count."""
    document = chrome_trace(source)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=1)
        fh.write("\n")
    return len(document["traceEvents"])


def write_jsonl(path: str, source: "SpanRecorder | Iterable[Span]") -> int:
    """Write one span per line to *path*; returns the line count."""
    count = 0
    with open(path, "w") as fh:
        for line in spans_jsonl(source):
            fh.write(line + "\n")
            count += 1
    return count


_COMPLETE_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def validate_chrome_trace(document: Any) -> int:
    """Check *document* against the trace-event schema we emit.

    Returns the number of complete (``"X"``) events; raises
    :class:`~repro.errors.ObservabilityError` on the first violation.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ObservabilityError("trace document must be a dict with traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError("traceEvents must be a list")
    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError(f"traceEvents[{index}] is not an object")
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            raise ObservabilityError(
                f"traceEvents[{index}]: unexpected phase {phase!r}"
            )
        for field in _COMPLETE_FIELDS:
            if field not in event:
                raise ObservabilityError(
                    f"traceEvents[{index}]: missing field {field!r}"
                )
        for field in ("ts", "dur"):
            value = event[field]
            if not isinstance(value, (int, float)) or value < 0:
                raise ObservabilityError(
                    f"traceEvents[{index}]: {field} must be a non-negative number"
                )
        complete += 1
    return complete
