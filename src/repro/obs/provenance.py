"""Queryable provenance derived from the case journal.

A :class:`ProvenanceGraph` is the bipartite activity → data-artifact
DAG a case's journal implies: activity *runs* (one node per dispatch
occurrence, ``status: pending | running | completed | failed``) wired
to the data artifacts they consumed and produced, joined across agents
by the ``trace_id`` every journal event carries.  ``compile`` events
pre-seed *pending* runs for every activity the chosen process names, so
work that was planned but never dispatched — or aborted by a replan —
stays visible instead of vanishing from the record.

Three queries cover the post-mortem questions:

* :meth:`ProvenanceGraph.lineage` — everything upstream of a data
  artifact (which runs, on which nodes, from which inputs);
* :meth:`ProvenanceGraph.descendants` — everything downstream of an
  activity run;
* :meth:`ProvenanceGraph.case_timeline` — the case's raw ordered
  event log.

:func:`journal_replay` is the crash-recovery rehearsal: it rebuilds the
graph *purely* from the storage-mirrored journal blob (no live journal,
no spans) and, given the live :class:`~repro.obs.spans.SpanRecorder`,
cross-checks the two observability planes with
:func:`span_agreement` — every checkable journal event must have a
matching span in the same trace.  The bench gate holds agreement at
≥ 95%, mirroring the PR-4 case-profile coverage gate.
"""

from __future__ import annotations

import json

from repro.errors import ObservabilityError
from repro.obs.journal import JournalEvent, decode_events, journal_storage_key

__all__ = [
    "ActivityRun",
    "DataArtifact",
    "ProvenanceGraph",
    "journal_replay",
    "lineage_jsonl",
    "provenance_dot",
    "span_agreement",
]

ACTIVITY_STATUSES = ("pending", "running", "completed", "failed")


class ActivityRun:
    """One dispatch occurrence of an activity within a case."""

    __slots__ = (
        "id",
        "case",
        "name",
        "service",
        "status",
        "container",
        "node",
        "started",
        "ended",
        "retries",
        "trace",
        "inputs",
        "outputs",
        "error",
    )

    def __init__(self, run_id, case, name, service=""):
        self.id = run_id
        self.case = case
        self.name = name
        self.service = service
        self.status = "pending"
        self.container = ""
        self.node = ""
        self.started = None
        self.ended = None
        self.retries = 0
        self.trace = None
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.error = ""

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "case": self.case,
            "name": self.name,
            "service": self.service,
            "status": self.status,
            "container": self.container,
            "node": self.node,
            "started": self.started,
            "ended": self.ended,
            "retries": self.retries,
            "trace": self.trace,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "error": self.error,
        }


class DataArtifact:
    """One named piece of case data, with its producer/consumer runs."""

    __slots__ = ("id", "case", "name", "initial", "producers", "consumers", "keys", "transfers")

    def __init__(self, artifact_id, case, name, initial=False):
        self.id = artifact_id
        self.case = case
        self.name = name
        self.initial = initial
        self.producers: list[str] = []
        self.consumers: list[str] = []
        #: Storage keys this artifact's payload was stored under.
        self.keys: list[str] = []
        #: ``(direction, key, node)`` rows from transfer events.
        self.transfers: list[dict] = []

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "case": self.case,
            "name": self.name,
            "initial": self.initial,
            "producers": list(self.producers),
            "consumers": list(self.consumers),
            "keys": list(self.keys),
            "transfers": list(self.transfers),
        }


class ProvenanceGraph:
    """Bipartite activity-run / data-artifact DAG built from journal events."""

    def __init__(self):
        self.activities: dict[str, ActivityRun] = {}
        self.data: dict[str, DataArtifact] = {}
        #: Raw per-case timelines (insertion-ordered journal events).
        self.cases: dict[str, list[JournalEvent]] = {}
        #: ``(case, name) -> [run ids]`` in occurrence order.
        self._runs: dict[tuple[str, str], list[str]] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def from_events(cls, case_id: str, events: list[JournalEvent]) -> ProvenanceGraph:
        graph = cls()
        graph.add_events(case_id, events)
        return graph

    @classmethod
    def from_journal(cls, journal, case_id: str | None = None) -> ProvenanceGraph:
        graph = cls()
        cases = (case_id,) if case_id is not None else journal.case_ids()
        for case in cases:
            graph.add_events(case, journal.events(case))
        return graph

    def add_events(self, case_id: str, events: list[JournalEvent]) -> None:
        self.cases.setdefault(case_id, []).extend(events)
        for event in events:
            handler = self._HANDLERS.get(event.kind)
            if handler is not None:
                handler(self, event)

    def _artifact(self, case, name, initial=False) -> DataArtifact:
        artifact_id = f"{case}:{name}"
        node = self.data.get(artifact_id)
        if node is None:
            self.data[artifact_id] = node = DataArtifact(artifact_id, case, name, initial)
        elif initial:
            node.initial = True
        return node

    def _new_run(self, case, name, service="") -> ActivityRun:
        runs = self._runs.setdefault((case, name), [])
        run = ActivityRun(f"{case}:{name}#{len(runs) + 1}", case, name, service)
        runs.append(run.id)
        self.activities[run.id] = run
        return run

    def _live_run(self, case, name, statuses) -> ActivityRun | None:
        """Latest run of ``(case, name)`` whose status is in *statuses*."""
        for run_id in reversed(self._runs.get((case, name), ())):
            run = self.activities[run_id]
            if run.status in statuses:
                return run
        return None

    # -- per-kind event handlers --------------------------------------

    def _on_case_intake(self, event):
        for name in event.attrs.get("initial", ()):
            self._artifact(event.case, name, initial=True)

    def _on_compile(self, event):
        # Pre-seed a pending run for each planned activity that has no
        # open run yet, so never-dispatched work stays in the record.
        for name in event.attrs.get("activities", ()):
            if self._live_run(event.case, name, ("pending", "running")) is None:
                self._new_run(event.case, name)

    def _on_dispatch(self, event):
        attrs = event.attrs
        name = attrs.get("activity", "")
        run = self._live_run(event.case, name, ("pending",))
        if run is None:
            run = self._new_run(event.case, name)
        run.status = "running"
        run.service = attrs.get("service", run.service)
        run.container = attrs.get("container", "")
        run.started = event.time
        run.retries = attrs.get("attempt", 0)
        run.trace = event.trace
        for data_name in attrs.get("inputs", ()):
            artifact = self._artifact(event.case, data_name)
            if run.id not in artifact.consumers:
                artifact.consumers.append(run.id)
            if data_name not in run.inputs:
                run.inputs.append(data_name)

    def _on_execute(self, event):
        attrs = event.attrs
        run = self._live_run(event.case, attrs.get("activity", ""), ("running",))
        if run is None:
            return
        run.node = attrs.get("node", run.node)
        run.container = attrs.get("container", run.container)

    def _on_activity_complete(self, event):
        attrs = event.attrs
        run = self._live_run(event.case, attrs.get("activity", ""), ("running", "pending"))
        if run is None:
            run = self._new_run(event.case, attrs.get("activity", ""), attrs.get("service", ""))
        run.status = "completed"
        run.ended = event.time
        run.retries = attrs.get("retries", run.retries)
        run.container = attrs.get("container", run.container)
        payload_keys = attrs.get("payload_keys", {})
        for data_name in attrs.get("outputs", ()):
            artifact = self._artifact(event.case, data_name)
            if run.id not in artifact.producers:
                artifact.producers.append(run.id)
            if data_name not in run.outputs:
                run.outputs.append(data_name)
            key = payload_keys.get(data_name)
            if key and key not in artifact.keys:
                artifact.keys.append(key)

    def _on_activity_fail(self, event):
        attrs = event.attrs
        run = self._live_run(event.case, attrs.get("activity", ""), ("running", "pending"))
        if run is None:
            run = self._new_run(event.case, attrs.get("activity", ""), attrs.get("service", ""))
        run.status = "failed"
        run.ended = event.time
        run.error = attrs.get("reason", "")

    def _on_transfer(self, event):
        attrs = event.attrs
        data_name = attrs.get("data")
        if not data_name:
            return
        artifact = self._artifact(event.case, data_name)
        key = attrs.get("key")
        if key and key not in artifact.keys:
            artifact.keys.append(key)
        artifact.transfers.append(
            {
                "direction": attrs.get("direction", ""),
                "key": key,
                "node": attrs.get("node", ""),
                "time": event.time,
            }
        )

    _HANDLERS = {
        "case-intake": _on_case_intake,
        "compile": _on_compile,
        "dispatch": _on_dispatch,
        "execute": _on_execute,
        "activity-complete": _on_activity_complete,
        "activity-fail": _on_activity_fail,
        "transfer": _on_transfer,
    }

    # -- queries ------------------------------------------------------

    def case_timeline(self, case_id: str) -> list[dict]:
        """The case's ordered raw event log, as plain dicts."""
        if case_id not in self.cases:
            raise ObservabilityError(f"no journal for case {case_id!r}")
        return [event.as_dict() for event in self.cases[case_id]]

    def _resolve_data(self, key: str, case: str | None = None) -> DataArtifact:
        if key in self.data:
            return self.data[key]
        if case is not None and f"{case}:{key}" in self.data:
            return self.data[f"{case}:{key}"]
        # Bare data name or payload storage key: first match in
        # insertion order (dict order is deterministic).
        for artifact in self.data.values():
            if artifact.name == key or key in artifact.keys:
                return artifact
        raise ObservabilityError(f"unknown data artifact {key!r}")

    def _resolve_activity(self, key: str, case: str | None = None) -> ActivityRun:
        if key in self.activities:
            return self.activities[key]
        if case is not None:
            runs = self._runs.get((case, key))
            if runs:
                return self.activities[runs[-1]]
        for (run_case, name), runs in self._runs.items():
            if name == key and (case is None or run_case == case):
                return self.activities[runs[-1]]
        raise ObservabilityError(f"unknown activity {key!r}")

    def lineage(self, data_key: str, case: str | None = None) -> dict:
        """Backward closure of *data_key*: every run and artifact it
        (transitively) derives from, plus the edges between them."""
        target = self._resolve_data(data_key, case)
        data_seen: dict[str, DataArtifact] = {}
        runs_seen: dict[str, ActivityRun] = {}
        edges: list[tuple[str, str]] = []
        frontier = [target]
        while frontier:
            artifact = frontier.pop()
            if artifact.id in data_seen:
                continue
            data_seen[artifact.id] = artifact
            for run_id in artifact.producers:
                edges.append((run_id, artifact.id))
                run = self.activities[run_id]
                if run_id not in runs_seen:
                    runs_seen[run_id] = run
                    for data_name in run.inputs:
                        upstream = self._artifact(run.case, data_name)
                        edges.append((upstream.id, run_id))
                        frontier.append(upstream)
        return {
            "target": target.id,
            "activities": [run.as_dict() for run in runs_seen.values()],
            "data": [artifact.as_dict() for artifact in data_seen.values()],
            "edges": edges,
        }

    def descendants(self, activity: str, case: str | None = None) -> dict:
        """Forward closure of an activity run: everything derived from
        its outputs, transitively."""
        root = self._resolve_activity(activity, case)
        data_seen: dict[str, DataArtifact] = {}
        runs_seen: dict[str, ActivityRun] = {root.id: root}
        edges: list[tuple[str, str]] = []
        frontier = [root]
        while frontier:
            run = frontier.pop()
            for data_name in run.outputs:
                artifact = self._artifact(run.case, data_name)
                edges.append((run.id, artifact.id))
                if artifact.id in data_seen:
                    continue
                data_seen[artifact.id] = artifact
                for consumer_id in artifact.consumers:
                    edges.append((artifact.id, consumer_id))
                    if consumer_id not in runs_seen:
                        consumer = self.activities[consumer_id]
                        runs_seen[consumer_id] = consumer
                        frontier.append(consumer)
        return {
            "root": root.id,
            "activities": [run.as_dict() for run in runs_seen.values()],
            "data": [artifact.as_dict() for artifact in data_seen.values()],
            "edges": edges,
        }

    # -- export -------------------------------------------------------

    def to_json(self, case: str | None = None) -> dict:
        runs = [
            run.as_dict()
            for run in self.activities.values()
            if case is None or run.case == case
        ]
        data = [
            artifact.as_dict()
            for artifact in self.data.values()
            if case is None or artifact.case == case
        ]
        edges: list[tuple[str, str]] = []
        for run in self.activities.values():
            if case is not None and run.case != case:
                continue
            for name in run.inputs:
                edges.append((f"{run.case}:{name}", run.id))
            for name in run.outputs:
                edges.append((run.id, f"{run.case}:{name}"))
        return {"schema": 1, "activities": runs, "data": data, "edges": edges}

    def to_dot(self, case: str | None = None) -> str:
        payload = self.to_json(case)
        return provenance_dot(payload["activities"], payload["data"], payload["edges"])


_DOT_STATUS_COLOR = {
    "pending": "lightgrey",
    "running": "lightyellow",
    "completed": "lightgreen",
    "failed": "salmon",
}


def _dot_quote(text: str) -> str:
    return '"' + str(text).replace('"', '\\"') + '"'


def provenance_dot(activities, data, edges) -> str:
    """Render activity/data dicts + edges as a Graphviz digraph:
    status-colored boxes for activity runs, ellipses for artifacts."""
    lines = ["digraph provenance {", "  rankdir=LR;"]
    for run in activities:
        color = _DOT_STATUS_COLOR.get(run.get("status", ""), "white")
        label = f"{run['name']}\\n{run.get('status', '')}"
        if run.get("node"):
            label += f"\\n@{run['node']}"
        lines.append(
            f"  {_dot_quote(run['id'])} [shape=box,style=filled,"
            f"fillcolor={color},label={_dot_quote(label)}];"
        )
    for artifact in data:
        shape = "ellipse" if not artifact.get("initial") else "doublecircle"
        lines.append(
            f"  {_dot_quote(artifact['id'])} [shape={shape},label={_dot_quote(artifact['name'])}];"
        )
    for src, dst in edges:
        lines.append(f"  {_dot_quote(src)} -> {_dot_quote(dst)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- post-mortem replay + cross-check ---------------------------------

#: Journal kinds checkable against spans, mapped to the span kinds that
#: should exist in the same trace when both planes were recording.
_SPAN_KINDS_FOR = {
    "case-intake": ("case",),
    "case-complete": ("case",),
    "case-fail": ("case",),
    "plan": ("plan",),
    "compile": ("compile",),
    "replan": ("replan",),
    "dispatch": ("activity",),
    "activity-complete": ("activity",),
    "activity-fail": ("activity",),
    "execute": ("execute",),
    "transfer": ("payload", "transfer", "storage"),
}

#: Journal kinds whose matching span must also share the activity name.
_NAME_CHECKED = {"dispatch", "activity-complete", "activity-fail", "execute"}


def span_agreement(events, recorder) -> dict:
    """Cross-check journal *events* against a live span recorder.

    An event *agrees* when a span of the mapped kind exists in the same
    ``trace_id`` (and, for activity-level events, with the same name).
    Returns exact ``checkable`` / ``matched`` counts, the agreement
    ratio, and the first few disagreements for diagnosis.
    """
    index: dict[tuple, list] = {}
    for span in list(recorder.closed) + list(recorder._open.values()):
        index.setdefault((span.trace_id, span.kind), []).append(span)
    checkable = 0
    matched = 0
    mismatches = []
    for event in events:
        kinds = _SPAN_KINDS_FOR.get(event.kind)
        if kinds is None:
            continue
        checkable += 1
        found = False
        for kind in kinds:
            for span in index.get((event.trace, kind), ()):
                if event.kind in _NAME_CHECKED and span.name != event.attrs.get("activity"):
                    continue
                found = True
                break
            if found:
                break
        if found:
            matched += 1
        elif len(mismatches) < 8:
            mismatches.append({"seq": event.seq, "kind": event.kind, "trace": event.trace})
    agreement = (matched / checkable) if checkable else 1.0
    return {
        "checkable": checkable,
        "matched": matched,
        "agreement": agreement,
        "mismatches": mismatches,
    }


def journal_replay(storage, case_id: str, recorder=None) -> dict:
    """Rebuild a case's provenance purely from its stored journal blob.

    *storage* is the storage service (its direct ``get`` API); nothing
    is read from the live journal, so this is exactly what a post-crash
    coordinator could reconstruct.  With *recorder* given, the rebuilt
    event stream is cross-checked against live spans.
    """
    from repro.errors import StorageError

    try:
        blob = storage.get(journal_storage_key(case_id))
    except StorageError as exc:
        raise ObservabilityError(f"no stored journal for case {case_id!r}: {exc}") from exc
    stored_case, events = decode_events(blob)
    graph = ProvenanceGraph.from_events(stored_case, events)
    result = {
        "case": stored_case,
        "events": len(events),
        "graph": graph,
        "activities": len(graph.activities),
        "data": len(graph.data),
    }
    if recorder is not None:
        result["agreement"] = span_agreement(events, recorder)
    return result


def lineage_jsonl(result: dict) -> str:
    """Serialize a :meth:`ProvenanceGraph.lineage` /
    :meth:`~ProvenanceGraph.descendants` result as JSONL (one node or
    edge per line, key-sorted)."""
    lines = []
    for run in result.get("activities", ()):
        lines.append(json.dumps({"type": "activity", **run}, sort_keys=True, default=str))
    for artifact in result.get("data", ()):
        lines.append(json.dumps({"type": "data", **artifact}, sort_keys=True, default=str))
    for src, dst in result.get("edges", ()):
        lines.append(json.dumps({"type": "edge", "src": src, "dst": dst}, sort_keys=True))
    return "\n".join(lines) + "\n"
