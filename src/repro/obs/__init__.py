"""Workflow telemetry: spans, sim-time gauges, watch rules, exporters.

The observability subsystem on top of the message bus's metrics/trace
plane (see DESIGN.md §5f):

* :mod:`repro.obs.spans` — the :class:`SpanRecorder` attached to every
  :class:`~repro.grid.environment.GridEnvironment` (disabled by default),
  hierarchical sim-time spans, and threshold :class:`WatchRule` alerts;
* :mod:`repro.obs.gauges` — the opt-in :class:`GaugeSampler` feeding
  per-node/per-agent gauges into :class:`~repro.sim.stats.TimeSeries`;
* :mod:`repro.obs.profile` — per-case time attribution
  (:func:`case_profile`, served as monitoring's ``case-profile`` RPC);
* :mod:`repro.obs.export` — Chrome trace-event JSON and flat JSONL
  exporters (``repro-grid trace export``).
"""

from repro.obs.export import (
    chrome_trace,
    spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.gauges import GaugeSampler
from repro.obs.profile import case_profile, interval_union, render_profile
from repro.obs.spans import (
    DEFAULT_SPAN_CAPACITY,
    Alert,
    Span,
    SpanRecorder,
    WatchRule,
)

__all__ = [
    "Alert",
    "DEFAULT_SPAN_CAPACITY",
    "GaugeSampler",
    "Span",
    "SpanRecorder",
    "WatchRule",
    "case_profile",
    "chrome_trace",
    "interval_union",
    "render_profile",
    "spans_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
