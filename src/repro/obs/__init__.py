"""Workflow telemetry: spans, gauges, case journal, provenance, exporters.

The observability subsystem on top of the message bus's metrics/trace
plane (see DESIGN.md §5f and §5k):

* :mod:`repro.obs.spans` — the :class:`SpanRecorder` attached to every
  :class:`~repro.grid.environment.GridEnvironment` (disabled by default),
  hierarchical sim-time spans, and threshold :class:`WatchRule` alerts;
* :mod:`repro.obs.gauges` — the opt-in :class:`GaugeSampler` feeding
  per-node/per-agent gauges into :class:`~repro.sim.stats.TimeSeries`;
* :mod:`repro.obs.profile` — per-case time attribution
  (:func:`case_profile`, served as monitoring's ``case-profile`` RPC);
* :mod:`repro.obs.journal` — the opt-in append-only per-case
  :class:`CaseJournal` (the case flight recorder), mirrored through the
  storage service as schema-versioned JSONL blobs;
* :mod:`repro.obs.provenance` — the :class:`ProvenanceGraph` derived
  from the journal (activity → data-artifact DAG with lineage /
  descendants / timeline queries) and the :func:`journal_replay`
  post-mortem reconstructor cross-checked against live spans;
* :mod:`repro.obs.export` — Chrome trace-event JSON and flat JSONL
  exporters (``repro-grid trace export``).
"""

from repro.obs.export import (
    chrome_trace,
    spans_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.gauges import GaugeSampler
from repro.obs.journal import (
    JOURNAL_SCHEMA_VERSION,
    CaseJournal,
    JournalEvent,
    decode_events,
    encode_events,
    journal_storage_key,
)
from repro.obs.profile import case_profile, interval_union, render_profile
from repro.obs.provenance import (
    ActivityRun,
    DataArtifact,
    ProvenanceGraph,
    journal_replay,
    lineage_jsonl,
    provenance_dot,
    span_agreement,
)
from repro.obs.spans import (
    DEFAULT_SPAN_CAPACITY,
    Alert,
    Span,
    SpanRecorder,
    WatchRule,
)

__all__ = [
    "Alert",
    "ActivityRun",
    "CaseJournal",
    "DEFAULT_SPAN_CAPACITY",
    "DataArtifact",
    "GaugeSampler",
    "JOURNAL_SCHEMA_VERSION",
    "JournalEvent",
    "ProvenanceGraph",
    "Span",
    "SpanRecorder",
    "WatchRule",
    "case_profile",
    "chrome_trace",
    "decode_events",
    "encode_events",
    "interval_union",
    "journal_replay",
    "journal_storage_key",
    "lineage_jsonl",
    "provenance_dot",
    "render_profile",
    "span_agreement",
    "spans_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
