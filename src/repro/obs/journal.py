"""Append-only, schema-versioned per-case event journal.

The :class:`SpanRecorder` answers *how long* each stage of a case took;
the journal answers *what happened*: an ordered, replayable record of
case intake, the plan chosen (with its PR-8 ``plan_source``), every
compile, every :class:`~repro.process.program.ActivityStep` dispatch /
completion / failure with the executing node and the input/output data
keys, replans, data transfers, and refusals.  Events are emitted from
coordination, containers, and the transfer planner at the same hook
points as spans, and join across agents the same way spans do — by the
message ``trace_id`` (container-side events use :meth:`append_traced`
against the binding installed at case intake; no journal ids ever ride
in message content).

Recording follows the :class:`~repro.obs.spans.SpanRecorder` contract:

* **Default-off.**  Every emission site guards on :attr:`enabled`;
  a disabled journal does pure attribute reads and returns ``None``.
* **Never schedules.**  Appending is plain arithmetic on in-memory
  lists — it sends no messages and creates no simulation events, so a
  *recording* journal (``journal="record"``) leaves the protocol trace
  byte-identical to a disabled one.  Only *mirroring* (``journal=True``)
  talks to the storage service, at case completion, and that traffic is
  an explicitly observable part of the protocol.
* **Exact accounting.**  ``total_appended`` / ``total_flushed`` /
  ``cases_evicted`` / ``events_evicted`` / ``events_lost`` /
  ``unbound_dropped`` / ``cases_synced`` are exact counters; the LRU
  case cap evicts whole cases oldest-first and counts every event it
  drops (``events_lost`` additionally counts evicted events that had
  not reached the storage mirror).

The wire encoding (:func:`encode_events` / :func:`decode_events`) is
deliberately boring: a UTF-8 JSONL blob — one compact, key-sorted JSON
object per line under a schema-versioned header line — so a journal
written by one coordinator shard can be decoded by any replica (lazy
sync via :meth:`absorb`) and by the post-mortem tools in
:mod:`repro.obs.provenance` long after the producing environment is
gone.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from collections.abc import Iterable

from repro.errors import ObservabilityError

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "CaseJournal",
    "JournalEvent",
    "decode_events",
    "encode_events",
    "journal_storage_key",
]

#: Bump on any incompatible change to the event dict shape; decoders
#: refuse blobs with a different major version.
JOURNAL_SCHEMA_VERSION = 1

#: Storage-key namespace for mirrored journals (one blob per case).
JOURNAL_KEY_PREFIX = "journal/"

#: Default LRU cap on resident cases (whole cases, not events).
DEFAULT_JOURNAL_CASES = 4096


def journal_storage_key(case_id: str) -> str:
    """The storage-service key a case's journal blob is mirrored under."""
    return f"{JOURNAL_KEY_PREFIX}{case_id}"


class JournalEvent:
    """One immutable journal entry.

    ``seq`` is a journal-global monotonic sequence number (total order
    across cases), ``time`` the simulation time of emission, ``trace``
    the message ``trace_id`` the event joins the span/message streams
    by, and ``attrs`` the kind-specific payload (data keys, node ids,
    plan source, ...).
    """

    __slots__ = ("seq", "case", "kind", "time", "agent", "trace", "attrs")

    def __init__(self, seq, case, kind, time, agent="", trace=None, attrs=None):
        self.seq = seq
        self.case = case
        self.kind = kind
        self.time = time
        self.agent = agent
        self.trace = trace
        self.attrs = attrs or {}

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "case": self.case,
            "kind": self.kind,
            "time": self.time,
            "agent": self.agent,
            "trace": self.trace,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JournalEvent({self.seq}, {self.case!r}, {self.kind!r}, t={self.time})"


def encode_events(case_id: str, events: Iterable[JournalEvent]) -> bytes:
    """Encode *events* as the schema-versioned UTF-8 JSONL mirror blob.

    Line 1 is a header record (schema version, case id, event count);
    each following line is one event, compact and key-sorted so the
    encoding of a given journal is byte-stable.
    """
    rows = list(events)
    header = {
        "schema": JOURNAL_SCHEMA_VERSION,
        "case": case_id,
        "events": len(rows),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for event in rows:
        lines.append(
            json.dumps(
                event.as_dict(), sort_keys=True, separators=(",", ":"), default=str
            )
        )
    return ("\n".join(lines) + "\n").encode("utf-8")


def decode_events(blob) -> tuple[str, list[JournalEvent]]:
    """Decode a mirror blob back into ``(case_id, events)``.

    Raises :class:`~repro.errors.ObservabilityError` on a malformed
    blob or a schema-version mismatch.
    """
    if isinstance(blob, bytes):
        blob = blob.decode("utf-8")
    if not isinstance(blob, str):
        raise ObservabilityError(f"journal blob must be bytes or str, got {type(blob).__name__}")
    lines = [line for line in blob.split("\n") if line]
    if not lines:
        raise ObservabilityError("empty journal blob")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"unreadable journal header: {exc}") from exc
    if not isinstance(header, dict) or "schema" not in header:
        raise ObservabilityError("journal blob missing schema header")
    if header["schema"] != JOURNAL_SCHEMA_VERSION:
        raise ObservabilityError(
            f"journal schema {header['schema']} != supported {JOURNAL_SCHEMA_VERSION}"
        )
    case_id = header.get("case", "")
    events = []
    for line in lines[1:]:
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"unreadable journal event: {exc}") from exc
        events.append(
            JournalEvent(
                row.get("seq", 0),
                row.get("case", case_id),
                row.get("kind", ""),
                row.get("time", 0.0),
                row.get("agent", ""),
                row.get("trace"),
                row.get("attrs") or {},
            )
        )
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise ObservabilityError(
            f"journal blob declares {declared} events, found {len(events)}"
        )
    return case_id, events


class CaseJournal:
    """Bounded in-memory journal recorder with exact accounting."""

    def __init__(self, engine, enabled=False, mirror=False, max_cases=DEFAULT_JOURNAL_CASES):
        self.engine = engine
        self.enabled = enabled
        #: Whether case completion mirrors the journal into storage.
        self.mirror = mirror
        self.max_cases = max(1, int(max_cases))
        self._cases: OrderedDict[str, list[JournalEvent]] = OrderedDict()
        self._trace_to_case: dict[str, str] = {}
        self._case_to_trace: dict[str, str] = {}
        #: Per-case count of events already mirrored into storage.
        self._flushed: dict[str, int] = {}
        self._seq = 0
        self.total_appended = 0
        self.total_flushed = 0
        self.cases_evicted = 0
        self.events_evicted = 0
        #: Evicted events that had never reached the storage mirror.
        self.events_lost = 0
        #: ``append_traced`` calls whose trace had no case binding.
        self.unbound_dropped = 0
        #: Cases re-materialized from the storage mirror via ``absorb``.
        self.cases_synced = 0

    # -- recording ----------------------------------------------------

    def bind(self, trace_id, case_id) -> None:
        """Bind a message ``trace_id`` to *case_id* (done at intake), so
        remote emissions with the same trace land in the case bucket."""
        if not self.enabled or trace_id is None:
            return
        self._trace_to_case[trace_id] = case_id
        self._case_to_trace.setdefault(case_id, trace_id)

    def case_for_trace(self, trace_id):
        return self._trace_to_case.get(trace_id)

    def trace_for_case(self, case_id):
        return self._case_to_trace.get(case_id)

    def append(self, case_id, kind, agent="", trace_id=None, **attrs):
        """Append one event to *case_id*'s journal; ``None`` when disabled.

        Pure in-memory arithmetic: never sends a message, never creates
        a simulation event.  ``trace_id`` defaults to the trace bound at
        intake so every coordinator-side event carries the case trace.
        """
        if not self.enabled:
            return None
        if trace_id is None:
            trace_id = self._case_to_trace.get(case_id)
        event = JournalEvent(
            self._seq, case_id, kind, self.engine.now, agent, trace_id, attrs
        )
        self._seq += 1
        bucket = self._cases.get(case_id)
        if bucket is None:
            self._cases[case_id] = bucket = []
        else:
            self._cases.move_to_end(case_id)
        bucket.append(event)
        self.total_appended += 1
        self._evict()
        return event

    def append_traced(self, trace_id, kind, agent="", **attrs):
        """Append an event resolved through the trace→case binding.

        Used by agents that never see the case id (containers, the
        transfer planner): the dispatch RPC inherits the case's
        ``trace_id``, which was bound at intake.  Unbindable events are
        dropped and counted, never misfiled.
        """
        if not self.enabled:
            return None
        case_id = self._trace_to_case.get(trace_id)
        if case_id is None:
            self.unbound_dropped += 1
            return None
        return self.append(case_id, kind, agent=agent, trace_id=trace_id, **attrs)

    # -- retention ----------------------------------------------------

    def _evict(self) -> None:
        while len(self._cases) > self.max_cases:
            case_id, events = self._cases.popitem(last=False)
            flushed = self._flushed.pop(case_id, 0)
            self.cases_evicted += 1
            self.events_evicted += len(events)
            self.events_lost += max(0, len(events) - flushed)
            trace_id = self._case_to_trace.pop(case_id, None)
            if trace_id is not None:
                self._trace_to_case.pop(trace_id, None)

    def purge(self) -> tuple[int, int]:
        """Drop every resident case; returns ``(cases, events)`` purged.

        Counters other than the purge return value are left intact —
        purging is administrative, not eviction.
        """
        cases = len(self._cases)
        events = sum(len(bucket) for bucket in self._cases.values())
        self._cases.clear()
        self._trace_to_case.clear()
        self._case_to_trace.clear()
        self._flushed.clear()
        return cases, events

    # -- mirroring ----------------------------------------------------

    def mark_flushed(self, case_id) -> int:
        """Record that *case_id*'s current events reached the storage
        mirror; returns the number newly flushed."""
        events = self._cases.get(case_id)
        if events is None:
            return 0
        already = self._flushed.get(case_id, 0)
        fresh = max(0, len(events) - already)
        self._flushed[case_id] = len(events)
        self.total_flushed += fresh
        return fresh

    def pending_flush(self, case_id) -> int:
        events = self._cases.get(case_id)
        if events is None:
            return 0
        return max(0, len(events) - self._flushed.get(case_id, 0))

    def absorb(self, case_id, events: list[JournalEvent]) -> None:
        """Install a decoded mirror blob for a non-resident case (lazy
        sync: shards and replicas share one store, so a case enacted —
        or evicted — elsewhere is materialized on first query)."""
        if case_id in self._cases:
            return
        self._cases[case_id] = list(events)
        # A synced case is already fully mirrored by definition.
        self._flushed[case_id] = len(events)
        self.cases_synced += 1
        for event in events:
            if event.trace is not None:
                self._trace_to_case.setdefault(event.trace, case_id)
                self._case_to_trace.setdefault(case_id, event.trace)
                break
        self._evict()

    # -- queries ------------------------------------------------------

    def has_case(self, case_id) -> bool:
        return case_id in self._cases

    def events(self, case_id) -> list[JournalEvent]:
        return list(self._cases.get(case_id, ()))

    def case_ids(self) -> tuple[str, ...]:
        return tuple(self._cases)

    def encode_case(self, case_id) -> bytes:
        return encode_events(case_id, self._cases.get(case_id, ()))

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "mirror": self.mirror,
            "max_cases": self.max_cases,
            "cases": len(self._cases),
            "events": sum(len(bucket) for bucket in self._cases.values()),
            "appended": self.total_appended,
            "flushed": self.total_flushed,
            "cases_evicted": self.cases_evicted,
            "events_evicted": self.events_evicted,
            "events_lost": self.events_lost,
            "unbound_dropped": self.unbound_dropped,
            "cases_synced": self.cases_synced,
        }

    def clear(self) -> None:
        """Full reset, counters included (tests and bench harnesses)."""
        self.purge()
        self._seq = 0
        self.total_appended = 0
        self.total_flushed = 0
        self.cases_evicted = 0
        self.events_evicted = 0
        self.events_lost = 0
        self.unbound_dropped = 0
        self.cases_synced = 0
