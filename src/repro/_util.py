"""Small shared utilities: id generation, RNG plumbing, text helpers.

The library is fully deterministic when seeded: every stochastic component
(GP planner, workload generators, failure models, virolab synthetic data)
accepts either a seed or a :class:`numpy.random.Generator`.  ``as_rng``
normalizes both forms.
"""

from __future__ import annotations

import itertools
import re
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

import numpy as np

__all__ = [
    "IdGenerator",
    "as_rng",
    "pairwise",
    "stable_unique",
    "indent",
    "valid_identifier",
]

T = TypeVar("T")

_IDENT_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_\-]*$")


def valid_identifier(name: str) -> bool:
    """Return True if *name* is usable as an activity/data/service name.

    The Section-2 grammar restricts names to letters followed by letters and
    digits; we additionally allow ``_`` and ``-`` which appear in the paper's
    own examples (e.g. ``PD-3DSD``).
    """
    return bool(_IDENT_RE.match(name))


class IdGenerator:
    """Deterministic, prefix-scoped id factory.

    Produces ids like ``A1, A2, ...`` per prefix.  Used by the ontology KB,
    the grid environment and the workload generators so that repeated runs
    with the same inputs produce identical identifiers (important for
    reproducible experiment tables).
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}

    def next(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count(1))
        return f"{prefix}{next(counter)}"

    def reset(self) -> None:
        self._counters.clear()


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed-or-generator argument into a Generator.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a
    new PCG64; an existing Generator is passed through unchanged (so nested
    components share one stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def pairwise(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """Yield consecutive pairs (a, b), (b, c), ... of *items*."""
    return zip(items, items[1:])


def stable_unique(items: Iterable[T]) -> list[T]:
    """Deduplicate preserving first-seen order."""
    seen: set = set()
    out: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def indent(text: str, prefix: str = "  ") -> str:
    """Indent every non-empty line of *text* by *prefix*."""
    return "\n".join(prefix + line if line else line for line in text.splitlines())
