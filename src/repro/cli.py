"""Command-line interface: regenerate paper tables/figures from a shell.

Installed as ``repro-grid`` (see pyproject).  Subcommands:

* ``table1`` / ``table2``    — the evaluation tables
* ``figures``                — all figure drivers (or a named subset)
* ``ablations``              — the A1-A5 studies (slow at full budget)
* ``casestudy``              — enact the real reconstruction on the grid
* ``validate FILE``          — parse + validate a process-description file
* ``render [--out DIR]``     — Graphviz DOT for Figures 10-11
* ``trace export``           — run a spans-on workload, export Chrome
  trace-event JSON + flat span JSONL
* ``profile [CASE]``         — per-case sim-time attribution table
* ``planlib stats|list|purge`` — run the repeated-goal planning mix and
  inspect / empty the warm-start plan library over in-band RPC
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import table1

    print(table1().render())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments import table2

    result = table2(runs=args.runs, base_seed=args.seed, workers=args.workers)
    print(result.table.render())
    return 0


_FIGURES = (
    "fig1", "fig2", "fig3", "fig4_7", "fig8", "fig9", "fig10_11", "fig12_13",
)


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro import experiments as exp

    drivers = {
        "fig1": exp.fig1_architecture,
        "fig2": lambda: exp.fig2_planning_protocol()[0],
        "fig3": lambda: exp.fig3_replanning_protocol()[0],
        "fig4_7": exp.fig4_to_7_conversions,
        "fig8": exp.fig8_crossover,
        "fig9": exp.fig9_mutation,
        "fig10_11": exp.fig10_11_case_study,
        "fig12_13": exp.fig12_13_ontology,
    }
    wanted = args.only or list(drivers)
    for name in wanted:
        if name not in drivers:
            print(f"unknown figure {name!r}; choices: {', '.join(drivers)}",
                  file=sys.stderr)
            return 2
        print(drivers[name]().render())
        print()
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro import experiments as exp
    from repro.planner import GPConfig

    config = (
        GPConfig()
        if args.full
        else GPConfig(population_size=60, generations=10)
    )
    seeds = range(args.seeds)
    workers = args.workers
    print(exp.weight_sweep(seeds=seeds, config=config, workers=workers).render())
    print()
    print(exp.smax_sweep(seeds=seeds, config=config, workers=workers).render())
    print()
    print(exp.budget_sweep(seeds=seeds, workers=workers).render())
    print()
    print(
        exp.baseline_comparison(
            seeds=seeds, config=config, workers=workers
        ).render()
    )
    print()
    print(exp.replanning_sweep(cases=max(2, args.seeds)).render())
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.virolab import (
        planning_problem,
        process_description,
        setup_virolab_case,
        virolab_grid,
    )

    env, core, fleet = virolab_grid(containers=args.containers)
    case = setup_virolab_case(
        core.storage, size=args.size, count=args.images, seed=args.seed
    )
    outcome: dict = {}

    def submit():
        reply = yield from core.coordination.call(
            "coordination",
            "execute-task",
            {
                "process": process_description(),
                "initial_data": case["initial_data"],
                "payload_keys": case["payload_keys"],
                "work": case["work"],
                "problem": planning_problem(),
                "task": "3DSD",
            },
        )
        outcome.update(reply)

    env.engine.spawn(submit(), "user")
    env.run(max_events=10_000_000)
    print(f"status: {outcome['status']}")
    print(f"activities run: {outcome['activities_run']}")
    print(f"final resolution: {outcome['data']['D12']['Value']:.2f} A")
    print(f"simulated makespan: {env.engine.now:.1f} s")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    """Write Graphviz DOT files for the Figure-10 ATN and Figure-11 tree."""
    import pathlib

    from repro.process.dot import plan_tree_to_dot, process_to_dot
    from repro.virolab import plan_tree, process_description

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / "fig10_process.dot").write_text(
        process_to_dot(process_description()) + "\n"
    )
    (out / "fig11_plan_tree.dot").write_text(
        plan_tree_to_dot(plan_tree(), name="fig11") + "\n"
    )
    print(f"wrote {out / 'fig10_process.dot'}")
    print(f"wrote {out / 'fig11_plan_tree.dot'}")
    print("render with: dot -Tpng <file> -o <file>.png")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.errors import ProcessError
    from repro.process import ast_to_process, parse_process, validate_process

    try:
        text = open(args.file).read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    try:
        pd = ast_to_process(parse_process(text), name=args.file)
        validate_process(pd)
    except ProcessError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(pd.end_user_activities())} end-user + "
        f"{len(pd.flow_control_activities())} flow-control activities, "
        f"{len(pd.transitions)} transitions"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Semantic analysis of a process-description file.

    Exit codes: 0 = clean (or warnings only), 1 = error findings (any
    finding at all under ``--fail-on-warn``), 2 = cannot read/parse the
    file or its bindings sidecar.
    """
    import json

    from repro.analysis import (
        ProcessBindings,
        analyze_source,
        has_errors,
        load_bindings,
        render_findings,
    )
    from repro.errors import ProcessError

    try:
        text = open(args.file).read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    bindings = ProcessBindings()
    if args.bindings:
        try:
            bindings = load_bindings(args.bindings)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load bindings {args.bindings}: {exc}", file=sys.stderr)
            return 2
    try:
        findings = analyze_source(text, bindings, name=args.file)
    except ProcessError as exc:
        print(f"cannot parse {args.file}: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {
                    "file": args.file,
                    "findings": [f.to_dict() for f in findings],
                    "errors": sum(f.severity.value == "error" for f in findings),
                    "warnings": sum(
                        f.severity.value == "warning" for f in findings
                    ),
                },
                indent=2,
            )
        )
    elif findings:
        print(render_findings(findings))
    else:
        print(f"OK: {args.file}: no findings")
    if args.fail_on_warn and findings:
        return 1
    return 1 if has_errors(findings) else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run the many-cases workload with spans on and export the telemetry."""
    import pathlib

    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.workloads.many_cases import run_many_cases

    if args.trace_command != "export":  # pragma: no cover - argparse enforces
        print(f"unknown trace subcommand {args.trace_command!r}", file=sys.stderr)
        return 2
    result = run_many_cases(
        cases=args.cases,
        containers=args.containers,
        spans=True,
        gauge_period=args.gauge_period,
    )
    recorder = result["env"].spans
    source = recorder
    exported = recorder.total_closed
    if args.case is not None:
        # One case only: its span tree plus every remote span (container,
        # storage, planner) joined to it by trace_id.
        roots = recorder.spans(kind="case", name=args.case)
        if not roots:
            print(f"no case span named {args.case!r}", file=sys.stderr)
            return 1
        traces = {root.trace_id for root in roots if root.trace_id is not None}
        source = [span for span in recorder.closed if span.trace_id in traces]
        exported = len(source)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    chrome_path = out / "trace.chrome.json"
    jsonl_path = out / "spans.jsonl"
    events = write_chrome_trace(chrome_path, source)
    lines = write_jsonl(jsonl_path, source)
    scope = f" (case {args.case})" if args.case is not None else ""
    print(
        f"{result['completed']}/{result['cases']} cases, "
        f"{exported} spans exported{scope} "
        f"(makespan {result['makespan']:.1f}s sim)"
    )
    print(f"wrote {chrome_path} ({events} events; open in chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {jsonl_path} ({lines} lines)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Enact the workload with spans on, then print one case's profile.

    The profile is fetched from the monitoring service over in-band RPC
    (the ``case-profile`` action) — the same path an external operator
    tool would use — not by poking the recorder directly.
    """
    from repro.obs.profile import render_profile
    from repro.workloads.many_cases import run_many_cases

    result = run_many_cases(
        cases=args.cases, containers=args.containers, spans=True
    )
    env, services = result["env"], result["services"]
    profile: dict = {}

    def fetch():
        reply = yield from services.coordination.call(
            "monitoring", "case-profile", {"case": args.case}
        )
        profile.update(reply)

    env.engine.spawn(fetch(), "profile-query")
    env.run()
    print(render_profile(profile))
    return 0


def _cmd_planlib(args: argparse.Namespace) -> int:
    """Run the repeated-goal planning mix, then query the plan library.

    The library lives inside the planning service, so the query goes over
    in-band RPC (``library-stats`` / ``library-list`` / ``library-purge``)
    — the same path an external operator tool would use.
    """
    import json

    from repro.workloads.plan_mix import run_plan_mix

    result = run_plan_mix(
        requests=args.requests,
        distinct=args.distinct,
        kill_after=args.kill_after,
    )
    counts = result["counts"]
    print(
        f"{result['requests']} planning requests over {args.distinct} goal "
        f"variants: {counts['hit']} hits, {counts['repair']} repairs, "
        f"{counts['seed']} seeded, {counts['miss']} misses "
        f"({counts['verify']} analyzer re-verifications)"
    )
    if result["killed"]:
        print(f"service killed mid-run: SVC-{result['killed']} "
              f"(stale entries repaired, never enacted blind)")

    env, services = result["env"], result["services"]
    action = f"library-{args.planlib_command}"
    content = {"limit": args.limit} if args.planlib_command == "list" else {}
    reply: dict = {}

    def query():
        response = yield from services.coordination.call(
            services.coordination.planner_name, action, content
        )
        reply.update(response)

    env.engine.spawn(query(), "planlib-query")
    env.run()

    if args.planlib_command == "stats":
        print(json.dumps(reply, indent=2, sort_keys=True))
    elif args.planlib_command == "list":
        rows = reply["entries"]
        if not rows:
            print("library is empty")
        for row in rows:
            print(
                f"{row['digest'][:12]}/{row['goal_sig'][:12]}  "
                f"{row['problem']:<16} fitness={row['fitness']:.3f} "
                f"size={row['size']} uses={row['uses']} "
                f"stored_at={row['stored_at']:.1f}"
            )
    else:
        print(f"purged {reply['purged']} entries (memory + storage mirror)")
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    """Enact a journal-on workload, then print one case's flight record.

    The timeline is fetched from the monitoring service over in-band RPC
    (the ``journal`` action — the same path an external operator tool
    would use), which lazily syncs non-resident cases from the storage
    mirror; ``--purge`` then exercises the ``journal-purge`` retention
    RPC and prints its exact counters.
    """
    import json

    from repro.workloads.many_cases import run_many_cases

    result = run_many_cases(
        cases=args.cases, containers=args.containers, spans=True, journal=True
    )
    env, services = result["env"], result["services"]
    reply: dict = {}

    def query():
        response = yield from services.coordination.call(
            "monitoring", "journal", {"case": args.case}
        )
        reply.update(response)
        if args.purge:
            purged = yield from services.coordination.call(
                "monitoring", "journal-purge", {}
            )
            reply["purge"] = purged

    env.engine.spawn(query(), "journal-query")
    env.run()

    events = reply.get("events", [])
    if not events:
        print(f"no journal events for case {args.case!r}", file=sys.stderr)
        return 1
    print(f"case {args.case}: {len(events)} events")
    for event in events:
        attrs = dict(event["attrs"])
        activity = attrs.pop("activity", "")
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        print(
            f"  {event['seq']:5d} t={event['time']:9.3f} "
            f"{event['kind']:<18} {event['agent']:<14} "
            f"{activity:<14} {detail}"
        )
    print(json.dumps({"stats": reply["stats"]}, indent=2, sort_keys=True))
    if args.purge:
        purge = reply["purge"]
        print(
            f"purged {purge['purged_cases']} cases / "
            f"{purge['purged_events']} events "
            f"({purge['storage_deleted']} mirrored blobs deleted)"
        )
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    """Enact a journal-on workload, then print a data artifact's lineage
    (or an activity's descendants) as DOT or JSON, via monitoring RPC."""
    import json

    from repro.obs.provenance import provenance_dot

    from repro.workloads.many_cases import run_many_cases

    result = run_many_cases(
        cases=args.cases, containers=args.containers, spans=True, journal=True
    )
    env, services = result["env"], result["services"]
    reply: dict = {}
    error: list[str] = []

    def query():
        from repro.errors import ServiceError

        content = {"key": args.key}
        if args.case is not None:
            content["case"] = args.case
        if args.descendants:
            content["direction"] = "descendants"
        try:
            response = yield from services.coordination.call(
                "monitoring", "lineage", content
            )
        except ServiceError as exc:
            error.append(str(exc))
            return
        reply.update(response)

    env.engine.spawn(query(), "lineage-query")
    env.run()

    if error:
        print(error[0], file=sys.stderr)
        return 1
    if args.format == "dot":
        print(provenance_dot(reply["activities"], reply["data"], reply["edges"]))
    else:
        payload = {
            k: reply[k]
            for k in ("key", "activities", "data", "edges")
            if k in reply
        }
        payload["root"] = reply.get("root", reply.get("target"))
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_cases(args: argparse.Namespace) -> int:
    """Enact the many-cases workload, optionally on the sharded grid."""
    from repro.workloads.many_cases import run_many_cases, shard_assignment

    result = run_many_cases(
        cases=args.cases,
        containers=args.containers,
        rounds=args.rounds,
        tracing=not args.no_tracing,
        shards=args.shards,
    )
    print(
        f"{result['completed']}/{result['cases']} cases completed, "
        f"{result['activities_run']} activities, "
        f"makespan {result['makespan']:.1f}s sim"
    )
    if args.shards > 1:
        per_shard = {
            entry["shard"]: entry["cases"] for entry in result["shards"]
        }
        assignment = shard_assignment(args.cases, args.shards)
        for shard in sorted(assignment):
            sample = ", ".join(f"case-{i}" for i in assignment[shard][:3])
            more = len(assignment[shard]) - 3
            suffix = f", +{more} more" if more > 0 else ""
            print(
                f"  {shard}: {per_shard.get(shard, 0)} cases "
                f"({sample}{suffix})"
            )
        if result.get("pool_error"):
            print(f"  (worker pool unavailable: {result['pool_error']}; "
                  f"shards ran serially in-process)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-grid",
        description="Metainformation & workflow management for grids "
        "(IPDPS 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table-1 parameter settings")

    p2 = sub.add_parser("table2", help="run the Section-5 experiment")
    p2.add_argument("--runs", type=int, default=10)
    p2.add_argument("--seed", type=int, default=0)
    p2.add_argument("--workers", type=int, default=0,
                    help="process-pool workers for seed-parallel runs "
                    "(0 = serial; results are identical either way)")

    pf = sub.add_parser("figures", help="regenerate figure tables")
    pf.add_argument("only", nargs="*", help=f"subset of: {', '.join(_FIGURES)}")

    pa = sub.add_parser("ablations", help="run the A1-A5 ablation studies")
    pa.add_argument("--seeds", type=int, default=3)
    pa.add_argument("--full", action="store_true",
                    help="use the full Table-1 GP budget (slow)")
    pa.add_argument("--workers", type=int, default=0,
                    help="process-pool workers for seed-parallel sweeps "
                    "(0 = serial; results are identical either way)")

    pc = sub.add_parser("casestudy", help="enact the real reconstruction")
    pc.add_argument("--containers", type=int, default=3)
    pc.add_argument("--size", type=int, default=24)
    pc.add_argument("--images", type=int, default=40)
    pc.add_argument("--seed", type=int, default=0)

    pv = sub.add_parser("validate", help="validate a process-description file")
    pv.add_argument("file")

    pl = sub.add_parser(
        "lint", help="semantic analysis of a process-description file"
    )
    pl.add_argument("file", help="path to a .process file")
    pl.add_argument(
        "--bindings",
        default=None,
        help="JSON sidecar with initial data, activity bindings and services",
    )
    pl.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    pl.add_argument(
        "--fail-on-warn",
        action="store_true",
        help="exit 1 on any finding, warnings included (CI strict mode)",
    )

    pr = sub.add_parser("render", help="write DOT files for Figures 10-11")
    pr.add_argument("--out", default="figures")

    pt = sub.add_parser("trace", help="span-telemetry export")
    tsub = pt.add_subparsers(dest="trace_command", required=True)
    te = tsub.add_parser(
        "export", help="run a spans-on workload and export Chrome/JSONL traces"
    )
    te.add_argument("--cases", type=int, default=16)
    te.add_argument("--containers", type=int, default=4)
    te.add_argument("--gauge-period", type=float, default=5.0)
    te.add_argument("--out", default="traces")
    te.add_argument(
        "--case", default=None, metavar="CASE_ID",
        help="export only this case's spans (its tree plus remote spans "
        "joined by trace_id) instead of the full recorder",
    )

    pp = sub.add_parser(
        "profile", help="per-case sim-time attribution (spans-on workload)"
    )
    pp.add_argument("case", nargs="?", default="case-0",
                    help="case name to profile (default: case-0)")
    pp.add_argument("--cases", type=int, default=16)
    pp.add_argument("--containers", type=int, default=4)

    pb = sub.add_parser(
        "planlib",
        help="run the repeated-goal planning mix and query the plan library",
    )
    bsub = pb.add_subparsers(dest="planlib_command", required=True)
    for name, text in (
        ("stats", "print entry count, cap and hit/repair/seed/miss counters"),
        ("list", "print entries, most-recently-used first"),
        ("purge", "drop every entry and its persistent-storage mirror"),
    ):
        bq = bsub.add_parser(name, help=text)
        bq.add_argument("--requests", type=int, default=12)
        bq.add_argument("--distinct", type=int, default=4)
        bq.add_argument(
            "--kill-after", type=int, default=None, metavar="N",
            help="after request N, remove the registered grid service the "
            "stored variant-0 plan uses, staling that entry (the next hit "
            "re-verifies E501 and is locally repaired)",
        )
        if name == "list":
            bq.add_argument("--limit", type=int, default=None)

    pj = sub.add_parser(
        "journal",
        help="enact a journal-on workload and print one case's flight record",
    )
    pj.add_argument("case", nargs="?", default="case-0",
                    help="case id to show (default: case-0)")
    pj.add_argument("--cases", type=int, default=16)
    pj.add_argument("--containers", type=int, default=4)
    pj.add_argument(
        "--purge", action="store_true",
        help="after printing, run the journal-purge retention RPC "
        "(drops resident cases and deletes storage-mirrored blobs)",
    )

    pg = sub.add_parser(
        "lineage",
        help="print a data artifact's provenance lineage as DOT or JSON",
    )
    pg.add_argument("key", help="artifact id (case-0:out), bare data name, "
                    "or payload storage key")
    pg.add_argument("--case", default=None,
                    help="scope the search to one case id")
    pg.add_argument(
        "--descendants", action="store_true",
        help="treat KEY as an activity and print its forward closure",
    )
    pg.add_argument(
        "--format", choices=("dot", "json"), default="dot",
        help="output format (default: dot)",
    )
    pg.add_argument("--cases", type=int, default=16)
    pg.add_argument("--containers", type=int, default=4)

    pk = sub.add_parser(
        "cases", help="enact the many-cases workload (optionally sharded)"
    )
    pk.add_argument("--cases", type=int, default=32)
    pk.add_argument("--containers", type=int, default=4)
    pk.add_argument("--rounds", type=int, default=3)
    pk.add_argument("--no-tracing", action="store_true",
                    help="router fast path (no per-delivery trace events)")
    pk.add_argument(
        "--shards", type=int, default=0,
        help="coordination shards: each case is assigned to a shard by "
        "consistent hash of its case id (case-<index>) over a ring of "
        "labels s0..s{N-1}, so the case->shard mapping is deterministic "
        "and independent of population size or enactment order; 1 runs "
        "the single-shard grid (byte-identical traces to the default), "
        "0 the unsharded grid",
    )

    return parser


_HANDLERS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figures": _cmd_figures,
    "ablations": _cmd_ablations,
    "casestudy": _cmd_casestudy,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
    "render": _cmd_render,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "planlib": _cmd_planlib,
    "journal": _cmd_journal,
    "lineage": _cmd_lineage,
    "cases": _cmd_cases,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
