"""The GP planning service core (paper Section 3).

Public surface: :class:`~repro.planner.problem.PlanningProblem` /
:class:`~repro.planner.problem.ActivitySpec` define ``P = {Sinit, G, T}``;
:class:`~repro.planner.gp.GPPlanner` runs the Section-3.4 loop;
:class:`~repro.planner.fitness.PlanEvaluator` scores plans by Eqs. 1-4;
:mod:`repro.planner.baselines` holds comparison planners.
"""

from repro.planner.baselines import forward_search, hill_climb, random_search
from repro.planner.config import GPConfig, table1_config
from repro.planner.engine import EvaluationEngine
from repro.planner.fitness import Fitness, FitnessWeights, PlanEvaluator, evaluate_tree
from repro.planner.gp import GenerationStats, GPPlanner, PlanningResult
from repro.planner.library import (
    PlanEntry,
    PlanLibrary,
    goal_signature,
    library_key,
    problem_digest,
    substitution_map,
)
from repro.planner.operators import crossover, mutate, random_node_path
from repro.planner.problem import ActivitySpec, PlanningProblem
from repro.planner.repair import (
    RepairResult,
    never_valid_terminals,
    repair_plan,
    swap_terminals,
)
from repro.planner.selection import tournament_select
from repro.planner.simulate import (
    FlowResult,
    SimulationOptions,
    SimulationReport,
    simulate_plan,
    simulate_with_attribution,
)
from repro.planner.state import WorldState

__all__ = [
    "WorldState",
    "ActivitySpec",
    "PlanningProblem",
    "SimulationOptions",
    "SimulationReport",
    "FlowResult",
    "simulate_plan",
    "simulate_with_attribution",
    "repair_plan",
    "never_valid_terminals",
    "swap_terminals",
    "RepairResult",
    "PlanEntry",
    "PlanLibrary",
    "goal_signature",
    "library_key",
    "problem_digest",
    "substitution_map",
    "FitnessWeights",
    "Fitness",
    "PlanEvaluator",
    "EvaluationEngine",
    "evaluate_tree",
    "crossover",
    "mutate",
    "random_node_path",
    "tournament_select",
    "GPConfig",
    "table1_config",
    "GPPlanner",
    "PlanningResult",
    "GenerationStats",
    "random_search",
    "hill_climb",
    "forward_search",
]
