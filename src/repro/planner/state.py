"""Symbolic world state for plan simulation (Section 3.2/3.4.4).

A planning problem's state "include[s] all the initial data provided by an
end user and their specifications".  We model it as a mapping from data
names to property dictionaries — e.g. ``D8 -> {"Classification":
"Orientation File"}`` — which is exactly the granularity at which Figure
13's conditions (C1..C8) and constraints (Cons1) are written.

:class:`WorldState` implements the condition language's ``PropertySource``
protocol, so preconditions, goal specifications and Choice guards all
evaluate directly against it.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.process.conditions import MISSING as _MISSING
from repro.process.conditions import Condition

__all__ = ["WorldState"]

#: Cached-merge-key sentinel for states whose property values are
#: unhashable (lists, dicts); such states cannot key a merge/memo table.
_UNHASHABLE = object()


class WorldState:
    """An immutable-by-convention map ``data name -> {property: value}``.

    Mutating operations return new states (:meth:`with_data`,
    :meth:`updated`) using copy-on-write: the outer dict is copied
    shallowly and only the property dicts actually touched are duplicated.
    Inner dicts are therefore shared between states and must never be
    mutated in place — all mutation goes through the two deriving methods.
    This is the planner's hottest data structure (every simulated activity
    execution derives a state), so the sharing matters.
    """

    __slots__ = ("_data", "_mkey")

    def __init__(self, data: Mapping[str, Mapping[str, Any]] | None = None) -> None:
        self._data: dict[str, dict[str, Any]] = {
            name: dict(props) for name, props in (data or {}).items()
        }
        self._mkey: Any = None

    @classmethod
    def _adopt(cls, data: dict[str, dict[str, Any]]) -> "WorldState":
        """Internal: wrap *data* without copying (caller transfers ownership)."""
        out = cls.__new__(cls)
        out._data = data
        out._mkey = None
        return out

    def __getstate__(self) -> dict[str, Any]:
        return {"_data": self._data}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._data = state["_data"]
        self._mkey = None

    def merge_key(self) -> tuple | None:
        """Canonical frozen key of this state, or None if unhashable.

        Valid for the state's whole lifetime because states are
        immutable-by-convention (all mutation derives new states).  Used
        by the simulator's flow merging and by goal-score memoization —
        both previously rebuilt this tuple from the full data dict at
        every join point of every flow.
        """
        key = self._mkey
        if key is None:
            key = tuple(
                sorted(
                    (name, tuple(sorted(props.items())))
                    for name, props in self._data.items()
                )
            )
            try:
                hash(key)
            except TypeError:
                key = _UNHASHABLE
            self._mkey = key
        return None if key is _UNHASHABLE else key

    # -- PropertySource protocol -------------------------------------------- #
    def lookup(self, data_name: str, prop: str) -> Any:
        """Value of *prop* on *data_name*; raises KeyError when absent."""
        return self._data[data_name][prop]

    def peek(self, data_name: str, prop: str) -> Any:
        """Non-raising lookup: returns the MISSING sentinel on absence.

        The condition evaluator prefers this over :meth:`lookup` — absent
        data is the common case while plans are still invalid, and raising
        KeyError there dominates evaluation time.
        """
        props = self._data.get(data_name)
        if props is None:
            return _MISSING
        return props.get(prop, _MISSING)

    # -- queries -------------------------------------------------------------- #
    def has(self, data_name: str) -> bool:
        return data_name in self._data

    def properties(self, data_name: str) -> dict[str, Any]:
        """A copy of the property dict (empty if the item is unknown)."""
        return dict(self._data.get(data_name, {}))

    def data_names(self) -> tuple[str, ...]:
        return tuple(self._data)

    def satisfies(self, condition: Condition) -> bool:
        return condition.evaluate(self)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorldState):
            return NotImplemented
        return self._data == other._data

    def __repr__(self) -> str:
        return f"WorldState({sorted(self._data)})"

    # -- derivation ------------------------------------------------------------ #
    def with_data(self, data_name: str, **properties: Any) -> "WorldState":
        """New state where *data_name* exists with (at least) *properties*.

        Existing properties of the item are preserved unless overwritten —
        this models the paper's "new and modified data resulting from the
        execution of the activity".
        """
        return self.updated({data_name: properties})

    def updated(self, effects: Mapping[str, Mapping[str, Any]]) -> "WorldState":
        """New state with several data items created/modified at once.

        Copy-on-write: only the property dicts named in *effects* are
        duplicated; all others are shared with this state.
        """
        data = dict(self._data)
        for name, props in effects.items():
            existing = data.get(name)
            merged = dict(existing) if existing is not None else {}
            merged.update(props)
            data[name] = merged
        return WorldState._adopt(data)

    def copy(self) -> "WorldState":
        return WorldState(self._data)
