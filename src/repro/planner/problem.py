"""Planning problems: ``P = {Sinit, G, T}`` (Section 3.2).

* ``Sinit`` — a :class:`~repro.planner.state.WorldState` with the user's
  initial data and specifications;
* ``G`` — the goal, a tuple of goal *specifications* (conditions); Eq. 2
  scores the fraction satisfied in the final state;
* ``T`` — the complete set of end-user activities available on the grid,
  each an :class:`ActivitySpec` with preconditions (a condition over data
  items that must hold before execution) and effects (data items
  created/modified by execution — the postconditions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import Any

from repro.errors import PlanningError
from repro.planner.state import WorldState
from repro.process.conditions import TRUE, Condition, compile_condition
from repro.process.model import Activity, ActivityKind

__all__ = ["ActivitySpec", "PlanningProblem"]


@dataclass(frozen=True)
class ActivitySpec:
    """One end-user activity in T.

    *precondition* must hold in the current state for the activity to be
    valid (Section 3.1: "The preconditions of an activity specify the set
    of necessary data and their specifications").  *effects* maps output
    data names to the properties their execution establishes ("The new
    system state will include all new and modified data resulting from the
    execution").  *inputs* / *outputs* list the data names for
    documentation and case-description binding; inputs default to the data
    referenced by the precondition.
    """

    name: str
    precondition: Condition = TRUE
    effects: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    service: str | None = None
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanningError("activity spec needs a name")
        object.__setattr__(
            self, "effects", {k: dict(v) for k, v in dict(self.effects).items()}
        )
        if not self.inputs:
            object.__setattr__(
                self, "inputs", tuple(sorted(self.precondition.data_names()))
            )
        if not self.outputs:
            object.__setattr__(self, "outputs", tuple(self.effects))
        if self.service is None:
            object.__setattr__(self, "service", self.name)
        object.__setattr__(
            self, "_compiled_pre", compile_condition(self.precondition)
        )

    def __getstate__(self) -> dict[str, Any]:
        # Compiled precondition closures are not picklable; drop them and
        # recompile on the other side (process-pool workers receive specs
        # through here).
        state = dict(self.__dict__)
        state.pop("_compiled_pre", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        object.__setattr__(
            self, "_compiled_pre", compile_condition(self.precondition)
        )

    def applicable(self, state: WorldState) -> bool:
        return self._compiled_pre(state)  # type: ignore[attr-defined]

    def apply(self, state: WorldState) -> WorldState:
        """The successor state (caller checks applicability for validity
        accounting; applying an inapplicable activity is a planner-level
        decision, the simulation never does it)."""
        return state.updated(self.effects)

    def as_activity(self, name: str | None = None) -> Activity:
        """The graph-level :class:`Activity` for this spec."""
        return Activity(
            name or self.name,
            ActivityKind.END_USER,
            self.service,
            self.inputs,
            self.outputs,
        )


@dataclass(frozen=True)
class PlanningProblem:
    """``P = {Sinit, G, T}`` plus a display name."""

    initial_state: WorldState
    goals: tuple[Condition, ...]
    activities: Mapping[str, ActivitySpec]
    name: str = "problem"

    def __post_init__(self) -> None:
        object.__setattr__(self, "goals", tuple(self.goals))
        if not self.goals:
            raise PlanningError("a planning problem needs at least one goal")
        specs = dict(self.activities)
        for key, spec in specs.items():
            if key != spec.name:
                raise PlanningError(
                    f"activity map key {key!r} != spec name {spec.name!r}"
                )
        if not specs:
            raise PlanningError("a planning problem needs a non-empty T")
        object.__setattr__(self, "activities", specs)
        self._compile()

    def _compile(self) -> None:
        """Pre-compile goals and the per-activity execution table.

        The simulator executes terminals hundreds of thousands of times
        per GP run; indexing ``name -> (compiled precondition, effects)``
        once here keeps condition-AST traversal, ``spec()`` lookups and
        bound-method creation out of that inner loop.
        """
        object.__setattr__(
            self, "_compiled_goals", tuple(compile_condition(g) for g in self.goals)
        )
        object.__setattr__(
            self,
            "_exec_table",
            {
                name: (spec._compiled_pre, spec.effects)  # type: ignore[attr-defined]
                for name, spec in self.activities.items()
            },
        )
        object.__setattr__(self, "_goal_cache", {})

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        for key in ("_compiled_goals", "_exec_table", "_goal_cache"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._compile()

    def execution_table(
        self,
    ) -> Mapping[str, tuple[Callable[[WorldState], bool], Mapping[str, Any]]]:
        """``name -> (applicable, effects)`` for every activity in T."""
        return self._exec_table  # type: ignore[attr-defined]

    @property
    def activity_names(self) -> tuple[str, ...]:
        return tuple(self.activities)

    def spec(self, name: str) -> ActivitySpec | None:
        """The spec for an activity name, or None if not in T.

        Plan trees evolved by GP may reference names outside T only if the
        terminal set is wider than T; the simulator treats unknown names as
        never-valid activities.
        """
        return self.activities.get(name)

    #: Goal-score memo bound; final states repeat heavily across the flows
    #: and trees of one GP run, far beyond this many distinct ones.
    _GOAL_CACHE_MAX = 4096

    def goal_score(self, state: WorldState) -> float:
        """Eq. 2: fraction of goal specifications the state satisfies.

        Memoized on the state's canonical merge key (bounded FIFO):
        distinct plan trees funnel into a small set of reachable final
        states, so most scores are repeat lookups.
        """
        key = state.merge_key() if isinstance(state, WorldState) else None
        cache: dict = self._goal_cache  # type: ignore[attr-defined]
        if key is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit
        compiled = self._compiled_goals  # type: ignore[attr-defined]
        satisfied = sum(1 for check in compiled if check(state))
        score = satisfied / len(compiled)
        if key is not None:
            if len(cache) >= self._GOAL_CACHE_MAX:
                cache.pop(next(iter(cache)))
            cache[key] = score
        return score

    @staticmethod
    def build(
        name: str,
        initial: Mapping[str, Mapping[str, Any]],
        goals: tuple[Condition, ...] | list[Condition],
        activities: list[ActivitySpec] | tuple[ActivitySpec, ...],
    ) -> "PlanningProblem":
        """Convenience constructor from plain literals."""
        return PlanningProblem(
            initial_state=WorldState(initial),
            goals=tuple(goals),
            activities={spec.name: spec for spec in activities},
            name=name,
        )
