"""Genetic operators on plan trees (Section 3.4.3, Figures 8-9).

* :func:`crossover` — with probability *crossover_rate*, select one node in
  each parent uniformly at random and swap the subtrees.  If either
  offspring would exceed Smax, "crossover fails and both parents are kept".
* :func:`mutate` — each node of the tree is selected for mutation with
  probability *mutation_rate*; a selected node's subtree is replaced by a
  freshly generated random tree ("using the same method as plan
  initialization").  If the mutated tree would exceed Smax, "mutation fails
  and we keep the original tree".

Both operators are pure: they never modify their inputs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._util import as_rng
from repro.plan.randgen import random_tree
from repro.plan.tree import PlanNode, iter_nodes, replace_at, subtree_at

__all__ = ["crossover", "mutate", "random_node_path"]


def random_node_path(tree: PlanNode, rng: np.random.Generator) -> tuple[int, ...]:
    """A uniformly random node path in *tree* (pre-order indexed)."""
    paths = [path for path, _ in iter_nodes(tree)]
    return paths[int(rng.integers(len(paths)))]


def crossover(
    a: PlanNode,
    b: PlanNode,
    rng: int | np.random.Generator | None = None,
    smax: int = 40,
    crossover_rate: float = 0.7,
) -> tuple[PlanNode, PlanNode]:
    """Subtree crossover per Figure 8; returns the two offspring (or the
    unchanged parents when crossover is skipped or fails the size bound)."""
    generator = as_rng(rng)
    if generator.random() >= crossover_rate:
        return a, b
    path_a = random_node_path(a, generator)
    path_b = random_node_path(b, generator)
    sub_a = subtree_at(a, path_a)
    sub_b = subtree_at(b, path_b)
    child_a = replace_at(a, path_a, sub_b)
    child_b = replace_at(b, path_b, sub_a)
    if child_a.size > smax or child_b.size > smax:
        return a, b
    return child_a, child_b


def mutate(
    tree: PlanNode,
    activities: Sequence[str],
    rng: int | np.random.Generator | None = None,
    smax: int = 40,
    mutation_rate: float = 0.001,
    max_branch: int = 4,
) -> PlanNode:
    """Per-node subtree mutation per Figure 9.

    Every node is an independent Bernoulli(mutation_rate) trial; selected
    nodes are processed outermost-first, and replacing a node skips the
    trials of its (now gone) descendants.  A replacement that would push the
    tree past Smax fails silently, keeping the paper's semantics.
    """
    generator = as_rng(rng)
    selected = [
        path for path, _ in iter_nodes(tree) if generator.random() < mutation_rate
    ]
    if not selected:
        return tree
    # Drop paths nested under an already-selected ancestor: mutating the
    # ancestor replaces the descendant anyway.  The survivors are pairwise
    # disjoint, so they stay valid while the tree is rebuilt incrementally.
    selected.sort(key=len)
    kept: list[tuple[int, ...]] = []
    for path in selected:
        if not any(path[: len(anc)] == anc for anc in kept):
            kept.append(path)
    current = tree
    for path in kept:
        replacement = random_tree(
            activities, max_size=smax, rng=generator, max_branch=max_branch
        )
        candidate = replace_at(current, path, replacement)
        if candidate.size <= smax:
            current = candidate
    return current
