"""Plan fitness (Section 3.4.4, Eqs. 1-4).

``f = wv*fv + wg*fg + wr*fr`` with ``wv + wg + wr = 1``:

* ``fv`` — plan validity: valid activity executions / total executions
  over all enumerated flows (Eq. 1);
* ``fg`` — goal fitness: fraction of goal specifications the final state
  satisfies, averaged over flows (Eq. 2);
* ``fr`` — representation efficiency: ``1 - size/Smax`` (Eq. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlanningError
from repro.plan.metrics import representation_efficiency
from repro.plan.tree import PlanNode
from repro.planner.problem import PlanningProblem
from repro.planner.simulate import SimulationOptions, simulate_plan

__all__ = ["FitnessWeights", "Fitness", "PlanEvaluator", "evaluate_tree"]


@dataclass(frozen=True)
class FitnessWeights:
    """Table-1 weights: wv = 0.2, wg = 0.5 (leaving wr = 0.3)."""

    validity: float = 0.2
    goal: float = 0.5
    efficiency: float = 0.3

    def __post_init__(self) -> None:
        total = self.validity + self.goal + self.efficiency
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise PlanningError(
                f"fitness weights must sum to 1, got {total} "
                f"(wv={self.validity}, wg={self.goal}, wr={self.efficiency})"
            )
        if min(self.validity, self.goal, self.efficiency) < 0:
            raise PlanningError("fitness weights must be non-negative")


@dataclass(frozen=True)
class Fitness:
    """One plan's scored fitness; orderable by overall value."""

    validity: float
    goal: float
    efficiency: float
    overall: float
    truncated: bool = False

    def __lt__(self, other: "Fitness") -> bool:
        return self.overall < other.overall

    def __le__(self, other: "Fitness") -> bool:
        return self.overall <= other.overall


def evaluate_tree(
    tree: PlanNode,
    problem: PlanningProblem,
    weights: FitnessWeights,
    smax: int,
    options: SimulationOptions,
) -> Fitness:
    """Score one plan tree: simulate all flows, apply Eqs. 1-4.

    Pure and deterministic — the single source of truth for fitness values
    shared by the serial evaluator and the process-pool workers of
    :class:`~repro.planner.engine.EvaluationEngine` (which is what makes
    parallel results bit-identical to serial ones).
    """
    report = simulate_plan(tree, problem, options)
    fv = report.validity_fitness()
    fg = report.goal_fitness(problem)
    fr = representation_efficiency(tree, smax)
    overall = weights.validity * fv + weights.goal * fg + weights.efficiency * fr
    return Fitness(fv, fg, fr, overall, report.truncated)


class PlanEvaluator:
    """Callable evaluator binding a problem, weights, Smax and sim options.

    Results are memoized in a bounded LRU keyed on the tree's cached
    *structural* key (:meth:`PlanNode.struct_key`), so structural
    duplicates — tournament-selection copies, unchanged survivors across
    generations, identical trees from different runs sharing one evaluator
    — all resolve to a single simulation.  ``cache_hits`` / ``cache_misses``
    count lookups; ``evaluations`` counts *unique simulations actually
    run* (i.e. cache misses), not calls — the number a matched-budget
    baseline comparison should use.
    """

    #: Default LRU bound: roughly 25 Table-1 runs' worth of unique trees.
    DEFAULT_CACHE_SIZE = 100_000

    def __init__(
        self,
        problem: PlanningProblem,
        weights: FitnessWeights | None = None,
        smax: int = 40,
        options: SimulationOptions | None = None,
        cache_size: int | None = None,
    ) -> None:
        if smax < 1:
            raise PlanningError(f"Smax must be >= 1, got {smax}")
        self.problem = problem
        self.weights = weights or FitnessWeights()
        self.smax = smax
        self.options = options or SimulationOptions()
        self.cache_size = (
            self.DEFAULT_CACHE_SIZE if cache_size is None else cache_size
        )
        if self.cache_size < 0:
            raise PlanningError("cache_size must be >= 0 (0 disables caching)")
        self._cache: dict[tuple, Fitness] = {}
        self.evaluations = 0  # unique simulations run (= cache misses)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache plumbing (shared with EvaluationEngine) ----------------------- #
    def cache_lookup(self, key: tuple) -> Fitness | None:
        """Cached fitness for a structural key (refreshes LRU recency)."""
        cached = self._cache.pop(key, None)
        if cached is not None:
            self._cache[key] = cached  # reinsert: most-recently-used
        return cached

    def cache_store(self, key: tuple, fitness: Fitness) -> None:
        if self.cache_size == 0:
            return
        cache = self._cache
        if key not in cache and len(cache) >= self.cache_size:
            cache.pop(next(iter(cache)))  # evict least-recently-used
        cache[key] = fitness

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._cache)

    # -- evaluation ----------------------------------------------------------- #
    def __call__(self, tree: PlanNode) -> Fitness:
        key = tree.struct_key()
        cached = self.cache_lookup(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        self.evaluations += 1
        fitness = evaluate_tree(
            tree, self.problem, self.weights, self.smax, self.options
        )
        self.cache_store(key, fitness)
        return fitness

    def evaluate_many(self, trees: list[PlanNode]) -> list[Fitness]:
        """Serial batch evaluation (in-batch dedup via the cache).

        :class:`~repro.planner.engine.EvaluationEngine` overrides the
        dispatch with a process pool; this method exists so baselines can
        batch against a plain evaluator and engine interchangeably.
        """
        return [self(tree) for tree in trees]

    def clear_cache(self) -> None:
        self._cache.clear()
