"""Plan fitness (Section 3.4.4, Eqs. 1-4).

``f = wv*fv + wg*fg + wr*fr`` with ``wv + wg + wr = 1``:

* ``fv`` — plan validity: valid activity executions / total executions
  over all enumerated flows (Eq. 1);
* ``fg`` — goal fitness: fraction of goal specifications the final state
  satisfies, averaged over flows (Eq. 2);
* ``fr`` — representation efficiency: ``1 - size/Smax`` (Eq. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlanningError
from repro.plan.metrics import representation_efficiency
from repro.plan.tree import PlanNode
from repro.planner.problem import PlanningProblem
from repro.planner.simulate import SimulationOptions, simulate_plan

__all__ = ["FitnessWeights", "Fitness", "PlanEvaluator"]


@dataclass(frozen=True)
class FitnessWeights:
    """Table-1 weights: wv = 0.2, wg = 0.5 (leaving wr = 0.3)."""

    validity: float = 0.2
    goal: float = 0.5
    efficiency: float = 0.3

    def __post_init__(self) -> None:
        total = self.validity + self.goal + self.efficiency
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise PlanningError(
                f"fitness weights must sum to 1, got {total} "
                f"(wv={self.validity}, wg={self.goal}, wr={self.efficiency})"
            )
        if min(self.validity, self.goal, self.efficiency) < 0:
            raise PlanningError("fitness weights must be non-negative")


@dataclass(frozen=True)
class Fitness:
    """One plan's scored fitness; orderable by overall value."""

    validity: float
    goal: float
    efficiency: float
    overall: float
    truncated: bool = False

    def __lt__(self, other: "Fitness") -> bool:
        return self.overall < other.overall

    def __le__(self, other: "Fitness") -> bool:
        return self.overall <= other.overall


class PlanEvaluator:
    """Callable evaluator binding a problem, weights, Smax and sim options.

    Evaluation results are memoized per tree (plan trees are immutable and
    hashable), which matters because tournament selection duplicates
    individuals and unchanged survivors are re-scored every generation.
    """

    def __init__(
        self,
        problem: PlanningProblem,
        weights: FitnessWeights | None = None,
        smax: int = 40,
        options: SimulationOptions | None = None,
    ) -> None:
        if smax < 1:
            raise PlanningError(f"Smax must be >= 1, got {smax}")
        self.problem = problem
        self.weights = weights or FitnessWeights()
        self.smax = smax
        self.options = options or SimulationOptions()
        self._cache: dict[PlanNode, Fitness] = {}
        self.evaluations = 0  # unique simulations run (cache misses)

    def __call__(self, tree: PlanNode) -> Fitness:
        cached = self._cache.get(tree)
        if cached is not None:
            return cached
        self.evaluations += 1
        report = simulate_plan(tree, self.problem, self.options)
        fv = report.validity_fitness()
        fg = report.goal_fitness(self.problem)
        fr = representation_efficiency(tree, self.smax)
        overall = (
            self.weights.validity * fv
            + self.weights.goal * fg
            + self.weights.efficiency * fr
        )
        fitness = Fitness(fv, fg, fr, overall, report.truncated)
        self._cache[tree] = fitness
        return fitness

    def clear_cache(self) -> None:
        self._cache.clear()
