"""Batched, cache-sharing, optionally parallel plan evaluation.

The GP loop scores a whole population per generation; scoring each tree
independently wastes work along three axes that this engine recovers:

1. **Structural interning** — trees are keyed by their cached canonical
   :meth:`~repro.plan.tree.PlanNode.struct_key`, so tournament-selection
   copies, unchanged survivors, and identical trees across runs/seeds all
   resolve to one entry in a shared, bounded-LRU fitness cache (owned by
   the wrapped :class:`~repro.planner.fitness.PlanEvaluator`).
2. **In-batch dedup** — each structurally unique tree in a batch is
   simulated at most once, however many population slots it occupies.
3. **Process-pool backend** — cache-missing unique trees are dispatched in
   chunks to a ``ProcessPoolExecutor`` whose workers receive the
   ``PlanningProblem`` / ``SimulationOptions`` once via the pool
   initializer (conditions are recompiled worker-side on unpickle).
   Fitness values come from the same pure
   :func:`~repro.planner.fitness.evaluate_tree` the serial path uses, so
   results are bit-identical regardless of worker count or chunking.

Telemetry (cumulative evaluation wall-time, cache hit/miss counts,
batches) feeds ``GenerationStats`` / ``PlanningResult``.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

from repro.errors import PlanningError
from repro.plan.tree import PlanNode
from repro.planner.fitness import (
    Fitness,
    FitnessWeights,
    PlanEvaluator,
    evaluate_tree,
)
from repro.planner.problem import PlanningProblem
from repro.planner.simulate import SimulationOptions

__all__ = ["EvaluationEngine"]

# -- process-pool worker side ------------------------------------------------- #
# One evaluator per worker process, built once by the pool initializer.  Its
# own LRU persists for the pool's lifetime, so repeat trees landing on the
# same worker across generations skip simulation there too.
_WORKER_EVALUATOR: PlanEvaluator | None = None


def _worker_init(
    problem: PlanningProblem,
    weights: FitnessWeights,
    smax: int,
    options: SimulationOptions,
    cache_size: int | None,
) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = PlanEvaluator(
        problem, weights, smax, options, cache_size=cache_size
    )


def _worker_eval(trees: list[PlanNode]) -> list[Fitness]:
    assert _WORKER_EVALUATOR is not None, "pool initializer did not run"
    return [_WORKER_EVALUATOR(tree) for tree in trees]


class EvaluationEngine:
    """Batched plan evaluation with a shared cache and optional workers.

    Quacks like a :class:`PlanEvaluator` (callable, ``evaluations``,
    ``smax``, ...) so baselines and existing call sites take either.
    *workers* = 0 means in-process serial evaluation; *workers* >= 1
    selects the process pool (1 is useful to measure dispatch overhead).
    Use as a context manager, or call :meth:`close`, to reap the pool.
    """

    #: Target chunks per worker per batch: small enough to amortize IPC,
    #: large enough to smooth out per-tree cost variance.
    _CHUNKS_PER_WORKER = 4

    def __init__(
        self,
        problem: PlanningProblem | None = None,
        weights: FitnessWeights | None = None,
        smax: int = 40,
        options: SimulationOptions | None = None,
        *,
        workers: int = 0,
        chunk_size: int | None = None,
        cache_size: int | None = None,
        worker_cache_size: int | None = None,
        evaluator: PlanEvaluator | None = None,
        static_filter: str = "off",
    ) -> None:
        if evaluator is None:
            if problem is None:
                raise PlanningError("engine needs a problem or an evaluator")
            evaluator = PlanEvaluator(
                problem, weights, smax, options, cache_size=cache_size
            )
        if workers < 0:
            raise PlanningError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise PlanningError("chunk_size must be >= 1")
        self.evaluator = evaluator
        self.workers = workers
        self.chunk_size = chunk_size
        self.worker_cache_size = worker_cache_size
        """LRU bound for each pool worker's local evaluator (None =
        default; 0 disables worker-side caching, used by benchmarks to
        keep repeat rounds honest)."""
        self._filter = None
        if static_filter != "off":
            # Lazy import: keeps repro.analysis (ontology, parser, ...) out
            # of the planner's import graph unless the filter is used.
            from repro.analysis.plan_filter import PlanStaticFilter

            self._filter = PlanStaticFilter(
                evaluator.problem,
                evaluator.weights,
                evaluator.smax,
                evaluator.options,
                mode=static_filter,
            )
        self._pool = None
        self.pool_error: str | None = None
        # -- telemetry -- #
        self.batches = 0
        self.eval_time = 0.0  # cumulative wall-time inside evaluate_many
        self.last_batch_time = 0.0
        self.analysis_rejected = 0
        """Unique trees scored by the static pre-filter instead of full
        simulation.  Filtered trees still count as evaluations / cache
        misses (their structure was scored exactly once, like any other);
        this counter records how many of those scores skipped the
        simulator."""

    # -- PlanEvaluator-compatible surface ------------------------------------- #
    @property
    def problem(self) -> PlanningProblem:
        return self.evaluator.problem

    @property
    def weights(self) -> FitnessWeights:
        return self.evaluator.weights

    @property
    def smax(self) -> int:
        return self.evaluator.smax

    @property
    def options(self) -> SimulationOptions:
        return self.evaluator.options

    @property
    def evaluations(self) -> int:
        """Unique simulations run (cache misses), as on PlanEvaluator."""
        return self.evaluator.evaluations

    @property
    def cache_hits(self) -> int:
        return self.evaluator.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.evaluator.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        return self.evaluator.cache_hit_rate

    @property
    def race_rejected(self) -> int:
        """Trees floored by the ``"race"`` filter mode's interference
        check (a subset of *analysis_rejected*; 0 in every other mode)."""
        return self._filter.race_rejected if self._filter is not None else 0

    def __call__(self, tree: PlanNode) -> Fitness:
        """Single-tree evaluation through the shared cache (serial path —
        sequential callers like the hill climber can't batch)."""
        if self._filter is not None:
            evaluator = self.evaluator
            key = tree.struct_key()
            cached = evaluator.cache_lookup(key)
            if cached is not None:
                evaluator.cache_hits += 1
                return cached
            static = self._filter.fitness_for(tree)
            if static is not None:
                evaluator.cache_misses += 1
                evaluator.evaluations += 1
                self.analysis_rejected += 1
                evaluator.cache_store(key, static)
                return static
        return self.evaluator(tree)

    # -- batched evaluation ---------------------------------------------------- #
    def evaluate_many(self, trees: Sequence[PlanNode]) -> list[Fitness]:
        """Fitness for every tree, in order; each unique tree simulated at
        most once, cache hits simulated zero times."""
        t0 = time.perf_counter()
        evaluator = self.evaluator
        results: list[Fitness | None] = [None] * len(trees)
        pending: dict[tuple, list[int]] = {}
        pending_trees: list[PlanNode] = []
        for i, tree in enumerate(trees):
            key = tree.struct_key()
            cached = evaluator.cache_lookup(key)
            if cached is not None:
                results[i] = cached
                continue
            slots = pending.get(key)
            if slots is None:
                pending[key] = [i]
                pending_trees.append(tree)
            else:
                slots.append(i)

        if self._filter is not None and pending_trees:
            # Partition: statically-doomed trees get their (exact or
            # penalty) fitness without simulation; the rest dispatch as
            # usual.  Order within `pending` is preserved either way.
            fitnesses: list[Fitness | None] = [None] * len(pending_trees)
            to_simulate: list[tuple[int, PlanNode]] = []
            for j, tree in enumerate(pending_trees):
                static = self._filter.fitness_for(tree)
                if static is None:
                    to_simulate.append((j, tree))
                else:
                    fitnesses[j] = static
            self.analysis_rejected += len(pending_trees) - len(to_simulate)
            simulated = self._dispatch([tree for _, tree in to_simulate])
            for (j, _), fitness in zip(to_simulate, simulated):
                fitnesses[j] = fitness
        else:
            fitnesses = self._dispatch(pending_trees)
        for (key, slots), fitness in zip(pending.items(), fitnesses):
            evaluator.cache_store(key, fitness)
            for i in slots:
                results[i] = fitness
        # Counter semantics match the serial evaluator: a call is a miss
        # only if it caused the one simulation of its structure.
        evaluator.evaluations += len(pending_trees)
        evaluator.cache_misses += len(pending_trees)
        evaluator.cache_hits += len(trees) - len(pending_trees)

        self.batches += 1
        self.last_batch_time = time.perf_counter() - t0
        self.eval_time += self.last_batch_time
        return results  # type: ignore[return-value]

    def _dispatch(self, trees: list[PlanNode]) -> list[Fitness]:
        """Simulate *trees* (already unique) serially or on the pool."""
        evaluator = self.evaluator
        if self.workers and len(trees) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                size = self.chunk_size or max(
                    1,
                    math.ceil(len(trees) / (self.workers * self._CHUNKS_PER_WORKER)),
                )
                chunks = [trees[i : i + size] for i in range(0, len(trees), size)]
                try:
                    out: list[Fitness] = []
                    for chunk_result in pool.map(_worker_eval, chunks):
                        out.extend(chunk_result)
                    return out
                except Exception as exc:  # broken pool: degrade to serial
                    self._fail_pool(exc)
        return [
            evaluate_tree(
                tree,
                evaluator.problem,
                evaluator.weights,
                evaluator.smax,
                evaluator.options,
            )
            for tree in trees
        ]

    # -- pool lifecycle --------------------------------------------------------- #
    def _ensure_pool(self):
        if self._pool is None and self.pool_error is None:
            try:
                from concurrent.futures import ProcessPoolExecutor

                evaluator = self.evaluator
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=(
                        evaluator.problem,
                        evaluator.weights,
                        evaluator.smax,
                        evaluator.options,
                        self.worker_cache_size,
                    ),
                )
            except Exception as exc:  # e.g. sandboxed fork: degrade to serial
                self._fail_pool(exc)
        return self._pool

    def _fail_pool(self, exc: Exception) -> None:
        self.pool_error = f"{type(exc).__name__}: {exc}"
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
