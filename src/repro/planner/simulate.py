"""Symbolic simulation of plan execution (Section 3.4.4, point 1).

To evaluate plan-validity fitness, "we need to simulate the execution of a
plan ... For each activity, we check if the current system state satisfies
the preconditions of the activity.  If the activity is valid, we update the
system state ... If the activity is not valid, we don't update the system
state.  In case there are selective or iterative nodes in a plan tree,
conditional execution is necessary.  We need to enumerate each possible
flow of execution and simulate the execution of a plan multiple times."

Semantics implemented here (documented choices where the paper is silent):

* **terminal** — check precondition against the current state; valid
  executions apply effects, invalid ones leave the state unchanged; both
  count as *executed* (Eq. 1's denominator).  Names outside T are executed
  and never valid.
* **sequential** — children left to right.
* **concurrent** — children are simulated left to right; the paper allows
  "any order", and effects in our state algebra are monotone merges, so
  any representative order yields the same final state.  Validity can be
  order-dependent; an optional mode (``concurrent_orders > 1``) enumerates
  additional orders as separate flows.
* **selective** — each child spawns a separate flow (enumeration).
* **iterative** — the body is unrolled ``k`` times for each ``k`` in
  *iteration_counts* (default ``(1, 2)``), each unrolling a separate flow.

**Flow merging.**  Enumerated flows that reach the *same world state* are
merged exactly: per-flow execution counters are additive in Eq. 1's sums,
and Eq. 2's per-flow average is preserved by tracking each merged flow's
*weight* (the number of raw flows it stands for).  Merging happens after
every selective/iterative/concurrent join point and keeps the flow
population small without changing any fitness value.  A residual cap
(*max_flows*) guards pathological plans; truncation is reported.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.plan.tree import Controller, ControllerKind, PlanNode, Terminal
from repro.planner.problem import PlanningProblem
from repro.planner.state import WorldState

__all__ = [
    "FlowResult",
    "SimulationReport",
    "simulate_plan",
    "simulate_with_attribution",
    "SimulationOptions",
]

# Internal flow representation: (state, executed, valid, weight).
_Partial = tuple[WorldState, float, float, float]


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs for the flow enumerator."""

    iteration_counts: tuple[int, ...] = (1, 2)
    max_flows: int = 64
    concurrent_orders: int = 1
    #: Total terminal-execution budget per simulation.  Nested
    #: iterative/selective plans re-execute their bodies O(4^depth) times
    #: regardless of flow merging (the cost is structural unrolling, not
    #: flow count); once the budget is spent the simulation stops
    #: executing and reports truncation.  Generous relative to any
    #: plausible Smax-40 plan (which executes a few hundred activities).
    max_executions: int = 100_000

    def __post_init__(self) -> None:
        if not self.iteration_counts or min(self.iteration_counts) < 1:
            raise SimulationError("iteration_counts must be positive")
        if self.max_flows < 1:
            raise SimulationError("max_flows must be >= 1")
        if self.concurrent_orders < 1:
            raise SimulationError("concurrent_orders must be >= 1")
        if self.max_executions < 1:
            raise SimulationError("max_executions must be >= 1")


@dataclass(frozen=True)
class FlowResult:
    """One (possibly merged) flow: final state plus validity accounting.

    *weight* is the number of enumerated raw flows this result represents;
    *executed* and *valid* are already summed over those flows.
    """

    final_state: WorldState
    executed: float
    valid: float
    weight: float = 1.0

    @property
    def validity(self) -> float:
        return self.valid / self.executed if self.executed else 0.0


@dataclass(frozen=True)
class SimulationReport:
    """All enumerated flows of one plan simulation."""

    flows: tuple[FlowResult, ...]
    truncated: bool

    @property
    def total_executed(self) -> float:
        return sum(flow.executed for flow in self.flows)

    @property
    def total_valid(self) -> float:
        return sum(flow.valid for flow in self.flows)

    @property
    def flow_count(self) -> float:
        """Number of raw (pre-merge) flows enumerated."""
        return sum(flow.weight for flow in self.flows)

    def validity_fitness(self) -> float:
        """Eq. 1 over all flows; activities simulated in several flows count
        once per execution, as the paper specifies."""
        executed = self.total_executed
        if executed == 0:
            return 0.0
        return self.total_valid / executed

    def goal_fitness(self, problem: PlanningProblem) -> float:
        """Eq. 2 averaged over flows ("the goal fitness is given as the
        average goal fitness of each execution")."""
        total_weight = self.flow_count
        if total_weight == 0:
            return 0.0
        return (
            sum(
                flow.weight * problem.goal_score(flow.final_state)
                for flow in self.flows
            )
            / total_weight
        )


def simulate_plan(
    tree: PlanNode,
    problem: PlanningProblem,
    options: SimulationOptions | None = None,
) -> SimulationReport:
    """Enumerate execution flows of *tree* starting from ``Sinit``."""
    opts = options or SimulationOptions()
    start: _Partial = (problem.initial_state, 0.0, 0.0, 1.0)
    budget = [opts.max_executions]
    partials, truncated = _simulate(tree, [start], problem, opts, budget)
    flows = tuple(FlowResult(s, e, v, w) for s, e, v, w in partials)
    return SimulationReport(flows, truncated)


def simulate_with_attribution(
    tree: PlanNode,
    problem: PlanningProblem,
    options: SimulationOptions | None = None,
) -> tuple[SimulationReport, dict[tuple[int, ...], tuple[float, float]]]:
    """Like :func:`simulate_plan`, additionally attributing Eq.-1 counts to
    individual terminal nodes.

    Returns ``(report, stats)`` where ``stats[path] = (executed, valid)``
    sums the (weighted) executions of the terminal at *path*.  Used by the
    plan-repair pass to find terminals that are invalid in every flow.
    """
    opts = options or SimulationOptions()
    start: _Partial = (problem.initial_state, 0.0, 0.0, 1.0)
    stats: dict[tuple[int, ...], list[float]] = {}
    budget = [opts.max_executions]
    partials, truncated = _simulate(
        tree, [start], problem, opts, budget, (), stats
    )
    flows = tuple(FlowResult(s, e, v, w) for s, e, v, w in partials)
    return (
        SimulationReport(flows, truncated),
        {path: (e, v) for path, (e, v) in stats.items()},
    )


def _merge(partials: list[_Partial]) -> list[_Partial]:
    """Merge flows with identical states (exact; see module docstring).

    Keys on :meth:`WorldState.merge_key`, which each state computes once
    and caches — join-point merging previously rebuilt the canonical
    tuple from the full state dict for every flow at every join.
    """
    if len(partials) <= 1:
        return partials
    merged: dict[tuple, list] = {}
    order: list[tuple] = []
    for state, executed, valid, weight in partials:
        key = state.merge_key()
        if key is None:  # unhashable property value: skip merging entirely
            return partials
        slot = merged.get(key)
        if slot is None:
            merged[key] = [state, executed, valid, weight]
            order.append(key)
        else:
            slot[1] += executed
            slot[2] += valid
            slot[3] += weight
    return [tuple(merged[key]) for key in order]  # type: ignore[misc]


#: Rescale flow weights once their total exceeds this.  Deeply nested
#: iterative/selective plans multiply raw flow counts doubly-exponentially
#: (a 40-node pathological tree overflows float64); fv and fg are ratios
#: and invariant under uniform scaling of (executed, valid, weight), so
#: normalizing loses nothing.
_WEIGHT_CEILING = 1e9


def _settle(
    partials: list[_Partial], opts: SimulationOptions
) -> tuple[list[_Partial], bool]:
    """Merge identical flows, rescale weights, cap the survivor count."""
    partials = _merge(partials)
    total = sum(p[3] for p in partials)
    if total > _WEIGHT_CEILING:
        factor = 1.0 / total
        partials = [
            (state, executed * factor, valid * factor, weight * factor)
            for state, executed, valid, weight in partials
        ]
    if len(partials) > opts.max_flows:
        return partials[: opts.max_flows], True
    return partials, False


def _simulate(
    node: PlanNode,
    partials: list[_Partial],
    problem: PlanningProblem,
    opts: SimulationOptions,
    budget: list[int],
    path: tuple[int, ...] = (),
    stats: dict[tuple[int, ...], list[float]] | None = None,
) -> tuple[list[_Partial], bool]:
    """Advance every partial flow through *node*; returns (flows, truncated).

    With *stats*, terminal executions are additionally attributed to their
    tree path (weighted executed/valid sums).  *budget* is the mutable
    remaining terminal-execution allowance; exhausting it stops further
    execution (the entry check below also cuts off the otherwise
    exponential structural recursion of deeply nested iteratives).
    """
    truncated = False
    if budget[0] <= 0:
        return list(partials), True

    if isinstance(node, Terminal):
        budget[0] -= len(partials)
        entry = problem.execution_table().get(node.activity)
        record = None
        if stats is not None:
            record = stats.setdefault(path, [0.0, 0.0])
        out: list[_Partial] = []
        if entry is None:
            for state, executed, valid, weight in partials:
                out.append((state, executed + weight, valid, weight))
                if record is not None:
                    record[0] += weight
            return out, truncated
        applicable, effects = entry
        for state, executed, valid, weight in partials:
            if applicable(state):
                out.append(
                    (state.updated(effects), executed + weight, valid + weight, weight)
                )
                if record is not None:
                    record[0] += weight
                    record[1] += weight
            else:
                out.append((state, executed + weight, valid, weight))
                if record is not None:
                    record[0] += weight
        return out, truncated

    assert isinstance(node, Controller)
    kind = node.kind

    if kind is ControllerKind.SEQUENTIAL:
        current = partials
        for idx, child in enumerate(node.children):
            current, t = _simulate(
                child, current, problem, opts, budget, path + (idx,), stats
            )
            truncated |= t
        return current, truncated

    if kind is ControllerKind.CONCURRENT:
        orders = _concurrent_orders(len(node.children), opts.concurrent_orders)
        collected: list[_Partial] = []
        for order in orders:
            current = partials
            for idx in order:
                current, t = _simulate(
                    node.children[idx], current, problem, opts,
                    budget, path + (idx,), stats,
                )
                truncated |= t
            collected.extend(current)
        result, t = _settle(collected, opts)
        return result, truncated | t

    if kind is ControllerKind.SELECTIVE:
        collected = []
        for idx, child in enumerate(node.children):
            flows, t = _simulate(
                child, partials, problem, opts, budget, path + (idx,), stats
            )
            truncated |= t
            collected.extend(flows)
        result, t = _settle(collected, opts)
        return result, truncated | t

    if kind is ControllerKind.ITERATIVE:
        collected = []
        current = partials
        max_count = max(opts.iteration_counts)
        wanted = set(opts.iteration_counts)
        for count in range(1, max_count + 1):
            for idx, child in enumerate(node.children):
                current, t = _simulate(
                    child, current, problem, opts, budget, path + (idx,), stats
                )
                truncated |= t
            current, t = _settle(current, opts)
            truncated |= t
            if count in wanted:
                collected.extend(current)
        result, t = _settle(collected, opts)
        return result, truncated | t

    raise SimulationError(f"unknown controller kind {kind!r}")


def _concurrent_orders(n: int, wanted: int) -> list[tuple[int, ...]]:
    """The first *wanted* child orders: identity first, then permutations in
    lexicographic order (deterministic, no RNG needed)."""
    if wanted == 1:
        return [tuple(range(n))]
    return list(itertools.islice(itertools.permutations(range(n)), wanted))
