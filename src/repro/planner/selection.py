"""Tournament selection (Section 3.4.5).

"We randomly select two individuals from the current population each time
and compare their fitness.  The individual with higher fitness is selected
and duplicated to the next generation.  This simple process is continued
until we have selected a new population with the same size as the current
population."

A generalized tournament size is supported for the ablation studies; size
2 is the paper's setting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import as_rng
from repro.errors import PlanningError
from repro.plan.tree import PlanNode
from repro.planner.fitness import Fitness

__all__ = ["tournament_select"]


def tournament_select(
    population: Sequence[PlanNode],
    fitnesses: Sequence[Fitness],
    rng: int | np.random.Generator | None = None,
    tournament_size: int = 2,
    count: int | None = None,
) -> list[PlanNode]:
    """Select *count* individuals (default: population size) by tournaments."""
    if len(population) != len(fitnesses):
        raise PlanningError(
            f"population/fitness length mismatch: "
            f"{len(population)} vs {len(fitnesses)}"
        )
    if not population:
        raise PlanningError("cannot select from an empty population")
    if tournament_size < 1:
        raise PlanningError(f"tournament size must be >= 1, got {tournament_size}")
    generator = as_rng(rng)
    n = len(population)
    wanted = count if count is not None else n
    selected: list[PlanNode] = []
    for _ in range(wanted):
        contenders = generator.integers(0, n, size=tournament_size)
        best = max(contenders, key=lambda idx: fitnesses[int(idx)].overall)
        selected.append(population[int(best)])
    return selected
