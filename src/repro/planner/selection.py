"""Tournament selection (Section 3.4.5).

"We randomly select two individuals from the current population each time
and compare their fitness.  The individual with higher fitness is selected
and duplicated to the next generation.  This simple process is continued
until we have selected a new population with the same size as the current
population."

A generalized tournament size is supported for the ablation studies; size
2 is the paper's setting.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._util import as_rng
from repro.errors import PlanningError
from repro.plan.tree import PlanNode
from repro.planner.fitness import Fitness

__all__ = ["tournament_select"]


def tournament_select(
    population: Sequence[PlanNode],
    fitnesses: Sequence[Fitness],
    rng: int | np.random.Generator | None = None,
    tournament_size: int = 2,
    count: int | None = None,
) -> list[PlanNode]:
    """Select *count* individuals (default: population size) by tournaments.

    Vectorized: all contender indices come from one
    ``rng.integers(..., size=(wanted, tournament_size))`` draw and winners
    from a NumPy argmax over the fitness array.  Both preserve the
    previous per-tournament semantics exactly — PCG64 produces the same
    index stream whether bounded integers are drawn in one call or in
    *wanted* calls of *tournament_size*, and ``argmax`` matches
    ``max(...)``'s first-of-equals tie-breaking — so seeded runs are
    unchanged.
    """
    if len(population) != len(fitnesses):
        raise PlanningError(
            f"population/fitness length mismatch: "
            f"{len(population)} vs {len(fitnesses)}"
        )
    if not population:
        raise PlanningError("cannot select from an empty population")
    if tournament_size < 1:
        raise PlanningError(f"tournament size must be >= 1, got {tournament_size}")
    generator = as_rng(rng)
    n = len(population)
    wanted = count if count is not None else n
    if not wanted:
        return []
    overall = np.fromiter((f.overall for f in fitnesses), dtype=float, count=n)
    contenders = generator.integers(0, n, size=(wanted, tournament_size))
    winner_col = np.argmax(overall[contenders], axis=1)
    winners = contenders[np.arange(wanted), winner_col]
    return [population[int(idx)] for idx in winners]
