"""Plan repair: strip provably-useless activities from an evolved plan.

The GP loop occasionally emits plans whose goal fitness is perfect but
that retain an activity occurrence which is invalid in every enumerated
flow (validity fitness just below 1).  Since an invalid execution never
changes the state (Section 3.4.4), removing such a terminal cannot lower
goal fitness — and it always raises validity and efficiency.

:func:`repair_plan` iterates that argument to a fixed point:

1. simulate the plan;
2. find a terminal that is *never valid* across all flows;
3. delete it (collapsing degenerate controllers);
4. keep the change — fitness is guaranteed not to decrease — and repeat.

This is a determinizing post-pass, not part of the paper's algorithm; the
Table-2 reproduction runs without it, and the ``repaired`` ablation shows
what it buys.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.plan.convert import normalize
from repro.plan.tree import (
    Controller,
    PlanNode,
    Terminal,
    iter_nodes,
    replace_at,
)
from repro.planner.fitness import Fitness, PlanEvaluator
from repro.planner.problem import PlanningProblem
from repro.planner.simulate import SimulationOptions, simulate_with_attribution

__all__ = [
    "repair_plan",
    "RepairResult",
    "never_valid_terminals",
    "swap_terminals",
]


@dataclass(frozen=True)
class RepairResult:
    plan: PlanNode
    fitness: Fitness
    removed: tuple[str, ...]

    @property
    def changed(self) -> bool:
        return bool(self.removed)


def never_valid_terminals(
    tree: PlanNode,
    problem: PlanningProblem,
    options: SimulationOptions | None = None,
) -> list[tuple[int, ...]]:
    """Paths of terminals that are invalid in every flow they execute in.

    Uses the simulator's per-terminal attribution: a terminal is
    never-valid iff its attributed executed count is positive and its
    valid count is zero.  Removing such a terminal is always safe: an
    invalid execution never changes the state, so every surviving flow's
    evolution is untouched, validity and efficiency can only rise, and
    (with monotone effects) dropping an all-invalid selective branch can
    only raise the flow-averaged goal fitness.
    """
    _, stats = simulate_with_attribution(tree, problem, options)
    return [
        path
        for path, (executed, valid) in sorted(stats.items())
        if executed > 0.0 and valid == 0.0
    ]


def _delete_at(tree: PlanNode, path: tuple[int, ...]) -> PlanNode | None:
    """The tree with the node at *path* removed (None if it is the root)."""
    if not path:
        return None
    parent_path, idx = path[:-1], path[-1]
    parent = tree
    for step in parent_path:
        assert isinstance(parent, Controller)
        parent = parent.children[step]
    assert isinstance(parent, Controller)
    if len(parent.children) == 1:
        # Removing the only child removes the controller itself.
        return _delete_at(tree, parent_path)
    children = parent.children[:idx] + parent.children[idx + 1 :]
    return normalize(replace_at(tree, parent_path, Controller(parent.kind, children)))


def swap_terminals(
    tree: PlanNode, mapping: Mapping[str, str]
) -> tuple[PlanNode, tuple[tuple[str, str], ...]]:
    """The tree with every terminal named in *mapping* swapped — and
    nothing else.

    The plan library's local repair: when re-verification flags stored
    terminals as unresolvable (their service vanished from the registry),
    only those exact terminals are replaced by their substitute activity;
    structure, controllers and every other terminal are untouched, so the
    repaired plan stays in the immediate neighborhood of the verified
    original.  Returns the new tree plus the ``(old, new)`` swaps in
    tree order (empty when *mapping* touches nothing).
    """
    swaps: list[tuple[str, str]] = []
    current = tree
    for path, node in list(iter_nodes(tree)):
        if isinstance(node, Terminal) and node.activity in mapping:
            replacement = mapping[node.activity]
            current = replace_at(current, path, Terminal(replacement))
            swaps.append((node.activity, replacement))
    return current, tuple(swaps)


def repair_plan(
    tree: PlanNode,
    problem: PlanningProblem,
    evaluator: PlanEvaluator | None = None,
    max_rounds: int = 50,
) -> RepairResult:
    """Remove never-valid terminals until none remain.

    Uses *evaluator* (or a fresh default one) for the final fitness;
    deletions are accepted only if overall fitness does not decrease,
    which the counterfactual test already guarantees but is re-checked for
    safety.
    """
    evaluator = evaluator or PlanEvaluator(problem)
    current = normalize(tree)
    removed: list[str] = []
    for _ in range(max_rounds):
        candidates = never_valid_terminals(current, problem, evaluator.options)
        if not candidates:
            break
        path = candidates[0]
        victim = current
        for step in path:
            assert isinstance(victim, Controller)
            victim = victim.children[step]
        assert isinstance(victim, Terminal)
        pruned = _delete_at(current, path)
        if pruned is None:
            break
        if evaluator(pruned).overall + 1e-12 < evaluator(current).overall:
            break  # safety net; should not trigger
        removed.append(victim.activity)
        current = pruned
    return RepairResult(
        plan=current,
        fitness=evaluator(current),
        removed=tuple(removed),
    )
