"""GP planner configuration; defaults reproduce the paper's Table 1.

Table 1 parameter settings: population size 200, number of generations 20,
crossover rate 0.7, mutation rate 0.001, Smax 40, wv 0.2, wg 0.5 — leaving
wr = 0.3 since the weights must sum to 1 (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PlanningError
from repro.planner.fitness import FitnessWeights
from repro.planner.simulate import SimulationOptions

__all__ = ["GPConfig", "table1_config"]


@dataclass(frozen=True)
class GPConfig:
    population_size: int = 200
    generations: int = 20
    crossover_rate: float = 0.7
    mutation_rate: float = 0.001
    smax: int = 40
    weights: FitnessWeights = field(default_factory=FitnessWeights)
    simulation: SimulationOptions = field(default_factory=SimulationOptions)
    tournament_size: int = 2
    max_branch: int = 4
    workers: int = 0
    """Process-pool workers for population evaluation (0 = in-process
    serial).  Results are bit-identical for any value; this is purely a
    throughput knob (see :mod:`repro.planner.engine`)."""
    early_stop: bool = False
    """Stop once some individual reaches fv = fg = 1.0 (not used by the
    Table-2 reproduction, which runs all generations as the paper does)."""
    static_filter: str = "exact"
    """Static pre-filter for candidate trees (:mod:`repro.analysis.
    plan_filter`): ``"exact"`` (default) scores statically-doomed trees
    without simulating them, bit-identical to full evaluation;
    ``"penalty"`` short-circuits them to a floor fitness (changes
    traces); ``"race"`` is ``"exact"`` plus a floor penalty for trees
    whose CONCURRENT branches statically interfere (changes traces);
    ``"off"`` disables the filter."""
    critical_path_tiebreak: str = "off"
    """``"on"`` breaks exact fitness ties between final candidates by the
    concurrency verifier's parallel speedup bound (prefer the plan with
    the shorter critical path).  ``"off"`` (default) keeps the historical
    first-maximal choice, byte-identical to previous releases."""
    library: str = "off"
    """Plan-library warm starts (:mod:`repro.planner.library`): ``"off"``
    (default) plans every request from scratch — GP populations, fitness
    and message traces are bit-identical to a grid with no library wired
    at all; ``"on"`` lets the planning service consult the persistent
    repository (verified hits skip GP entirely, near-misses seed the
    initial population) and :meth:`GPPlanner.plan` honor *seeds*."""
    seed_fraction: float = 0.5
    """Greatest fraction of the initial population filled from library
    seeds when warm-starting; the rest stays random to preserve
    exploration.  Ignored while ``library="off"``."""
    seed_mutation_rate: float = 0.2
    """Per-node mutation rate applied to the extra copies of each seed
    placed in the initial population (the first copy of every seed enters
    verbatim).  Deliberately far above *mutation_rate*: seeds should spread
    through the neighborhood of the stored solution, not clone it."""

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise PlanningError("population size must be >= 2")
        if self.population_size % 2:
            raise PlanningError(
                "population size must be even (crossover pairs the population)"
            )
        if self.generations < 1:
            raise PlanningError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise PlanningError("crossover rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise PlanningError("mutation rate must be in [0, 1]")
        if self.smax < 1:
            raise PlanningError("Smax must be >= 1")
        if self.workers < 0:
            raise PlanningError("workers must be >= 0")
        if self.static_filter not in ("off", "exact", "penalty", "race"):
            raise PlanningError(
                f"static_filter must be 'off', 'exact', 'penalty' or "
                f"'race', got {self.static_filter!r}"
            )
        if self.critical_path_tiebreak not in ("off", "on"):
            raise PlanningError(
                f"critical_path_tiebreak must be 'off' or 'on', "
                f"got {self.critical_path_tiebreak!r}"
            )
        if self.library not in ("off", "on"):
            raise PlanningError(
                f"library must be 'off' or 'on', got {self.library!r}"
            )
        if not 0.0 <= self.seed_fraction <= 1.0:
            raise PlanningError("seed fraction must be in [0, 1]")
        if not 0.0 <= self.seed_mutation_rate <= 1.0:
            raise PlanningError("seed mutation rate must be in [0, 1]")

    def with_(self, **changes) -> "GPConfig":
        """A copy with the given fields replaced (ablation sweeps)."""
        return replace(self, **changes)

    def as_table(self) -> list[tuple[str, object]]:
        """The Table-1 rows, in the paper's order."""
        return [
            ("Population Size", self.population_size),
            ("Number of Generation", self.generations),
            ("Crossover Rate", self.crossover_rate),
            ("Mutation Rate", self.mutation_rate),
            ("Smax", self.smax),
            ("wv", self.weights.validity),
            ("wg", self.weights.goal),
        ]


def table1_config() -> GPConfig:
    """The exact Table-1 configuration."""
    return GPConfig()
