"""Random-search baseline.

Samples random plan trees with the same generator the GP uses for
initialization and keeps the best — the canonical "is evolution doing
anything?" control.  Matched to the GP on *evaluation budget* (unique plan
simulations), not on population mechanics.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.plan.randgen import random_tree
from repro.planner.engine import EvaluationEngine
from repro.planner.fitness import PlanEvaluator
from repro.planner.gp import PlanningResult
from repro.planner.problem import PlanningProblem

__all__ = ["random_search"]


def random_search(
    problem: PlanningProblem,
    evaluator: PlanEvaluator | EvaluationEngine,
    budget: int,
    rng: int | np.random.Generator | None = None,
    max_branch: int = 4,
) -> PlanningResult:
    """Evaluate *budget* random trees; return the best found.

    Trees are drawn up front (tree generation never consults the
    evaluator, so the RNG stream is unchanged) and scored in one
    ``evaluate_many`` batch — deduped, cached, and parallel when
    *evaluator* is an :class:`EvaluationEngine` with workers.  The first
    tree with the maximal fitness wins, as in the sequential version.
    """
    generator = as_rng(rng)
    activities = list(problem.activity_names)
    trees = [
        random_tree(
            activities, max_size=evaluator.smax, rng=generator, max_branch=max_branch
        )
        for _ in range(max(1, budget))
    ]
    fitnesses = evaluator.evaluate_many(trees)
    best_idx = 0
    for idx in range(1, len(trees)):
        if fitnesses[idx].overall > fitnesses[best_idx].overall:
            best_idx = idx
    return PlanningResult(
        best_plan=trees[best_idx],
        best_fitness=fitnesses[best_idx],
        evaluations=evaluator.evaluations,
        generations_run=0,
    )
