"""Random-search baseline.

Samples random plan trees with the same generator the GP uses for
initialization and keeps the best — the canonical "is evolution doing
anything?" control.  Matched to the GP on *evaluation budget* (unique plan
simulations), not on population mechanics.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.plan.randgen import random_tree
from repro.planner.fitness import PlanEvaluator
from repro.planner.gp import PlanningResult
from repro.planner.problem import PlanningProblem

__all__ = ["random_search"]


def random_search(
    problem: PlanningProblem,
    evaluator: PlanEvaluator,
    budget: int,
    rng: int | np.random.Generator | None = None,
    max_branch: int = 4,
) -> PlanningResult:
    """Evaluate *budget* random trees; return the best found."""
    generator = as_rng(rng)
    activities = list(problem.activity_names)
    best_tree = random_tree(
        activities, max_size=evaluator.smax, rng=generator, max_branch=max_branch
    )
    best_fitness = evaluator(best_tree)
    for _ in range(budget - 1):
        tree = random_tree(
            activities, max_size=evaluator.smax, rng=generator, max_branch=max_branch
        )
        fitness = evaluator(tree)
        if fitness.overall > best_fitness.overall:
            best_tree, best_fitness = tree, fitness
    return PlanningResult(
        best_plan=best_tree,
        best_fitness=best_fitness,
        evaluations=evaluator.evaluations,
        generations_run=0,
    )
