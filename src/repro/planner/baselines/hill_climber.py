"""First-improvement hill-climbing baseline.

Starts from a random plan tree and repeatedly applies the GP's own mutation
move (random-subtree replacement at a random node), accepting any
non-worsening neighbour.  Restarts from a fresh random tree after
*stall_limit* consecutive rejected moves, which keeps the climber honest on
deceptive landscapes instead of letting it burn the whole budget in a local
optimum.

Unlike random search this cannot batch — each candidate depends on whether
the previous one was accepted — so it calls the evaluator one tree at a
time and benefits from the shared fitness cache only.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.plan.randgen import random_tree
from repro.plan.tree import replace_at
from repro.planner.engine import EvaluationEngine
from repro.planner.fitness import PlanEvaluator
from repro.planner.gp import PlanningResult
from repro.planner.operators import random_node_path
from repro.planner.problem import PlanningProblem

__all__ = ["hill_climb"]


def hill_climb(
    problem: PlanningProblem,
    evaluator: PlanEvaluator | EvaluationEngine,
    budget: int,
    rng: int | np.random.Generator | None = None,
    stall_limit: int = 50,
    max_branch: int = 4,
) -> PlanningResult:
    """Run hill climbing for *budget* evaluations; return the best plan."""
    generator = as_rng(rng)
    activities = list(problem.activity_names)

    def fresh():
        return random_tree(
            activities, max_size=evaluator.smax, rng=generator, max_branch=max_branch
        )

    current = fresh()
    current_fit = evaluator(current)
    best, best_fit = current, current_fit
    stall = 0
    for _ in range(budget - 1):
        path = random_node_path(current, generator)
        replacement = random_tree(
            activities, max_size=evaluator.smax, rng=generator, max_branch=max_branch
        )
        candidate = replace_at(current, path, replacement)
        if candidate.size > evaluator.smax:
            stall += 1
        else:
            fitness = evaluator(candidate)
            if fitness.overall >= current_fit.overall:
                improved = fitness.overall > current_fit.overall
                current, current_fit = candidate, fitness
                stall = 0 if improved else stall + 1
            else:
                stall += 1
            if current_fit.overall > best_fit.overall:
                best, best_fit = current, current_fit
        if stall >= stall_limit:
            current = fresh()
            current_fit = evaluator(current)
            if current_fit.overall > best_fit.overall:
                best, best_fit = current, current_fit
            stall = 0
    return PlanningResult(
        best_plan=best,
        best_fitness=best_fit,
        evaluations=evaluator.evaluations,
        generations_run=0,
    )
