"""Classical forward state-space planner baseline.

Breadth-first search over world states: from ``Sinit``, repeatedly apply
every *applicable* activity until a state satisfying all goal
specifications is reached; the action sequence becomes a SEQUENTIAL plan
tree.  This is the "traditional planning" reference point the GP-planning
literature (Muslea's SINERGY, Spector, GenPlan — the paper's refs [9-11])
compares against.

Because our state algebra is monotone (effects only add/overwrite
properties), duplicate-state pruning on the canonical state fingerprint
keeps the search small, and BFS returns a shortest valid sequential plan —
the strongest possible baseline on problems that need no iteration or
concurrency.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import PlanningError
from repro.plan.tree import PlanNode, Terminal, sequential
from repro.planner.engine import EvaluationEngine
from repro.planner.fitness import PlanEvaluator
from repro.planner.gp import PlanningResult
from repro.planner.problem import PlanningProblem
from repro.planner.state import WorldState

__all__ = ["forward_search"]


def _fingerprint(state: WorldState) -> tuple:
    key = state.merge_key()
    if key is not None:
        return key
    return tuple(
        (name, tuple(sorted(state.properties(name).items())))
        for name in sorted(state.data_names())
    )


def forward_search(
    problem: PlanningProblem,
    evaluator: PlanEvaluator | EvaluationEngine | None = None,
    max_states: int = 100_000,
) -> PlanningResult:
    """BFS to a goal state; raises :class:`PlanningError` when the goal is
    unreachable within *max_states* expansions."""

    def satisfied(state: WorldState) -> bool:
        return all(state.satisfies(goal) for goal in problem.goals)

    start = problem.initial_state
    if satisfied(start):
        raise PlanningError(
            "initial state already satisfies all goals; nothing to plan"
        )
    queue: deque[tuple[WorldState, tuple[str, ...]]] = deque([(start, ())])
    seen: set[Any] = {_fingerprint(start)}
    expansions = 0
    while queue:
        state, path = queue.popleft()
        expansions += 1
        if expansions > max_states:
            break
        for name, spec in problem.activities.items():
            if not spec.applicable(state):
                continue
            nxt = spec.apply(state)
            fp = _fingerprint(nxt)
            if fp in seen:
                continue
            seen.add(fp)
            nxt_path = path + (name,)
            if satisfied(nxt):
                tree = _as_tree(nxt_path)
                fitness = (
                    evaluator(tree)
                    if evaluator is not None
                    else _trivial_fitness(tree, problem)
                )
                return PlanningResult(
                    best_plan=tree,
                    best_fitness=fitness,
                    evaluations=expansions,
                    generations_run=0,
                )
            queue.append((nxt, nxt_path))
    raise PlanningError(
        f"forward search exhausted ({expansions} expansions) without "
        f"reaching the goal of problem {problem.name!r}"
    )


def _as_tree(path: tuple[str, ...]) -> PlanNode:
    if len(path) == 1:
        return Terminal(path[0])
    return sequential(*path)


def _trivial_fitness(tree: PlanNode, problem: PlanningProblem):
    from repro.planner.fitness import PlanEvaluator

    return PlanEvaluator(problem)(tree)
