"""Baseline planners for the GP-vs-baseline ablation (DESIGN.md A4)."""

from repro.planner.baselines.forward_search import forward_search
from repro.planner.baselines.hill_climber import hill_climb
from repro.planner.baselines.random_search import random_search

__all__ = ["random_search", "hill_climb", "forward_search"]
