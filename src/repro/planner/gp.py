"""The GP planning loop (Section 3.4.6).

Pseudocode from the paper::

    1. Initialize population;
    2. While some stopping conditions are not met, do
       (a) Evaluate the current population;
       (b) Select the individuals ... and form a new population;
       (c) Crossover;
       (d) Mutate;
    3. Select a plan that has the highest fitness as the final solution.

The stopping condition is the generation budget (Table 1: 20 generations);
``early_stop`` optionally terminates once a perfect-validity/goal plan
appears.  Crossover pairs the selected population in shuffled order, as is
conventional when the paper does not specify a pairing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro.plan.randgen import random_tree
from repro.plan.tree import PlanNode
from repro.planner.config import GPConfig
from repro.planner.engine import EvaluationEngine
from repro.planner.fitness import Fitness, PlanEvaluator
from repro.planner.operators import crossover, mutate
from repro.planner.problem import PlanningProblem
from repro.planner.selection import tournament_select

__all__ = ["GenerationStats", "PlanningResult", "GPPlanner"]


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation telemetry recorded by the planner.

    Timing fields are excluded from equality so that results from
    different evaluation backends (serial vs process pool) compare equal
    when — as guaranteed — the evolved populations are bit-identical.
    """

    generation: int
    best_fitness: float
    mean_fitness: float
    best_validity: float
    best_goal: float
    best_size: int
    mean_size: float
    cache_hit_rate: float = 0.0
    """Fraction of this generation's evaluations served from the fitness
    cache (in-batch dedup counts as a hit)."""
    eval_time: float = field(default=0.0, compare=False)
    """Wall-clock seconds spent evaluating this generation's population."""


@dataclass(frozen=True)
class PlanningResult:
    """Outcome of one GP run."""

    best_plan: PlanNode
    best_fitness: Fitness
    history: tuple[GenerationStats, ...] = ()
    evaluations: int = 0
    generations_run: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    analysis_rejected: int = field(default=0, compare=False)
    """Unique trees whose fitness came from the static pre-filter
    (:mod:`repro.analysis.plan_filter`) instead of full simulation.
    These are counted inside *evaluations* too — the number records
    avoided simulator work, not extra evaluations.  Excluded from
    equality (like *eval_time*): it describes how the run was computed,
    so filter-on and filter-off runs of one seed compare equal."""
    race_rejected: int = field(default=0, compare=False)
    """The subset of *analysis_rejected* floored by the ``"race"``
    filter mode's fork-interference check (0 in every other mode)."""
    eval_time: float = field(default=0.0, compare=False)
    """Total wall-clock seconds spent in population evaluation."""

    @property
    def solved(self) -> bool:
        """Perfect validity and goal fitness (the Table-2 success notion)."""
        return self.best_fitness.validity == 1.0 and self.best_fitness.goal == 1.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class GPPlanner:
    """Genetic-programming planner over plan trees.

    One planner instance is reusable across runs; every :meth:`plan` call
    draws from the RNG it was constructed with (pass distinct seeds for the
    10-run experiment of Section 5).
    """

    def __init__(
        self,
        config: GPConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or GPConfig()
        self.rng = as_rng(rng)

    # -- initialization (Section 3.4.2) ------------------------------------- #
    def initial_population(
        self,
        problem: PlanningProblem,
        seeds: Sequence[PlanNode] = (),
    ) -> list[PlanNode]:
        """The generation-0 population.

        Without *seeds* (or with ``config.library="off"``) this is the
        paper's initializer — ``population_size`` random trees — and the
        RNG stream is untouched by the seeding code, so the cold path is
        bit-identical to pre-library behavior.  With seeds (plans
        retrieved from the plan library), up to ``seed_fraction`` of the
        slots warm-start the search: the first copy of each seed enters
        verbatim, further copies are mutated variants at
        ``seed_mutation_rate``, and the remaining slots stay random.
        """
        cfg = self.config
        activities = list(problem.activity_names)
        usable = (
            [tree for tree in seeds if tree.size <= cfg.smax]
            if cfg.library != "off"
            else []
        )
        population: list[PlanNode] = []
        if usable:
            n_seeded = min(
                int(cfg.population_size * cfg.seed_fraction), cfg.population_size
            )
            for slot in range(n_seeded):
                base = usable[slot % len(usable)]
                if slot < len(usable):
                    population.append(base)
                else:
                    population.append(
                        mutate(
                            base,
                            activities,
                            self.rng,
                            cfg.smax,
                            cfg.seed_mutation_rate,
                            cfg.max_branch,
                        )
                    )
        population.extend(
            random_tree(
                activities,
                max_size=cfg.smax,
                rng=self.rng,
                max_branch=cfg.max_branch,
            )
            for _ in range(cfg.population_size - len(population))
        )
        return population

    # -- main loop ------------------------------------------------------------ #
    def plan(
        self,
        problem: PlanningProblem,
        evaluator: PlanEvaluator | None = None,
        engine: EvaluationEngine | None = None,
        seeds: Sequence[PlanNode] = (),
    ) -> PlanningResult:
        """Run the GP loop.

        Population scoring goes through an :class:`EvaluationEngine`
        (batched, deduped, cached, and parallel when ``config.workers`` >
        0).  Passing *evaluator* shares its fitness cache with the engine;
        passing *engine* reuses pool and cache across calls (the caller
        keeps ownership and closes it).  *seeds* are library-retrieved
        plans folded into generation 0 (see :meth:`initial_population`);
        they are ignored — RNG stream untouched — unless
        ``config.library`` enables warm starts.
        """
        cfg = self.config
        owns_engine = engine is None
        if engine is None:
            engine = EvaluationEngine(
                problem,
                cfg.weights,
                cfg.smax,
                cfg.simulation,
                workers=cfg.workers,
                evaluator=evaluator,
                static_filter=cfg.static_filter,
            )
        try:
            return self._plan(problem, engine, seeds)
        finally:
            if owns_engine:
                engine.close()

    def _plan(
        self,
        problem: PlanningProblem,
        engine: EvaluationEngine,
        seeds: Sequence[PlanNode] = (),
    ) -> PlanningResult:
        cfg = self.config
        activities = list(problem.activity_names)
        population = self.initial_population(problem, seeds)
        history: list[GenerationStats] = []
        generations_run = 0

        fitnesses = self._evaluate(engine, population)
        for generation in range(cfg.generations):
            generations_run = generation + 1
            history.append(self._stats(generation, population, fitnesses, engine))
            if cfg.early_stop and any(
                f.validity == 1.0 and f.goal == 1.0 for f in fitnesses
            ):
                break

            # (b) selection
            population = tournament_select(
                population, fitnesses, self.rng, cfg.tournament_size
            )
            # (c) crossover over shuffled pairs
            order = self.rng.permutation(len(population))
            next_population: list[PlanNode] = [population[0]] * len(population)
            for i in range(0, len(order) - 1, 2):
                ia, ib = int(order[i]), int(order[i + 1])
                child_a, child_b = crossover(
                    population[ia],
                    population[ib],
                    self.rng,
                    cfg.smax,
                    cfg.crossover_rate,
                )
                next_population[ia] = child_a
                next_population[ib] = child_b
            if len(order) % 2:
                last = int(order[-1])
                next_population[last] = population[last]
            # (d) mutation
            population = [
                mutate(
                    tree,
                    activities,
                    self.rng,
                    cfg.smax,
                    cfg.mutation_rate,
                    cfg.max_branch,
                )
                for tree in next_population
            ]
            fitnesses = self._evaluate(engine, population)

        best_idx = int(np.argmax([f.overall for f in fitnesses]))
        if cfg.critical_path_tiebreak == "on":
            best_idx = self._speedup_tiebreak(population, fitnesses, best_idx)
        return PlanningResult(
            best_plan=population[best_idx],
            best_fitness=fitnesses[best_idx],
            history=tuple(history),
            evaluations=engine.evaluations,
            generations_run=generations_run,
            cache_hits=engine.cache_hits,
            cache_misses=engine.cache_misses,
            analysis_rejected=getattr(engine, "analysis_rejected", 0),
            race_rejected=getattr(engine, "race_rejected", 0),
            eval_time=engine.eval_time,
        )

    @staticmethod
    def _speedup_tiebreak(
        population: list[PlanNode], fitnesses: list[Fitness], best_idx: int
    ) -> int:
        """Among individuals whose overall fitness exactly ties the best,
        prefer the greatest parallel speedup bound (shortest critical
        path).  Ties on speedup keep the historical first-maximal pick,
        so the off-mode choice is always a valid fallback."""
        from repro.analysis.concurrency import tree_speedup

        best = fitnesses[best_idx].overall
        winner, winner_speedup = best_idx, tree_speedup(population[best_idx])
        for idx, fitness in enumerate(fitnesses):
            if idx == winner or fitness.overall != best:
                continue
            speedup = tree_speedup(population[idx])
            if speedup > winner_speedup:
                winner, winner_speedup = idx, speedup
        return winner

    def _evaluate(
        self, engine: EvaluationEngine, population: list[PlanNode]
    ) -> list[Fitness]:
        """Score a population, remembering the per-batch telemetry deltas."""
        hits0, misses0 = engine.cache_hits, engine.cache_misses
        fitnesses = engine.evaluate_many(population)
        calls = (engine.cache_hits - hits0) + (engine.cache_misses - misses0)
        self._gen_hit_rate = (
            (engine.cache_hits - hits0) / calls if calls else 0.0
        )
        self._gen_eval_time = engine.last_batch_time
        return fitnesses

    def _stats(
        self,
        generation: int,
        population: list[PlanNode],
        fitnesses: list[Fitness],
        engine: EvaluationEngine,
    ) -> GenerationStats:
        overall = np.array([f.overall for f in fitnesses])
        sizes = np.array([tree.size for tree in population])
        best = int(np.argmax(overall))
        return GenerationStats(
            generation=generation,
            best_fitness=float(overall[best]),
            mean_fitness=float(overall.mean()),
            best_validity=fitnesses[best].validity,
            best_goal=fitnesses[best].goal,
            best_size=int(sizes[best]),
            mean_size=float(sizes.mean()),
            cache_hit_rate=self._gen_hit_rate,
            eval_time=self._gen_eval_time,
        )
