"""Persistent plan library: warm-start planning by retrieve → verify → repair.

Every case used to pay full GP planning — O(population × generations)
simulation — even when an identical process/goal was planned moments ago.
The paper's metainformation layer exists precisely so prior solutions can
be *found* and *reused* instead of re-derived; this module is the
repository half of that story (the planning service owns the ladder, see
:mod:`repro.services.planning`):

* **Key scheme.**  Entries are keyed by ``(problem_digest, goal_signature)``
  — a stable blake2b hex digest over the canonical activity set *T* plus an
  order-insensitive digest over the goal condition texts.  Both are plain
  hex strings, serializable into the persistent-storage service under
  ``planlib/<digest>/<goal_sig>`` (unlike the in-memory tuple
  ``process_fingerprint``).  Each entry additionally records the
  :func:`~repro.process.program.process_digest` of its stored process,
  re-checked when an entry is rehydrated from storage so a corrupted or
  foreign payload is dropped instead of enacted.
* **Retrieval ladder.**  An *exact* key match is a hit (re-verified by the
  analyzer before enactment); entries sharing the digest or overlapping
  goal conditions are *near-misses* whose plans seed the GP initial
  population; anything else is a miss.
* **Repair.**  When re-verification flags ``E501 unresolvable-service``
  terminals (a registered service vanished since the plan was stored),
  :func:`substitution_map` picks the effect-overlap-maximal resolvable
  replacement for exactly the flagged activities and
  :func:`~repro.planner.repair.swap_terminals` swaps those terminals —
  and nothing else — in the stored plan.

The library itself is engine-free and deterministic: no wall clock, no
randomness, iteration always over sorted or insertion-ordered views.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.plan.tree import PlanNode
from repro.planner.problem import PlanningProblem
from repro.process.model import ProcessDescription
from repro.process.program import process_digest

__all__ = [
    "STORAGE_PREFIX",
    "PlanEntry",
    "PlanLibrary",
    "goal_signature",
    "library_key",
    "problem_digest",
    "storage_key",
    "substitution_map",
]

#: Prefix of every library object in the persistent-storage service.
STORAGE_PREFIX = "planlib/"

#: Ladder outcomes, in the order the planning service tries them.
SOURCES = ("hit", "repair", "seed", "miss")


def _hex(payload: str) -> str:
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def _canon(value: Any) -> str:
    """A deterministic text form for effect/property literals.

    ``repr`` of a dict depends on insertion order; this recursion sorts
    mappings by key text so structurally-equal values always canonicalize
    identically across sessions.
    """
    if isinstance(value, Mapping):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(f"{k!r}:{_canon(v)}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canon(v) for v in value) + "]"
    return repr(value)


def goal_signature(goals: Iterable[Any]) -> str:
    """Order-insensitive hex signature of a goal set G.

    Conditions stringify deterministically (see
    :mod:`repro.process.conditions`), so sorting the texts makes the
    signature independent of authoring order.
    """
    return _hex("\n".join(sorted(str(goal) for goal in goals)))


def problem_digest(problem: PlanningProblem) -> str:
    """Stable hex digest of the activity set T of *problem*.

    Covers each spec's name, service, precondition text, canonicalized
    effects, data signature and cost — everything that shapes which plans
    are expressible and how they score.  The problem *name* and the
    initial state are deliberately excluded: N cases of one workflow over
    per-case data are exactly the reuse population, and initial-state
    drift is covered by re-verification plus the replanning protocol, not
    by the key.
    """
    rows = sorted(
        (
            spec.name,
            spec.service or "",
            str(spec.precondition),
            _canon(spec.effects),
            spec.inputs,
            spec.outputs,
            spec.cost,
        )
        for spec in problem.activities.values()
    )
    return _hex("\n".join(repr(row) for row in rows))


def library_key(problem: PlanningProblem) -> tuple[str, str]:
    """The library key ``(problem_digest, goal_signature)`` for *problem*."""
    return problem_digest(problem), goal_signature(problem.goals)


def storage_key(digest: str, goal_sig: str) -> str:
    """The persistent-storage key for one library entry."""
    return f"{STORAGE_PREFIX}{digest}/{goal_sig}"


@dataclass
class PlanEntry:
    """One stored solution: the plan, its emitted process, and provenance."""

    digest: str
    goal_sig: str
    plan: PlanNode
    process: ProcessDescription
    fitness: float
    goals: tuple[str, ...]
    """The goal condition texts (for near-miss overlap scoring)."""
    validity: float = 1.0
    goal: float = 1.0
    problem_name: str = "problem"
    stored_at: float = 0.0
    """Sim-clock time the entry was (last) stored."""
    uses: int = 0
    pd_digest: str = ""
    """:func:`process_digest` of *process* — integrity check on rehydrate."""

    def __post_init__(self) -> None:
        self.goals = tuple(self.goals)
        if not self.pd_digest:
            self.pd_digest = process_digest(self.process)

    @property
    def key(self) -> tuple[str, str]:
        return (self.digest, self.goal_sig)

    @property
    def storage_key(self) -> str:
        return storage_key(self.digest, self.goal_sig)

    def goal_overlap(self, goal_texts: Iterable[str]) -> int:
        """How many of *goal_texts* this entry's goal set shares."""
        mine = frozenset(self.goals)
        return sum(1 for text in goal_texts if text in mine)

    def to_payload(self) -> dict[str, Any]:
        """The storage-service payload (explicit schema, picklable)."""
        return {
            "digest": self.digest,
            "goal_sig": self.goal_sig,
            "plan": self.plan,
            "process": self.process,
            "fitness": self.fitness,
            "goals": self.goals,
            "validity": self.validity,
            "goal": self.goal,
            "problem_name": self.problem_name,
            "stored_at": self.stored_at,
            "uses": self.uses,
            "pd_digest": self.pd_digest,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "PlanEntry | None":
        """Rehydrate from a storage payload; None when it fails integrity.

        A payload that is not entry-shaped, or whose stored process no
        longer hashes to the recorded ``pd_digest``, is rejected — the
        library never offers a plan it cannot vouch for.
        """
        try:
            entry = PlanEntry(
                digest=payload["digest"],
                goal_sig=payload["goal_sig"],
                plan=payload["plan"],
                process=payload["process"],
                fitness=payload["fitness"],
                goals=tuple(payload["goals"]),
                validity=payload.get("validity", 1.0),
                goal=payload.get("goal", 1.0),
                problem_name=payload.get("problem_name", "problem"),
                stored_at=payload.get("stored_at", 0.0),
                uses=payload.get("uses", 0),
                pd_digest=payload.get("pd_digest", ""),
            )
        except (KeyError, TypeError):
            return None
        if process_digest(entry.process) != entry.pd_digest:
            return None
        return entry


@dataclass
class LibraryStats:
    """Counter snapshot returned by :meth:`PlanLibrary.stats`."""

    entries: int
    max_entries: int
    counters: dict[str, int] = field(default_factory=dict)


class PlanLibrary:
    """Bounded in-memory index over the persistent plan repository.

    The planning service keeps one instance per replica and mirrors every
    mutation into the storage service (see ``PlanningService``); lookups
    hit this index, so the warm path costs a dict probe, not an RPC.
    Eviction is LRU over *touches* (hits and stores), bounded by
    ``max_entries``; evicted keys are reported so the owner can delete the
    storage copies.
    """

    COUNTER_KEYS = (
        "hit",
        "repair",
        "seed",
        "miss",
        "store",
        "evict",
        "verify",
        "reject",
        "sync",
    )

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str], PlanEntry] = OrderedDict()
        self.counters: dict[str, int] = {key: 0 for key in self.COUNTER_KEYS}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    def count(self, kind: str) -> None:
        """Bump a ladder counter (unknown kinds get their own slot)."""
        self.counters[kind] = self.counters.get(kind, 0) + 1

    # -- lookup ------------------------------------------------------------ #
    def get(
        self, digest: str, goal_sig: str, *, touch: bool = True
    ) -> PlanEntry | None:
        """The exact entry for a key, refreshing its LRU position."""
        entry = self._entries.get((digest, goal_sig))
        if entry is not None and touch:
            self._entries.move_to_end((digest, goal_sig))
            entry.uses += 1
        return entry

    def related(
        self, digest: str, goal_texts: Iterable[str], *, limit: int = 4
    ) -> list[PlanEntry]:
        """Near-miss entries: same digest or overlapping goal conditions.

        Ordered by descending goal overlap (same-digest entries win ties),
        then by key for determinism; the exact key itself is excluded —
        callers reach it through :meth:`get`.
        """
        texts = tuple(goal_texts)
        scored: list[tuple[int, int, tuple[str, str], PlanEntry]] = []
        for key, entry in self._entries.items():
            overlap = entry.goal_overlap(texts)
            same_digest = 1 if entry.digest == digest else 0
            if overlap or same_digest:
                scored.append((-overlap, -same_digest, key, entry))
        scored.sort(key=lambda row: row[:3])
        return [entry for *_rank, entry in scored[:limit]]

    def entries(self) -> list[PlanEntry]:
        """All entries, least-recently-used first."""
        return list(self._entries.values())

    # -- mutation ---------------------------------------------------------- #
    def put(self, entry: PlanEntry) -> list[PlanEntry]:
        """Insert/replace an entry; returns any entries evicted by the cap."""
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        evicted: list[PlanEntry] = []
        while len(self._entries) > self.max_entries:
            _key, victim = self._entries.popitem(last=False)
            self.counters["evict"] += 1
            evicted.append(victim)
        return evicted

    def absorb(self, entry: PlanEntry) -> bool:
        """Adopt an entry rehydrated from storage *without* LRU side effects
        beyond insertion; returns False if the key is already present."""
        if entry.key in self._entries:
            return False
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key, last=False)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.counters["evict"] += 1
        return entry.key in self._entries

    def remove(self, digest: str, goal_sig: str) -> PlanEntry | None:
        return self._entries.pop((digest, goal_sig), None)

    def purge(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    # -- introspection ----------------------------------------------------- #
    def stats(self) -> LibraryStats:
        return LibraryStats(
            entries=len(self._entries),
            max_entries=self.max_entries,
            counters=dict(self.counters),
        )


def substitution_map(
    problem: PlanningProblem,
    unresolvable: Iterable[str],
    resolvable_services: Iterable[str],
) -> dict[str, str]:
    """Repair substitutions for exactly the unresolvable activity names.

    For each flagged activity the candidate set is every *other* activity
    in T whose service is currently resolvable; the winner maximizes
    effect-key overlap (ties broken by input overlap, then name) and must
    share at least one effect — a swap that produces none of the original
    outputs would silently change what the plan computes, so such
    activities are reported as irreparable by omission.  Callers compare
    ``set(mapping)`` against the flagged set to decide whether the repair
    is complete.
    """
    resolvable = frozenset(resolvable_services)
    mapping: dict[str, str] = {}
    for name in sorted(set(unresolvable)):
        target = problem.spec(name)
        if target is None:
            continue
        target_effects = frozenset(target.effects)
        target_inputs = frozenset(target.inputs)
        best: tuple[int, int, str] | None = None
        for cand_name in sorted(problem.activities):
            cand = problem.activities[cand_name]
            if cand_name == name or cand.service not in resolvable:
                continue
            effect_overlap = len(target_effects & frozenset(cand.effects))
            if not effect_overlap:
                continue
            input_overlap = len(target_inputs & frozenset(cand.inputs))
            rank = (-effect_overlap, -input_overlap, cand_name)
            if best is None or rank < best:
                best = rank
        if best is not None:
            mapping[name] = best[2]
    return mapping
