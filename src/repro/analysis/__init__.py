"""Semantic workflow verification (static analysis over process descriptions).

One vocabulary of :class:`~repro.analysis.findings.Finding` codes spans
structural validation (E1xx/W101, produced by
:mod:`repro.process.validate`), guard satisfiability (E2xx), loop analysis
(E301), dataflow (E401/W402), ontology resolvability (E5xx/W502) and
fork concurrency (E601/W602/E611/E612/W621).
:func:`analyze_process` runs every applicable pass;
:class:`~repro.analysis.plan_filter.PlanStaticFilter` applies the same
machinery per GP candidate inside the planner.
"""

from repro.analysis.analyzer import (
    analyze_process,
    has_errors,
    unresolvable_loci,
    verify_resolvable,
    verify_reusable,
)
from repro.analysis.bindings import (
    ProcessBindings,
    analyze_source,
    load_bindings,
    process_from_graph,
)
from repro.analysis.concurrency import (
    Conflict,
    ForkBranch,
    ForkRegion,
    WitnessReport,
    WitnessVerdict,
    concurrency_findings,
    critical_activities,
    fork_metrics,
    fork_regions,
    interference_conflicts,
    race_witness,
    tree_speedup,
)
from repro.analysis.conditions_pass import condition_findings
from repro.analysis.dataflow import bindings_known, dataflow_findings
from repro.analysis.findings import (
    FINDING_CODES,
    Finding,
    Severity,
    render_findings,
)
from repro.analysis.plan_filter import PlanStaticFilter
from repro.analysis.resolvability import resolvability_findings
from repro.analysis.sat import (
    conditions_overlap,
    definitely_unsatisfiable,
    possibly_true,
)

__all__ = [
    "FINDING_CODES",
    "Conflict",
    "Finding",
    "ForkBranch",
    "ForkRegion",
    "PlanStaticFilter",
    "ProcessBindings",
    "Severity",
    "WitnessReport",
    "WitnessVerdict",
    "analyze_process",
    "analyze_source",
    "bindings_known",
    "concurrency_findings",
    "condition_findings",
    "conditions_overlap",
    "critical_activities",
    "dataflow_findings",
    "definitely_unsatisfiable",
    "fork_metrics",
    "fork_regions",
    "has_errors",
    "interference_conflicts",
    "load_bindings",
    "possibly_true",
    "process_from_graph",
    "race_witness",
    "render_findings",
    "resolvability_findings",
    "tree_speedup",
    "unresolvable_loci",
    "verify_resolvable",
    "verify_reusable",
]
