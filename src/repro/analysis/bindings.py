"""Binding sidecars: the case context a bare ``.process`` file lacks.

The Section-2 process language carries control flow and guard conditions,
but not the per-activity data bindings (inputs/outputs/service) or the
case's initial data set — in the paper those live in the knowledge base's
Activity/Data frames, not the textual workflow.  A *bindings sidecar* is
a small JSON document supplying exactly that context so the full analyzer
pass set can run on a parsed file:

.. code-block:: json

    {
      "initial_data": ["D1", "D2"],
      "activities": {
        "POD1": {"service": "POD", "inputs": ["D1"], "outputs": ["D8"]}
      },
      "classifications": {"D1": "Image"},
      "services": [
        {"name": "POD", "inputs": ["D1"], "outputs": ["D8"]}
      ],
      "reserves": {"POD1": ["gpu", "scratch"]},
      "expect": [{"code": "W402", "locus": "POD1"}]
    }

Every key is optional.  ``services`` builds a minimal
:class:`~repro.ontology.frames.KnowledgeBase` (builtin Figure-12 shell +
one Service instance each + Data instances for ``classifications``) for
the resolvability pass; ``reserves`` declares the ordered resources an
activity holds while running (the concurrency pass's lock-order check);
``expect`` is ignored by the analyzer and read by the defect-corpus tests
as the fixture's expected findings.

Fixtures needing *structurally broken* graphs (E101-E105 — inexpressible
in the language, which parses only well-structured processes) use a
``graph`` document instead: explicit activities and transitions, loaded by
:func:`process_from_graph`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.analyzer import analyze_process
from repro.analysis.findings import Finding
from repro.ontology.builtin import DATA, SERVICE, builtin_shell
from repro.ontology.frames import KnowledgeBase
from repro.process.model import Activity, ActivityKind, ProcessDescription
from repro.process.parser import parse_condition, parse_process
from repro.process.structure import ast_to_process

__all__ = [
    "ProcessBindings",
    "load_bindings",
    "process_from_graph",
    "analyze_source",
]


@dataclass
class ProcessBindings:
    """Parsed sidecar content, ready to feed the analyzer."""

    initial_data: set[str] | None = None
    library: dict[str, Activity] = field(default_factory=dict)
    classifications: dict[str, str] = field(default_factory=dict)
    kb: KnowledgeBase | None = None
    reserves: dict[str, tuple[str, ...]] = field(default_factory=dict)
    expect: tuple[dict, ...] = ()

    @classmethod
    def from_dict(cls, doc: dict) -> "ProcessBindings":
        initial = doc.get("initial_data")
        library: dict[str, Activity] = {}
        for name, spec in (doc.get("activities") or {}).items():
            library[name] = Activity(
                name,
                ActivityKind.END_USER,
                spec.get("service"),
                tuple(spec.get("inputs") or ()),
                tuple(spec.get("outputs") or ()),
            )
        kb = None
        services = doc.get("services")
        if services:
            kb = builtin_shell("bindings")
            for svc in services:
                kb.new_instance(
                    SERVICE,
                    {
                        "Name": svc["name"],
                        "Type": "End-user",
                        "Input Data Set": list(svc.get("inputs") or ()),
                        "Output Data Set": list(svc.get("outputs") or ()),
                    },
                    id=f"SVC-{svc['name']}",
                )
            for data, classification in (doc.get("classifications") or {}).items():
                kb.new_instance(
                    DATA,
                    {"Name": data, "Classification": classification},
                    id=f"DATA-{data}",
                )
        return cls(
            initial_data=set(initial) if initial is not None else None,
            library=library,
            classifications=dict(doc.get("classifications") or {}),
            kb=kb,
            reserves={
                name: tuple(resources)
                for name, resources in (doc.get("reserves") or {}).items()
            },
            expect=tuple(doc.get("expect") or ()),
        )


def load_bindings(path: str | Path) -> ProcessBindings:
    return ProcessBindings.from_dict(json.loads(Path(path).read_text()))


def process_from_graph(doc: dict) -> ProcessDescription:
    """Build a (possibly invalid) graph from an explicit description.

    ``{"name": ..., "activities": [{"name", "kind", "service", "inputs",
    "outputs"}], "transitions": [{"source", "destination", "id",
    "condition"}]}`` — *kind* is an :class:`ActivityKind` value string
    (``"End-user activity"`` etc. — or the enum name, e.g. ``"FORK"``),
    *condition* a Section-2 condition expression.
    """
    pd = ProcessDescription(doc.get("name", "process"))
    for spec in doc["activities"]:
        raw_kind = spec.get("kind", "END_USER")
        try:
            kind = ActivityKind[raw_kind]
        except KeyError:
            kind = ActivityKind(raw_kind)
        pd.add(
            spec["name"],
            kind,
            spec.get("service"),
            tuple(spec.get("inputs") or ()),
            tuple(spec.get("outputs") or ()),
        )
    for tr in doc.get("transitions", ()):
        condition = tr.get("condition")
        pd.connect(
            tr["source"],
            tr["destination"],
            parse_condition(condition) if condition else None,
            id=tr.get("id"),
        )
    return pd


def analyze_source(
    text: str,
    bindings: ProcessBindings | None = None,
    name: str = "process",
) -> list[Finding]:
    """Parse Section-2 process *text*, elaborate it with the bindings'
    activity library, and run the full analyzer.

    Raises :class:`~repro.errors.ParseError` on malformed text — callers
    (the CLI's ``lint`` command) distinguish "cannot read" from "read and
    found problems"."""
    bindings = bindings or ProcessBindings()
    ast = parse_process(text)
    pd = ast_to_process(ast, name=name, library=bindings.library or None)
    return analyze_process(
        pd,
        kb=bindings.kb,
        initial_data=bindings.initial_data,
        classifications=bindings.classifications or None,
        reservations=bindings.reserves or None,
    )
