"""Condition analysis: satisfiability of Choice guards.

* ``E201 unsatisfiable-choice`` — a guard that provably holds in no state
  (``D.P > 8 and D.P < 3``): its branch is dead and the Choice silently
  falls through to the default arm at enactment.
* ``E202 overlapping-choice-guards`` — two guards of the same Choice that
  can hold simultaneously.  Section 3.1's Choice semantics pick "the
  unique successor that gains control"; overlapping guards break that
  uniqueness (the coordinator resolves it by taking the first match, so
  the second branch is unreachable whenever they overlap).

Unconditioned transitions and literal ``true`` guards are explicit
default/else arms by convention and exempt from the overlap check — the
planner emits ``true`` on every selective branch on purpose.  Guards
containing ``Not`` are skipped (see :mod:`repro.analysis.sat` for the
conservativeness contract); both checks are definite when they fire.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.sat import conditions_overlap, definitely_unsatisfiable
from repro.process.conditions import TRUE
from repro.process.model import ActivityKind, ProcessDescription

__all__ = ["condition_findings"]


def condition_findings(pd: ProcessDescription) -> list[Finding]:
    findings: list[Finding] = []
    choices = [a.name for a in pd if a.kind is ActivityKind.CHOICE]
    by_source: dict[str, list] = {name: [] for name in choices}
    for tr in pd.transitions:
        if tr.source in by_source:
            by_source[tr.source].append(tr)

    for choice in choices:
        guarded = []
        for tr in by_source[choice]:
            cond = tr.condition
            if cond is None or cond is TRUE or isinstance(cond, type(TRUE)):
                continue  # default/else arm
            if definitely_unsatisfiable(cond):
                findings.append(
                    Finding(
                        "E201", tr.id,
                        f"guard on {tr.id} ({choice!r} -> "
                        f"{tr.destination!r}) can never hold: {cond}",
                    )
                )
                continue
            guarded.append(tr)
        for i, first in enumerate(guarded):
            for second in guarded[i + 1:]:
                if conditions_overlap(first.condition, second.condition):
                    findings.append(
                        Finding(
                            "E202", second.id,
                            f"guards on {first.id} and {second.id} of "
                            f"Choice {choice!r} can hold simultaneously: "
                            f"({first.condition}) vs ({second.condition})",
                        )
                    )
    return findings
