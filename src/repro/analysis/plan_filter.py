"""Static pre-filter for GP candidate plans.

A candidate tree is *doomed* when no terminal it contains can ever
execute validly: a relaxed possible-values closure (Sinit values plus the
effects of every activity whose precondition is :func:`~repro.analysis.sat.
possibly_true` under the accumulated values, iterated to fixpoint) proves
that every precondition is definitely false in every reachable state.
The closure over-approximates reachability — it ignores ordering,
controller structure and value interactions — so a "doomed" verdict is
sound: the real simulator would mark every single execution invalid.

For a doomed tree, full simulation is pure waste *and* its outcome is
exactly predictable: both of the simulator's skip branches (activity
unknown to T, or known but inapplicable) append the identical partial
tuple, so simulating against a stub problem whose execution table is
empty yields bit-for-bit the same flows, weights and truncation flag as
the real problem would — just without evaluating a single precondition
or deriving a single state.  :meth:`PlanStaticFilter.fitness_for` in
``"exact"`` mode exploits this: it scores doomed trees through the stub
and the real goal scorer, producing a :class:`~repro.planner.fitness.
Fitness` bit-identical to full evaluation.  Evolution, traces and final
plans are therefore unchanged; only the work avoided shows up (in the
engine's ``analysis_rejected`` counter).

``"penalty"`` mode goes further — doomed trees get a floor fitness
without any simulation at all.  That *does* perturb goal-fitness credit
from Sinit, so it is opt-in via ``GPConfig.static_filter``.

``"race"`` mode is ``"exact"`` plus the concurrency verifier's
interference check applied at the tree level: a CONCURRENT controller
whose children hold spec-distinct terminals writing the same data key is
*racy* — the enacted fork's outcome depends on branch completion order,
so the plan is penalized to the floor before any simulation.  Like
``"penalty"``, this perturbs fitness (racy plans may simulate as
"solved" under the simulator's per-order enumeration), so it is opt-in;
doomed trees still score bit-identically through the exact stub path.
Racy rejections are counted separately (``race_rejected``).

The closure depends only on the *set* of terminal names, which GP
populations repeat endlessly, so verdicts are cached per name-set; racy
verdicts are cached per struct-key (the verdict depends on tree shape,
not just the name set).
"""

from __future__ import annotations

from repro.analysis.sat import possibly_true
from repro.plan.metrics import representation_efficiency
from repro.plan.tree import Controller, ControllerKind, PlanNode, Terminal
from repro.planner.fitness import Fitness, FitnessWeights
from repro.planner.problem import PlanningProblem
from repro.planner.simulate import SimulationOptions, simulate_plan
from repro.planner.state import WorldState

__all__ = ["PlanStaticFilter", "terminal_names"]

_EMPTY_TABLE: dict = {}


class _InertProblem:
    """Duck-typed stand-in for :class:`PlanningProblem` during stub
    simulation of doomed trees: the real initial state, an empty
    execution table (every terminal takes the activity-unknown branch,
    which appends the same partial tuple the real inapplicable branch
    would)."""

    __slots__ = ("initial_state",)

    def __init__(self, initial_state: WorldState) -> None:
        self.initial_state = initial_state

    def execution_table(self) -> dict:
        return _EMPTY_TABLE


def terminal_names(tree: PlanNode) -> frozenset[str]:
    """The set of activity names the tree's terminals reference."""
    names = set()
    stack = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, Terminal):
            names.add(node.activity)
        else:
            stack.extend(node.children)
    return frozenset(names)


class PlanStaticFilter:
    """Per-problem static rejector shared by all evaluations of one run."""

    MODES = ("off", "exact", "penalty", "race")

    def __init__(
        self,
        problem: PlanningProblem,
        weights: FitnessWeights,
        smax: int,
        options: SimulationOptions,
        mode: str = "exact",
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(
                f"static filter mode must be one of {self.MODES}, got {mode!r}"
            )
        self.problem = problem
        self.weights = weights
        self.smax = smax
        self.options = options
        self.mode = mode
        self.race_rejected = 0
        self._stub = _InertProblem(problem.initial_state)
        self._doomed_cache: dict[frozenset[str], bool] = {}
        self._racy_cache: dict[tuple, bool] = {}
        #: Values every (data, property) pair holds in Sinit — the
        #: closure's seed, shared across all cached name sets.
        seed: dict[tuple[str, str], set] = {}
        for data in problem.initial_state:
            for prop, value in problem.initial_state.properties(data).items():
                seed.setdefault((data, prop), set()).add(value)
        self._seed = seed

    def doomed(self, tree: PlanNode) -> bool:
        """Can no terminal of *tree* ever execute validly?  Sound: True
        implies the real simulation marks every execution invalid."""
        if self.mode == "off":
            return False
        names = terminal_names(tree)
        verdict = self._doomed_cache.get(names)
        if verdict is None:
            try:
                verdict = self._names_doomed(names)
            except TypeError:
                # Unhashable effect values defeat the closure's value
                # sets; give up (soundly) on this name set.
                verdict = False
            self._doomed_cache[names] = verdict
        return verdict

    def _names_doomed(self, names: frozenset[str]) -> bool:
        specs = {
            name: self.problem.activities[name]
            for name in names
            if name in self.problem.activities
        }
        if not specs:
            return True  # no terminal is even in T
        possible = {key: set(values) for key, values in self._seed.items()}
        valid: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, spec in specs.items():
                if name in valid:
                    continue
                if possibly_true(spec.precondition, possible):
                    valid.add(name)
                    changed = True
                    for data, props in spec.effects.items():
                        for prop, value in props.items():
                            possible.setdefault((data, prop), set()).add(value)
        return not valid

    def racy(self, tree: PlanNode) -> bool:
        """Does any CONCURRENT controller of *tree* put spec-distinct
        terminals with overlapping write sets on sibling branches?

        Mirrors the graph-level E601 check of
        :mod:`repro.analysis.concurrency` on the plan tree itself, before
        conversion: terminals with *identical* specs (service, inputs,
        outputs, effects) are replicas of one logical step and exempt —
        same-name terminals under one fork always are.
        """
        if self.mode != "race":
            return False
        key = tree.struct_key()
        verdict = self._racy_cache.get(key)
        if verdict is None:
            verdict = self._tree_racy(tree)
            self._racy_cache[key] = verdict
        return verdict

    def _tree_racy(self, node: PlanNode) -> bool:
        if isinstance(node, Terminal):
            return False
        assert isinstance(node, Controller)
        if node.kind is ControllerKind.CONCURRENT and len(node.children) >= 2:
            branches = [sorted(terminal_names(child)) for child in node.children]
            for i in range(len(branches)):
                for j in range(i + 1, len(branches)):
                    for a in branches[i]:
                        for b in branches[j]:
                            if self._pair_races(a, b):
                                return True
        return any(self._tree_racy(child) for child in node.children)

    def _pair_races(self, a: str, b: str) -> bool:
        spec_a = self.problem.activities.get(a)
        spec_b = self.problem.activities.get(b)
        if spec_a is None or spec_b is None:
            return False  # unknown terminals never execute (doomed's turf)
        if not (set(spec_a.outputs) & set(spec_b.outputs)):
            return False
        try:
            return self._race_spec(a, spec_a) != self._race_spec(b, spec_b)
        except TypeError:
            return True  # incomparable effect values defeat the exemption

    @staticmethod
    def _race_spec(name: str, spec) -> tuple:
        effects = tuple(
            (data, prop, spec.effects[data][prop])
            for data in sorted(spec.effects)
            for prop in sorted(spec.effects[data])
        )
        return (
            spec.service or name,
            frozenset(spec.inputs),
            frozenset(spec.outputs),
            effects,
        )

    def fitness_for(self, tree: PlanNode) -> Fitness | None:
        """The tree's fitness if it is statically doomed (or, in
        ``"race"`` mode, racy), else None (caller simulates normally).

        ``"exact"`` mode returns a value bit-identical to full
        evaluation; ``"penalty"`` returns a floor score keeping only the
        representation-efficiency term's size pressure; racy trees always
        take the penalty floor (there is no "exact" score for a plan
        whose enacted outcome is order-dependent).
        """
        if self.racy(tree):
            self.race_rejected += 1
            fr = representation_efficiency(tree, self.smax)
            return Fitness(0.0, 0.0, fr, self.weights.efficiency * fr, False)
        if not self.doomed(tree):
            return None
        fr = representation_efficiency(tree, self.smax)
        if self.mode == "penalty":
            return Fitness(0.0, 0.0, fr, self.weights.efficiency * fr, False)
        report = simulate_plan(tree, self._stub, self.options)
        fv = report.validity_fitness()
        fg = report.goal_fitness(self.problem)
        overall = (
            self.weights.validity * fv
            + self.weights.goal * fg
            + self.weights.efficiency * fr
        )
        return Fitness(fv, fg, fr, overall, report.truncated)
