"""Ontology resolvability: can the knowledge base serve this workflow?

Enactment resolves every end-user activity to a Service instance (the
Figure-12/13 frames) through matchmaking; this pass answers the same
question statically, against a :class:`~repro.ontology.frames.KnowledgeBase`
through the indexed :class:`~repro.ontology.query.Query` layer, without
touching the grid:

* ``E501 unresolvable-service`` — no Service instance whose ``Name`` slot
  matches the activity's service: matchmaking can never succeed.
* ``W502 capability-mismatch`` — a Service instance exists but its
  ``Input Data Set`` / ``Output Data Set`` cannot cover the activity's
  declared data *by classification*.  Data names are case-local (the
  Figure-10 P3DR2 feeds ``D3`` where the service frame says ``D2``), so
  the comparison resolves every data name to its ``Classification``
  through the KB's Data instances (or the caller's *classifications*
  map) and skips names whose class is unknown — a warning, because a
  container may still accept the data at runtime.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.ontology.builtin import DATA, SERVICE
from repro.ontology.frames import KnowledgeBase
from repro.ontology.query import Op, Query
from repro.process.model import ProcessDescription

__all__ = ["resolvability_findings"]


def _classification(
    kb: KnowledgeBase, classifications: dict[str, str], data: str
) -> str | None:
    known = classifications.get(data)
    if known is not None:
        return known
    for instance in Query(DATA).where("Name", Op.EQ, data).run(kb):
        cls = instance.get("Classification")
        if cls is not None:
            return cls
    return None


def _as_names(value: object) -> tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    return tuple(value)  # multi-valued slot


def resolvability_findings(
    pd: ProcessDescription,
    kb: KnowledgeBase,
    classifications: dict[str, str] | None = None,
) -> list[Finding]:
    classifications = classifications or {}
    findings: list[Finding] = []
    for activity in pd.end_user_activities():
        service = activity.service or activity.name
        matches = Query(SERVICE).where("Name", Op.EQ, service).run(kb)
        if not matches:
            findings.append(
                Finding(
                    "E501", activity.name,
                    f"activity {activity.name!r} requires service "
                    f"{service!r}, but no Service instance in the "
                    f"knowledge base offers it",
                )
            )
            continue
        # Capability check against the declared service frames: every
        # required data class must be offered by at least one frame slot
        # entry of the same class.
        for slot, declared in (
            ("Input Data Set", activity.inputs),
            ("Output Data Set", activity.outputs),
        ):
            if not declared:
                continue
            required: dict[str, str] = {}
            for data in declared:
                cls = _classification(kb, classifications, data)
                if cls is not None:
                    required[data] = cls
            if not required:
                continue
            offered: set[str] = set()
            for instance in matches:
                for data in _as_names(instance.get(slot)):
                    cls = _classification(kb, classifications, data)
                    if cls is not None:
                        offered.add(cls)
            missing = {
                data: cls for data, cls in required.items() if cls not in offered
            }
            if missing:
                what = "consume" if slot == "Input Data Set" else "produce"
                detail = ", ".join(
                    f"{data} ({cls})" for data, cls in sorted(missing.items())
                )
                findings.append(
                    Finding(
                        "W502", activity.name,
                        f"service {service!r} cannot {what} {detail} for "
                        f"activity {activity.name!r} (not in its {slot})",
                    )
                )
    return findings
