"""Interval/equality satisfiability for the condition language.

The Section-2 grammar only ever compares ``Data.Property`` against a
literal, so a conjunction of atoms decomposes per ``(data, property)`` pair
into one-dimensional constraint sets: equality pins, disequalities and
order bounds over a totally ordered value domain (numbers, or strings
under lexicographic order).  That makes satisfiability exact and cheap —
no solver needed.

Conservativeness contract: every *unsat* verdict here is definite (the
condition can hold in **no** state); *sat* may over-approximate (``Not``
parts and exotic value types are treated as unconstrained).  Findings are
raised only on definite verdicts, so the analyzer never produces a false
``E201``/``E202`` from this module.
"""

from __future__ import annotations

from itertools import product

from repro.process.conditions import (
    TRUE,
    And,
    Atom,
    Condition,
    Not,
    Or,
    Relation,
)

__all__ = [
    "atoms_satisfiable",
    "expand_dnf",
    "definitely_unsatisfiable",
    "conditions_overlap",
    "possibly_true",
]

#: Give up on DNF expansion past this many disjuncts (conditions in real
#: process descriptions have a handful of atoms; this bound only guards
#: pathological inputs).
_DNF_LIMIT = 64

_ORDER_BOUNDS = {Relation.LT, Relation.LE, Relation.GT, Relation.GE}


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _group_satisfiable(constraints: list[tuple[Relation, object]]) -> bool:
    """Exact feasibility of one property's constraint conjunction.

    The runtime value is a single scalar of one type; we try each candidate
    domain (numeric, string) and succeed if any admits a value.  Values of
    the *other* type make ``EQ`` and order atoms definitely false
    (:meth:`Relation.apply` mixed-type semantics) and ``NE`` atoms
    definitely true.
    """
    if all(rel is Relation.NE for rel, _ in constraints):
        return True  # a fresh value distinct from every literal exists
    domains = []
    if any(_is_num(v) for _, v in constraints):
        domains.append(_is_num)
    if any(isinstance(v, str) for _, v in constraints):
        domains.append(lambda v: isinstance(v, str))
    if not domains:
        # Only exotic value types: constrain nothing definite.
        return True
    return any(
        _domain_feasible(constraints, in_domain) for in_domain in domains
    )


def _domain_feasible(constraints, in_domain) -> bool:
    eqs: list[object] = []
    nes: list[object] = []
    lo: tuple[object, bool] | None = None  # (bound, inclusive)
    hi: tuple[object, bool] | None = None
    for rel, value in constraints:
        if not in_domain(value):
            if rel is Relation.NE:
                continue  # actual (other-typed) value always differs
            return False  # EQ/order against an other-typed literal
        if rel is Relation.EQ:
            eqs.append(value)
        elif rel is Relation.NE:
            nes.append(value)
        elif rel in (Relation.LT, Relation.LE):
            inclusive = rel is Relation.LE
            if hi is None or value < hi[0] or (value == hi[0] and not inclusive):
                hi = (value, inclusive)
        else:  # GT / GE
            inclusive = rel is Relation.GE
            if lo is None or value > lo[0] or (value == lo[0] and not inclusive):
                lo = (value, inclusive)

    if eqs:
        pinned = eqs[0]
        if any(v != pinned for v in eqs[1:]):
            return False
        if any(v == pinned for v in nes):
            return False
        if lo is not None and not (
            pinned >= lo[0] if lo[1] else pinned > lo[0]
        ):
            return False
        if hi is not None and not (
            pinned <= hi[0] if hi[1] else pinned < hi[0]
        ):
            return False
        return True

    if lo is not None and hi is not None:
        if lo[0] > hi[0]:
            return False
        if lo[0] == hi[0]:
            if not (lo[1] and hi[1]):
                return False
            # Single admissible point; NE may exclude it.
            return not any(v == lo[0] for v in nes)
    # A non-degenerate interval (or half-line) over a dense order always
    # survives finitely many disequalities.
    return True


def atoms_satisfiable(atoms: tuple[Atom, ...]) -> bool:
    """Exact satisfiability of a conjunction of atoms.

    Atoms over distinct ``(data, property)`` pairs are independent; each
    group reduces to :func:`_group_satisfiable`.
    """
    groups: dict[tuple[str, str], list[tuple[Relation, object]]] = {}
    for atom in atoms:
        groups.setdefault((atom.data, atom.property), []).append(
            (atom.relation, atom.value)
        )
    return all(_group_satisfiable(cs) for cs in groups.values())


def expand_dnf(cond: Condition) -> list[tuple[Atom, ...]] | None:
    """Expand *cond* into disjuncts of atom conjunctions.

    Returns None when the condition contains ``Not`` (negation under the
    missing-property semantics is not a simple relation flip) or the
    expansion exceeds :data:`_DNF_LIMIT` — callers treat None as "unknown"
    and stay silent.
    """
    if cond is TRUE or isinstance(cond, type(TRUE)):
        return [()]
    if isinstance(cond, Atom):
        return [(cond,)]
    if isinstance(cond, Not):
        return None
    if isinstance(cond, Or):
        out: list[tuple[Atom, ...]] = []
        for part in cond.parts:
            sub = expand_dnf(part)
            if sub is None:
                return None
            out.extend(sub)
            if len(out) > _DNF_LIMIT:
                return None
        return out
    if isinstance(cond, And):
        subs = []
        for part in cond.parts:
            sub = expand_dnf(part)
            if sub is None:
                return None
            subs.append(sub)
        total = 1
        for sub in subs:
            total *= len(sub)
            if total > _DNF_LIMIT:
                return None
        return [
            tuple(a for conj in combo for a in conj) for combo in product(*subs)
        ]
    return None  # unknown Condition subclass: stay silent


def definitely_unsatisfiable(cond: Condition) -> bool:
    """True only when *cond* provably holds in no state."""
    dnf = expand_dnf(cond)
    if dnf is None:
        return False
    return all(not atoms_satisfiable(conj) for conj in dnf)


def conditions_overlap(a: Condition, b: Condition) -> bool | None:
    """Can *a* and *b* hold in the same state?  None = cannot tell."""
    da, db = expand_dnf(a), expand_dnf(b)
    if da is None or db is None:
        return None
    return any(
        atoms_satisfiable(ca + cb) for ca in da for cb in db
    )


def possibly_true(
    cond: Condition, possible: dict[tuple[str, str], set]
) -> bool:
    """Can *cond* hold in a state drawing each property's value from
    *possible* (missing key = property never materializes)?

    Over-approximate (atom-wise, ``Not`` assumed satisfiable): a False
    verdict is definite.  Used by the planner's static pre-filter, whose
    soundness rests exactly on this one-sidedness.
    """
    if cond is TRUE or isinstance(cond, type(TRUE)):
        return True
    if isinstance(cond, Atom):
        values = possible.get((cond.data, cond.property))
        if not values:
            return False  # absent property: atom evaluates False
        apply = cond.relation.apply
        return any(apply(v, cond.value) for v in values)
    if isinstance(cond, And):
        return all(possibly_true(p, possible) for p in cond.parts)
    if isinstance(cond, Or):
        return any(possibly_true(p, possible) for p in cond.parts)
    return True  # Not / unknown: cannot refute
