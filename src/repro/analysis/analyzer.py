"""The multi-pass driver: one call, every finding.

:func:`analyze_process` chains the structural checks of
:mod:`repro.process.validate` with the semantic passes of this package:

1. **structure** — E101-E105/W101 (degree rules, reachability, pairing);
2. **conditions** — E201/E202 guard satisfiability (needs only the
   transition table, so it runs even on structurally broken graphs);
3. **dataflow** — E401/W402/E301 (runs only on structurally clean graphs:
   the must-reach fixpoint assumes a unique Begin and full reachability);
4. **concurrency** — E601/W602/E611/E612/W621 (also gated on structural
   cleanliness: fork-region recovery presumes well-structuredness);
5. **resolvability** — E501/W502, only when a knowledge base is supplied.

The pass set degrades gracefully with the information available: a bare
parsed ``.process`` file gets structure + condition analysis; add
input/output bindings and the dataflow pass wakes up; add a
``KnowledgeBase`` and services are resolved too.  Analysis never enacts,
simulates or messages anything — it is pure graph work, which is what
makes it cheap enough for the planner's per-candidate pre-filter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.concurrency import concurrency_findings
from repro.analysis.conditions_pass import condition_findings
from repro.analysis.dataflow import dataflow_findings
from repro.analysis.findings import Finding, Severity
from repro.analysis.resolvability import resolvability_findings
from repro.process.model import ProcessDescription
from repro.process.validate import check_process_findings

if TYPE_CHECKING:  # pragma: no cover
    from repro.ontology.frames import KnowledgeBase

__all__ = [
    "analyze_process",
    "has_errors",
    "unresolvable_loci",
    "verify_resolvable",
    "verify_reusable",
]


def analyze_process(
    pd: ProcessDescription,
    *,
    kb: "KnowledgeBase | None" = None,
    initial_data: set[str] | None = None,
    classifications: dict[str, str] | None = None,
    reservations: dict[str, tuple[str, ...]] | None = None,
    structured: bool = True,
) -> list[Finding]:
    """All findings for *pd*, structural first.

    *initial_data* — data names present in the case's initial data set;
    None presumes any never-produced data arrives with the case.
    *classifications* — data name -> classification, supplementing the
    KB's Data instances for the W502 capability check.
    *reservations* — activity -> ordered resources it reserves while
    running, feeding the concurrency pass's lock-order check.
    """
    findings = check_process_findings(pd, structured=structured)
    structurally_clean = not findings
    findings.extend(condition_findings(pd))
    if structurally_clean:
        findings.extend(dataflow_findings(pd, initial_data=initial_data))
        findings.extend(concurrency_findings(pd, reservations=reservations))
    if kb is not None:
        findings.extend(
            resolvability_findings(pd, kb, classifications=classifications)
        )
    return findings


def has_errors(findings: list[Finding]) -> bool:
    return any(f.severity is Severity.ERROR for f in findings)


def verify_resolvable(
    pd: ProcessDescription,
    kb: "KnowledgeBase",
    *,
    classifications: dict[str, str] | None = None,
) -> list[Finding]:
    """Re-verification entry point for plan reuse: resolvability only.

    A plan retrieved from the plan library was fully analyzed when it was
    stored; the only thing that can rot while it sits in the repository is
    the *registry* — a Service instance it depends on may have vanished
    (E501) or changed capabilities (W502).  This runs exactly the
    resolvability pass against the current knowledge base, so the planning
    service can re-verify a hit in microseconds before letting it anywhere
    near enactment.
    """
    return resolvability_findings(pd, kb, classifications=classifications)


def verify_reusable(
    pd: ProcessDescription,
    kb: "KnowledgeBase",
    *,
    classifications: dict[str, str] | None = None,
    reservations: dict[str, tuple[str, ...]] | None = None,
) -> list[Finding]:
    """Re-verification for plan-library hits: resolvability *plus* the
    concurrency pass.

    Resolvability can rot while a plan sits in the library (the registry
    moved); concurrency hazards cannot — but plans stored before the
    E6xx codes existed were never screened for them, so the ladder
    re-checks here.  The two passes differ in disposition: an E501 names
    the terminal to swap (repairable), while an E6xx condemns the plan's
    *shape* — the caller rejects such a hit outright rather than
    repairing it.
    """
    findings = resolvability_findings(pd, kb, classifications=classifications)
    findings.extend(concurrency_findings(pd, reservations=reservations))
    return findings


def unresolvable_loci(findings: list[Finding]) -> tuple[str, ...]:
    """The activity names flagged E501 (sorted, deduplicated).

    These are process-level loci; callers mapping back to plan terminals
    must undo the ``X_2`` repeated-activity renaming of
    :func:`repro.plan.convert.tree_to_process`.
    """
    return tuple(sorted({f.locus for f in findings if f.code == "E501"}))
