"""Forward def/use dataflow over the process graph.

A *definition* of data item ``D`` is an activity listing ``D`` among its
outputs; a *use* is an activity listing ``D`` among its inputs, or a
Choice whose outgoing-transition conditions read ``D``.  The pass runs a
classic forward must-reach fixpoint directly on the ATN graph with a
kind-aware meet:

* **Join** — all Fork branches execute, so definitions union;
* **Merge** — only one incoming path ran (Choice arms, or a loop's entry
  vs. back edge on the first iteration), so definitions intersect;
* everything else has a single predecessor.

Back edges participate like any other edge, so the fixpoint naturally
models the do-while semantics of iterative regions (the loop head's
must-set is the intersection of the entry path with the latch's — i.e.
first-iteration facts only, which is exactly what *must* means there).

Emitted findings:

* ``E401 undefined-data-use`` — a read of data that is written somewhere
  in the process but not on every path from Begin to the reader.  Data
  never written by any activity is presumed part of the case's initial
  data set — unless the caller supplies *initial_data*, which makes the
  presumption explicit and checkable.  Reads of data the activity itself
  also writes are exempt (the read-modify-write accumulator idiom).
* ``W402 dead-data-definition`` — a definition that on every outgoing
  path is overwritten before any read.  Definitions that can survive to
  End unread are final products, not dead stores, and are never flagged.
* ``E301 loop-invariant-iterative-condition`` — a back-edge (iterative)
  condition reading only data that no activity in its natural loop body
  writes: the condition's verdict can never change between iterations.

All three run at data-name granularity (activity input/output slots carry
names, not properties) and only when the process declares bindings at all
(:func:`bindings_known`); a bare parsed ``.process`` file has no
input/output annotations and stays silent rather than flagging everything.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.process.model import ActivityKind, ProcessDescription
from repro.process.structure import find_back_edges

__all__ = ["bindings_known", "dataflow_findings", "natural_loop_body"]


def bindings_known(pd: ProcessDescription) -> bool:
    """Does any end-user activity declare inputs or outputs?"""
    return any(a.inputs or a.outputs for a in pd.end_user_activities())


def _reads(pd: ProcessDescription) -> dict[str, set[str]]:
    """activity name -> data names it reads (inputs + guard conditions)."""
    reads: dict[str, set[str]] = {a.name: set(a.inputs) for a in pd}
    for tr in pd.transitions:
        if tr.condition is not None:
            reads[tr.source].update(tr.condition.data_names())
    return reads


def _writes(pd: ProcessDescription) -> dict[str, set[str]]:
    return {a.name: set(a.outputs) for a in pd}


def natural_loop_body(pd: ProcessDescription, latch: str, head: str) -> set[str]:
    """Activities of the natural loop of back edge ``latch -> head``
    (standard reverse-reachability from the latch, stopping at the head)."""
    body = {head, latch}
    stack = [latch]
    while stack:
        node = stack.pop()
        if node == head:
            continue
        for pred in pd.predecessors(node):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def _must_defined(
    pd: ProcessDescription,
    writes: dict[str, set[str]],
    start_defs: set[str],
    universe: set[str],
) -> dict[str, set[str]]:
    """Fixpoint ``IN[n]``: data defined on every path from Begin to *n*
    (exclusive of *n*'s own writes)."""
    begin = pd.begin().name
    names = [a.name for a in pd]
    in_: dict[str, set[str]] = {n: set(universe) for n in names}
    out: dict[str, set[str]] = {n: set(universe) for n in names}
    in_[begin] = set(start_defs)
    out[begin] = start_defs | writes[begin]
    changed = True
    while changed:
        changed = False
        for name in names:
            if name == begin:
                continue
            preds = pd.predecessors(name)
            if not preds:
                new_in: set[str] = set()  # unreachable: nothing guaranteed
            else:
                meet = (
                    set.union  # Join: all Fork branches executed
                    if pd.activity(name).kind is ActivityKind.JOIN
                    else set.intersection  # Merge / single pred
                )
                new_in = meet(*(out[p] for p in preds))
            if new_in != in_[name]:
                in_[name] = new_in
                changed = True
            new_out = new_in | writes[name]
            if new_out != out[name]:
                out[name] = new_out
                changed = True
    return in_


def _definition_is_dead(
    pd: ProcessDescription,
    definer: str,
    data: str,
    reads: dict[str, set[str]],
    writes: dict[str, set[str]],
) -> bool:
    """True iff every path out of *definer* overwrites *data* before any
    read, and none lets the value survive to End."""
    end = pd.end().name
    seen: set[str] = set()
    stack = list(pd.successors(definer))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if data in reads[node]:
            return False  # someone consumes this definition
        if node == end:
            return False  # the value survives as a final product
        if data in writes[node]:
            continue  # clobbered on this path before any read
        stack.extend(pd.successors(node))
    return True


def dataflow_findings(
    pd: ProcessDescription,
    initial_data: set[str] | None = None,
) -> list[Finding]:
    """E401 / W402 / E301 over a structurally valid process description."""
    if not bindings_known(pd):
        return []
    findings: list[Finding] = []
    reads = _reads(pd)
    writes = _writes(pd)
    written_somewhere = set().union(*writes.values()) if writes else set()
    read_somewhere = set().union(*reads.values()) if reads else set()
    universe = written_somewhere | read_somewhere | set(initial_data or ())

    # Without an explicit case data set, presume everything the process
    # never produces itself arrives with the case.
    start = (
        set(initial_data)
        if initial_data is not None
        else universe - written_somewhere
    )

    must_in = _must_defined(pd, writes, start, universe)

    # E401: reads not covered on every path.
    for activity in pd:
        name = activity.name
        # An activity may legitimately read its own prior output across
        # loop iterations only if some path actually defines it first;
        # its own writes do not feed its reads within one execution.
        # A read of data the activity itself also writes is the
        # read-modify-write accumulator idiom (Figure 10's POR refining
        # D8 in place; a loop body refining its own model): the activity
        # initializes the item on first execution, so the "not defined
        # upstream" complaint would be a false positive.
        available = must_in[name] | writes[name]
        for data in sorted(reads[name] - available):
            what = (
                f"guard of Choice {name!r}"
                if activity.kind is ActivityKind.CHOICE
                else f"activity {name!r}"
            )
            findings.append(
                Finding(
                    "E401", name,
                    f"{what} reads {data!r}, which is not defined on every "
                    f"path from Begin",
                )
            )

    # W402: definitions clobbered before any read on all paths.
    for activity in pd.end_user_activities():
        for data in sorted(activity.outputs):
            if _definition_is_dead(pd, activity.name, data, reads, writes):
                findings.append(
                    Finding(
                        "W402", activity.name,
                        f"activity {activity.name!r} defines {data!r}, but "
                        f"every downstream path overwrites it before any "
                        f"read",
                    )
                )

    # E301: loop conditions no body activity can influence.
    transitions = {(t.source, t.destination): t for t in pd.transitions}
    for latch, head in find_back_edges(pd):
        tr = transitions.get((latch, head))
        if tr is None or tr.condition is None:
            continue
        body = natural_loop_body(pd, latch, head)
        body_writes = set().union(*(writes[n] for n in body))
        condition_data = tr.condition.data_names()
        if condition_data and not (condition_data & body_writes):
            findings.append(
                Finding(
                    "E301", tr.id,
                    f"iterative condition on {tr.id} ({latch!r} -> "
                    f"{head!r}) reads {sorted(condition_data)}, but no "
                    f"loop-body activity writes any of them — the loop "
                    f"can never change its own verdict",
                )
            )
    return findings
