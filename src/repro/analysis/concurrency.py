"""Concurrency verifier: races, deadlocks and critical paths of FORK regions.

The coordination service enacts the branches of a ``Fork``/``Join`` pair
concurrently, merging each branch's data writes into the shared case as
they complete.  Nothing before this pass reasoned about what those
branches do *to each other*: a workflow that enacts cleanly under one
interleaving can silently lose a write, starve its join, or deadlock on
resource ordering under another.  Three passes close that gap, all static
and pure graph work like the rest of the analyzer:

1. **Interference** — per-branch read/write data-key footprints (the
   kind-aware def/use tables of :mod:`repro.analysis.dataflow`, so writes
   reachable only through CHOICE arms or LOOP bodies count too).  Sibling
   branches writing one key is ``E601 fork-interference`` (the surviving
   value depends on completion order); one branch reading what a sibling
   writes is ``W602 fork-read-write`` (the value seen depends on the
   interleaving).  Activities with *identical specs* — same service, same
   input set, same output set — are replicas of one logical step (the
   planner's ``X``/``X_2`` renaming, Figure 13's P3DR1..P3DR4) and are
   exempt: their writes are interchangeable by construction.

2. **Deadlock / starvation** — a branch-level wait graph: branch *i*
   waits on branch *j* when an activity of *i* reads a key only an
   activity of *j* produces.  A cycle means no interleaving delivers all
   transfers before the join (``E611 fork-deadlock``), reported with the
   exact reader cycle.  Declared resource reservations (an optional
   ``activity -> ordered resource list`` table) are checked for the
   classic lock-order inversion across branches, also ``E611``.  A Choice
   inside a branch whose outgoing guards leave a satisfiable gap — a
   concrete property valuation under which *no* arm holds, found with the
   1-D machinery of :mod:`repro.analysis.sat` — starves the join
   (``E612 fork-join-starvation``); the finding carries the witness
   valuation.

3. **Critical path** — unit-cost longest chains per branch.  A fork whose
   parallel speedup bound (total branch work over the longest branch)
   falls below 1.25 is effectively serial and reported as ``W621
   fork-imbalance``.  The same costs feed :func:`critical_activities`
   (the scheduler's optional placement hint) and :func:`tree_speedup`
   (the GP planner's optional tie-breaker).

Every verdict is conservative in the analyzer's usual sense: the pass
stays silent on graphs whose regions cannot be recovered (that is E104's
job), on DNF blow-ups, and on exotic literal types.  :func:`race_witness`
closes the loop dynamically — it replays a case journal against the
static conflicts and reports which flagged pairs actually interleaved on
the flagged key, giving the bench a measured precision number.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING

from repro.analysis.dataflow import _reads, _writes
from repro.analysis.findings import Finding
from repro.analysis.sat import expand_dnf
from repro.errors import ProcessStructureError
from repro.process.conditions import TRUE, Condition
from repro.process.model import Activity, ActivityKind, ProcessDescription
from repro.process.structure import find_back_edges

if TYPE_CHECKING:  # pragma: no cover
    from repro.plan.tree import PlanNode

__all__ = [
    "Conflict",
    "ForkBranch",
    "ForkRegion",
    "WitnessReport",
    "WitnessVerdict",
    "concurrency_findings",
    "critical_activities",
    "fork_metrics",
    "fork_regions",
    "interference_conflicts",
    "race_witness",
    "tree_speedup",
]

#: Give up on the E612 witness search past this many candidate states.
_WITNESS_LIMIT = 512

#: Speedup bound below which a fork is effectively serial (W621).
_IMBALANCE_FLOOR = 1.25


# -- fork-region recovery ---------------------------------------------------- #

class _Unstructured(Exception):
    """Internal: the graph defeats region recovery — stay silent (E104 is
    the structural pass's finding, not ours)."""


@dataclass(frozen=True)
class ForkBranch:
    """One branch of a fork region.

    *activities* lists every activity name the branch can visit, in walk
    order — end-user activities plus nested flow control, so choice-guard
    reads (attributed to the CHOICE name) and writes buried in CHOICE arms
    or LOOP bodies are part of the branch's footprint.  *critical_path* is
    the unit-cost longest chain (choice = worst arm, loop body once,
    nested fork = longest branch).
    """

    entry: str
    activities: tuple[str, ...]
    critical_path: float


@dataclass(frozen=True)
class ForkRegion:
    """A recovered Fork/Join pair with its branches."""

    fork: str
    join: str
    branches: tuple[ForkBranch, ...]

    @property
    def total_work(self) -> float:
        return sum(b.critical_path for b in self.branches)

    @property
    def critical_path(self) -> float:
        return max(b.critical_path for b in self.branches)

    @property
    def speedup(self) -> float:
        """Parallel speedup bound: total work over the longest branch."""
        longest = self.critical_path
        return self.total_work / longest if longest else float(len(self.branches))


class _RegionScan:
    """Graph walker mirroring the region parser of
    :mod:`repro.process.structure`, collecting fork regions instead of an
    AST.  It walks the *graph* (not the recovered AST) because the AST
    drops the FORKi/JOINi names the findings anchor to.
    """

    def __init__(self, pd: ProcessDescription) -> None:
        self.pd = pd
        self.regions: list[ForkRegion] = []
        self.latch_of: dict[str, str] = {}
        self.loop_heads: set[str] = set()
        for source, target in find_back_edges(pd):
            if (
                pd.activity(source).kind is not ActivityKind.CHOICE
                or pd.activity(target).kind is not ActivityKind.MERGE
                or source in self.latch_of
            ):
                raise _Unstructured
            self.latch_of[source] = target
            self.loop_heads.add(target)

    def run(self) -> None:
        successors = self.pd.successors(self.pd.begin().name)
        if len(successors) != 1:
            raise _Unstructured
        _, _, stop = self.parse_region(successors[0])
        if stop != self.pd.end().name:
            raise _Unstructured

    def parse_region(self, start: str) -> tuple[list[str], float, str]:
        """Walk forward from *start*; return (names, critical cost,
        sentinel) where the sentinel terminated the region."""
        names: list[str] = []
        crit = 0.0
        current = start
        while True:
            kind = self.pd.activity(current).kind
            if kind in (ActivityKind.END, ActivityKind.JOIN):
                return names, crit, current
            if kind is ActivityKind.BEGIN:
                raise _Unstructured
            if kind is ActivityKind.MERGE:
                if current not in self.loop_heads:
                    return names, crit, current
                sub, cost, current = self.parse_loop(current)
            elif kind is ActivityKind.CHOICE:
                if current in self.latch_of:
                    return names, crit, current
                sub, cost, current = self.parse_selective(current)
            elif kind is ActivityKind.FORK:
                sub, cost, current = self.parse_fork(current)
            else:  # end-user activity
                sub, cost, current = [current], 1.0, self._sole_successor(current)
            names.extend(sub)
            crit += cost

    def _sole_successor(self, name: str) -> str:
        successors = self.pd.successors(name)
        if len(successors) != 1:
            raise _Unstructured
        return successors[0]

    def parse_loop(self, head: str) -> tuple[list[str], float, str]:
        body, cost, latch = self.parse_region(self._sole_successor(head))
        if self.latch_of.get(latch) != head:
            raise _Unstructured
        successors = self.pd.successors(latch)
        exits = [s for s in successors if s != head]
        if len(successors) != 2 or len(exits) != 1:
            raise _Unstructured
        # Unit-cost model runs the body once (the must-execute iteration).
        return [head, *body, latch], cost, exits[0]

    def parse_selective(self, choice: str) -> tuple[list[str], float, str]:
        successors = self.pd.successors(choice)
        if len(successors) < 2:
            raise _Unstructured
        names = [choice]
        arm_costs: list[float] = []
        merges: set[str] = set()
        for succ in successors:
            sub, cost, sentinel = self.parse_region(succ)
            if (
                self.pd.activity(sentinel).kind is not ActivityKind.MERGE
                or sentinel in self.loop_heads
            ):
                raise _Unstructured
            merges.add(sentinel)
            names.extend(sub)
            arm_costs.append(cost)
        if len(merges) != 1:
            raise _Unstructured
        merge = merges.pop()
        names.append(merge)
        return names, max(arm_costs), self._sole_successor(merge)

    def parse_fork(self, fork: str) -> tuple[list[str], float, str]:
        successors = self.pd.successors(fork)
        if len(successors) < 2:
            raise _Unstructured
        branches: list[ForkBranch] = []
        joins: set[str] = set()
        for succ in successors:
            sub, cost, sentinel = self.parse_region(succ)
            if self.pd.activity(sentinel).kind is not ActivityKind.JOIN or not sub:
                raise _Unstructured
            joins.add(sentinel)
            branches.append(ForkBranch(succ, tuple(sub), cost))
        if len(joins) != 1:
            raise _Unstructured
        join = joins.pop()
        self.regions.append(ForkRegion(fork, join, tuple(branches)))
        names = [fork]
        for branch in branches:
            names.extend(branch.activities)
        names.append(join)
        crit = max(b.critical_path for b in branches)
        return names, crit, self._sole_successor(join)


def fork_regions(pd: ProcessDescription) -> tuple[ForkRegion, ...]:
    """All recovered Fork/Join regions of *pd* (inner regions before the
    fork that encloses them), or ``()`` when the graph is not
    well-structured — the structural pass owns that diagnosis."""
    try:
        scan = _RegionScan(pd)
        scan.run()
    except (_Unstructured, ProcessStructureError):
        return ()
    return tuple(scan.regions)


# -- pass 1: interference ---------------------------------------------------- #

@dataclass(frozen=True)
class Conflict:
    """One data-key hazard between two sibling-branch activities.

    *kind* is ``"write-write"`` or ``"read-write"``; for read-write,
    *first* is the reader and *second* the writer.  The *locus* is the
    order-independent activity pair, matching the Finding it feeds.
    """

    kind: str
    fork: str
    data: str
    first: str
    second: str

    @property
    def locus(self) -> str:
        low, high = sorted((self.first, self.second))
        return f"{low}<->{high}"


def _spec_key(activity: Activity) -> tuple:
    """Replica-exemption key: two end-user activities with one service and
    identical input/output sets are interchangeable copies of one logical
    step (plan-tree ``X``/``X_2`` renaming; Figure 13's P3DR1..P3DR4)."""
    if activity.kind is ActivityKind.END_USER:
        return (
            "svc",
            activity.service,
            frozenset(activity.inputs),
            frozenset(activity.outputs),
        )
    return ("fc", activity.name)


def interference_conflicts(
    pd: ProcessDescription,
    regions: tuple[ForkRegion, ...] | None = None,
) -> tuple[Conflict, ...]:
    """Every write-write and read-write hazard between sibling branches."""
    if regions is None:
        regions = fork_regions(pd)
    reads = _reads(pd)
    writes = _writes(pd)
    spec = {a.name: _spec_key(a) for a in pd}
    conflicts: list[Conflict] = []
    for region in regions:
        for i, left in enumerate(region.branches):
            for right in region.branches[i + 1:]:
                for a in left.activities:
                    for b in right.activities:
                        if spec[a] == spec[b]:
                            continue  # replicas of one logical step
                        for key in sorted(writes[a] & writes[b]):
                            low, high = sorted((a, b))
                            conflicts.append(
                                Conflict("write-write", region.fork, key, low, high)
                            )
                        for key in sorted(reads[a] & writes[b]):
                            conflicts.append(
                                Conflict("read-write", region.fork, key, a, b)
                            )
                        for key in sorted(reads[b] & writes[a]):
                            conflicts.append(
                                Conflict("read-write", region.fork, key, b, a)
                            )
    return tuple(conflicts)


# -- pass 2: deadlock / starvation ------------------------------------------- #

def _sccs(nodes: list[int], edges: dict[tuple[int, int], Conflict]) -> list[list[int]]:
    """Strongly connected components (iterative Tarjan over sorted nodes,
    so output order is deterministic)."""
    adjacency: dict[int, list[int]] = {n: [] for n in nodes}
    for i, j in sorted(edges):
        adjacency[i].append(j)
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = 0
    out: list[list[int]] = []

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(adjacency[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(adjacency[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                out.append(sorted(component))
    return out


def _wait_cycle_findings(
    region: ForkRegion,
    conflicts: tuple[Conflict, ...],
    branch_of: dict[str, int],
    suppressed: set[tuple[str, frozenset[int]]],
) -> list[Finding]:
    """E611 over the branch wait graph (reader branch -> writer branch)."""
    edges: dict[tuple[int, int], Conflict] = {}
    for c in conflicts:
        if c.kind != "read-write" or c.fork != region.fork:
            continue
        pair = (branch_of[c.first], branch_of[c.second])
        edges.setdefault(pair, c)
    findings: list[Finding] = []
    for component in _sccs(list(range(len(region.branches))), edges):
        if len(component) < 2:
            continue
        member = set(component)
        readers: list[str] = []
        details: list[str] = []
        for i in component:
            targets = sorted(j for (x, j) in edges if x == i and j in member)
            c = edges[(i, targets[0])]
            readers.append(c.first)
            details.append(f"{c.first!r} waits for {c.data!r} from {c.second!r}")
        locus = "->".join([*readers, readers[0]])
        findings.append(
            Finding(
                "E611", locus,
                f"branches of fork {region.fork!r} form a transfer-"
                f"dependency cycle: " + "; ".join(details) + " — no "
                f"interleaving satisfies all of them before join "
                f"{region.join!r}",
            )
        )
        for i in component:
            for j in component:
                if i != j:
                    suppressed.add((region.fork, frozenset((i, j))))
    return findings


def _reservation_findings(
    region: ForkRegion,
    reservations: dict[str, tuple[str, ...]],
) -> list[Finding]:
    """E611 lock-order inversions across sibling branches."""
    branch_orders: list[dict[tuple[str, str], tuple[str, str]]] = []
    for branch in region.branches:
        sequence = [
            (resource, name)
            for name in branch.activities
            for resource in reservations.get(name, ())
        ]
        orders: dict[tuple[str, str], tuple[str, str]] = {}
        for p in range(len(sequence)):
            for q in range(p + 1, len(sequence)):
                r1, a1 = sequence[p]
                r2, a2 = sequence[q]
                if r1 != r2:
                    orders.setdefault((r1, r2), (a1, a2))
        branch_orders.append(orders)
    findings: list[Finding] = []
    reported: set[frozenset[str]] = set()
    for i in range(len(branch_orders)):
        for j in range(i + 1, len(branch_orders)):
            for (r1, r2), (a1, _) in sorted(branch_orders[i].items()):
                inverted = branch_orders[j].get((r2, r1))
                if inverted is None:
                    continue
                pair = frozenset((r1, r2))
                if pair in reported:
                    continue
                reported.add(pair)
                b1 = inverted[0]
                low, high = sorted((a1, b1))
                findings.append(
                    Finding(
                        "E611", f"{low}->{high}->{low}",
                        f"lock-order inversion across branches of fork "
                        f"{region.fork!r}: {a1!r} reserves {r1!r} before "
                        f"{r2!r} while {b1!r} reserves {r2!r} before "
                        f"{r1!r} — the branches can deadlock holding one "
                        f"resource each",
                    )
                )
    return findings


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _guard_gap_witness(
    conditions: list[Condition],
) -> dict[tuple[str, str], object] | None:
    """A concrete property valuation under which no condition holds, or
    None when there is no gap / the search cannot be exact.

    Only *present-value* witnesses count: every referenced property is
    assigned a concrete value drawn from the guards' own literals (plus
    boundary and midpoint probes), so "the data never materialized" — an
    upstream-binding question, not a guard-coverage one — never produces
    a finding.
    """
    disjuncts: list[tuple] = []
    for condition in conditions:
        dnf = expand_dnf(condition)
        if dnf is None:
            return None
        disjuncts.extend(dnf)
    if any(not conjunction for conjunction in disjuncts):
        return None  # an unconditional disjunct always holds

    literals: dict[tuple[str, str], set] = {}
    for conjunction in disjuncts:
        for atom in conjunction:
            literals.setdefault((atom.data, atom.property), set()).add(atom.value)

    candidates: dict[tuple[str, str], list] = {}
    for dim in sorted(literals):
        values = literals[dim]
        numbers = sorted(v for v in values if _is_num(v))
        strings = sorted(v for v in values if isinstance(v, str))
        if len(numbers) + len(strings) != len(values):
            return None  # exotic literal types: stay silent
        probes: list = []
        for v in numbers:
            probes.extend((v - 1, v, v + 1))
        for a, b in zip(numbers, numbers[1:]):
            probes.append((a + b) / 2)
        for s in strings:
            probes.extend(("", s, s + "\x7f"))
        seen: set = set()
        ordered: list = []
        for v in sorted(probes, key=lambda v: (isinstance(v, str), v)):
            if v not in seen:
                seen.add(v)
                ordered.append(v)
        candidates[dim] = ordered

    total = 1
    for values in candidates.values():
        total *= len(values)
        if total > _WITNESS_LIMIT:
            return None

    dims = sorted(candidates)
    for combo in product(*(candidates[dim] for dim in dims)):
        state = dict(zip(dims, combo))
        satisfied = any(
            all(
                atom.relation.apply(state[(atom.data, atom.property)], atom.value)
                for atom in conjunction
            )
            for conjunction in disjuncts
        )
        if not satisfied:
            return state
    return None


def _starvation_findings(
    pd: ProcessDescription, region: ForkRegion
) -> list[Finding]:
    """E612: a Choice inside a branch whose guards leave a coverage gap."""
    back = set(find_back_edges(pd))
    latches = {source for source, _ in back}
    arms_of: dict[str, list[Condition | None]] = {}
    for tr in pd.transitions:
        if (tr.source, tr.destination) in back:
            continue
        arms_of.setdefault(tr.source, []).append(tr.condition)
    findings: list[Finding] = []
    branch_names = sorted(
        {name for branch in region.branches for name in branch.activities}
    )
    for name in branch_names:
        if pd.activity(name).kind is not ActivityKind.CHOICE or name in latches:
            continue
        arms = arms_of.get(name, [])
        if not arms or any(c is None or isinstance(c, type(TRUE)) for c in arms):
            continue  # a default arm always fires
        witness = _guard_gap_witness([c for c in arms if c is not None])
        if witness is None:
            continue
        rendering = ", ".join(
            f"{data}.{prop} = {value!r}"
            for (data, prop), value in sorted(witness.items())
        )
        findings.append(
            Finding(
                "E612", name,
                f"no guard of Choice {name!r} holds when {rendering} — its "
                f"branch of fork {region.fork!r} stalls there and join "
                f"{region.join!r} never fires",
            )
        )
    return findings


# -- pass 3: critical path --------------------------------------------------- #

def fork_metrics(pd: ProcessDescription) -> dict[str, dict[str, float]]:
    """Per-fork cost summary: branch count, total work, critical path and
    the parallel speedup bound."""
    return {
        region.fork: {
            "branches": float(len(region.branches)),
            "total_work": region.total_work,
            "critical_path": region.critical_path,
            "speedup": region.speedup,
        }
        for region in fork_regions(pd)
    }


def critical_activities(pd: ProcessDescription) -> frozenset[str]:
    """End-user activities on the process's critical path — everything
    except activities confined to fork branches strictly shorter than
    their region's longest branch.  The scheduler uses this as a
    placement hint; an empty-fork or unstructured graph degrades to "all
    activities are critical" (the hint is only ever an accelerant)."""
    critical = {a.name for a in pd.end_user_activities()}
    for region in fork_regions(pd):
        longest = region.critical_path
        for branch in region.branches:
            if branch.critical_path < longest:
                critical -= set(branch.activities)
    return frozenset(critical)


def tree_speedup(tree: "PlanNode") -> float:
    """Parallel speedup bound of a plan tree under unit activity cost:
    terminal count over the critical path (CONCURRENT/SELECTIVE take the
    longest child, SEQUENTIAL/ITERATIVE the sum).  The GP planner uses
    this as an optional tie-breaker between equal-fitness plans."""
    from repro.plan.tree import ControllerKind, Terminal

    def crit(node) -> float:
        if isinstance(node, Terminal):
            return 1.0
        costs = [crit(child) for child in node.children]
        if node.kind in (ControllerKind.CONCURRENT, ControllerKind.SELECTIVE):
            return max(costs)
        return float(sum(costs))

    work = sum(1.0 for node in tree.walk() if isinstance(node, Terminal))
    longest = crit(tree)
    return work / longest if longest else 1.0


# -- the combined pass -------------------------------------------------------- #

def concurrency_findings(
    pd: ProcessDescription,
    reservations: dict[str, tuple[str, ...]] | None = None,
) -> list[Finding]:
    """E601/W602/E611/E612/W621 over a structurally clean process.

    *reservations* optionally declares the ordered resources each activity
    reserves while it runs (the case description's ``reserves`` table);
    without it the lock-order check has nothing to say.
    """
    regions = fork_regions(pd)
    if not regions:
        return []
    findings: list[Finding] = []
    conflicts = interference_conflicts(pd, regions)

    branch_of_fork: dict[str, dict[str, int]] = {}
    for region in regions:
        table: dict[str, int] = {}
        for idx, branch in enumerate(region.branches):
            for name in branch.activities:
                table[name] = idx
        branch_of_fork[region.fork] = table

    # Deadlocks first: a mutual-wait pair's W602s are subsumed by its E611.
    suppressed: set[tuple[str, frozenset[int]]] = set()
    for region in regions:
        findings.extend(
            _wait_cycle_findings(
                region, conflicts, branch_of_fork[region.fork], suppressed
            )
        )
        if reservations:
            findings.extend(_reservation_findings(region, reservations))
        findings.extend(_starvation_findings(pd, region))

    groups: dict[tuple[str, str, str], list[Conflict]] = {}
    for c in conflicts:
        groups.setdefault((c.kind, c.fork, c.locus), []).append(c)
    for (kind, fork, locus), group in sorted(groups.items()):
        keys = sorted({c.data for c in group})
        rendered = ", ".join(repr(k) for k in keys)
        if kind == "write-write":
            low, high = sorted((group[0].first, group[0].second))
            findings.append(
                Finding(
                    "E601", locus,
                    f"activities {low!r} and {high!r} run on sibling "
                    f"branches of fork {fork!r} and both write {rendered} "
                    f"— the surviving value depends on completion order",
                )
            )
        else:
            branch_of = branch_of_fork[fork]
            pair = frozenset(
                (branch_of[group[0].first], branch_of[group[0].second])
            )
            if (fork, pair) in suppressed:
                continue
            reader, writer = group[0].first, group[0].second
            findings.append(
                Finding(
                    "W602", locus,
                    f"activity {reader!r} reads {rendered} that sibling-"
                    f"branch activity {writer!r} writes (fork {fork!r}) — "
                    f"the value it sees depends on the interleaving",
                )
            )

    for region in regions:
        longest = region.critical_path
        if len(region.branches) < 2 or longest <= 0:
            continue
        speedup = region.speedup
        if speedup >= _IMBALANCE_FLOOR:
            continue
        slowest = max(region.branches, key=lambda b: b.critical_path)
        findings.append(
            Finding(
                "W621", region.fork,
                f"fork {region.fork!r} is imbalanced: {longest:g} of its "
                f"{region.total_work:g} work units sit on the branch "
                f"entered at {slowest.entry!r}, bounding parallel speedup "
                f"at {speedup:.2f}x across {len(region.branches)} branches",
            )
        )

    return sorted(findings, key=lambda f: (f.code, f.locus))


# -- witness validation ------------------------------------------------------- #

@dataclass(frozen=True)
class WitnessVerdict:
    """One conflict replayed against a journal."""

    conflict: Conflict
    status: str  # "confirmed" | "refuted" | "unobserved"
    detail: str

    def to_dict(self) -> dict[str, str]:
        return {
            "kind": self.conflict.kind,
            "data": self.conflict.data,
            "locus": self.conflict.locus,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class WitnessReport:
    """Replay summary: how many static conflicts the journal bears out.

    *precision* is confirmed over checkable (confirmed + refuted);
    conflicts the journal cannot decide — an activity never dispatched,
    a guard-reader with no runtime footprint — count as neither.
    """

    verdicts: tuple[WitnessVerdict, ...]

    def _count(self, status: str) -> int:
        return sum(1 for v in self.verdicts if v.status == status)

    @property
    def confirmed(self) -> int:
        return self._count("confirmed")

    @property
    def refuted(self) -> int:
        return self._count("refuted")

    @property
    def unobserved(self) -> int:
        return self._count("unobserved")

    @property
    def checkable(self) -> int:
        return self.confirmed + self.refuted

    @property
    def precision(self) -> float:
        checkable = self.checkable
        return self.confirmed / checkable if checkable else 1.0


def race_witness(events, conflicts) -> WitnessReport:
    """Replay journal *events* against static *conflicts*.

    *events* is a case's event sequence (:class:`repro.obs.journal.
    JournalEvent` or anything with ``kind``/``time``/``attrs``).  Each
    activity's execution window runs from its last ``dispatch`` to its
    ``activity-complete``; a conflict is **confirmed** when both
    activities' windows overlap and the journal shows both touching the
    flagged key (reads from the dispatch's inputs, writes from the
    completion's outputs), **refuted** when both ran but their windows
    were disjoint, and **unobserved** when the journal cannot decide —
    so static findings earn a measured precision, not just plausibility.
    """
    starts: dict[str, tuple[float, frozenset[str]]] = {}
    spans: dict[str, tuple[float, float, frozenset[str], frozenset[str]]] = {}
    for event in events:
        attrs = event.attrs
        if event.kind == "dispatch":
            starts[attrs["activity"]] = (
                event.time, frozenset(attrs.get("inputs", ()))
            )
        elif event.kind == "activity-complete":
            name = attrs["activity"]
            start, inputs = starts.get(name, (event.time, frozenset()))
            spans[name] = (
                start, event.time, inputs, frozenset(attrs.get("outputs", ()))
            )

    verdicts: list[WitnessVerdict] = []
    for conflict in conflicts:
        a = spans.get(conflict.first)
        b = spans.get(conflict.second)
        if a is None or b is None:
            missing = conflict.first if a is None else conflict.second
            verdicts.append(
                WitnessVerdict(
                    conflict, "unobserved",
                    f"{missing!r} never completed in the journal",
                )
            )
            continue
        if conflict.kind == "write-write":
            relevant = conflict.data in a[3] and conflict.data in b[3]
        else:
            relevant = conflict.data in a[2] and conflict.data in b[3]
        if not relevant:
            verdicts.append(
                WitnessVerdict(
                    conflict, "unobserved",
                    f"{conflict.data!r} has no runtime footprint on both "
                    f"activities",
                )
            )
            continue
        if a[0] < b[1] and b[0] < a[1]:
            verdicts.append(
                WitnessVerdict(
                    conflict, "confirmed",
                    f"windows [{a[0]:g}, {a[1]:g}] and [{b[0]:g}, {b[1]:g}] "
                    f"interleave on {conflict.data!r}",
                )
            )
        else:
            verdicts.append(
                WitnessVerdict(
                    conflict, "refuted",
                    f"windows [{a[0]:g}, {a[1]:g}] and [{b[0]:g}, {b[1]:g}] "
                    f"are disjoint",
                )
            )
    return WitnessReport(tuple(verdicts))
