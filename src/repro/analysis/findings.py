"""The finding vocabulary shared by every analysis pass.

A :class:`Finding` is one diagnostic about a process description: a stable
machine-readable code, a severity, the activity or transition it anchors to
(its *locus*), and a human explanation.  Structural validation
(:mod:`repro.process.validate`), the semantic passes under
:mod:`repro.analysis`, the coordination service's case-intake gate and the
``repro-grid lint`` CLI all speak this vocabulary, so a workflow author
sees the same ``E201 unsatisfiable-choice`` whether the diagnosis comes
from the linter or from a refused case.

Codes are grouped by pass:

===== ================================ ========
code  name                             severity
===== ================================ ========
E101  begin-end-count                  error
E102  degree-violation                 error
E103  condition-outside-choice         error
E104  not-well-structured              error
W101  unreachable-activity             warning
E105  cannot-reach-end                 error
E201  unsatisfiable-choice             error
E202  overlapping-choice-guards        error
E301  loop-invariant-iterative-condition error
E401  undefined-data-use               error
W402  dead-data-definition             warning
E501  unresolvable-service             error
W502  capability-mismatch              warning
E601  fork-interference                error
W602  fork-read-write                  warning
E611  fork-deadlock                    error
E612  fork-join-starvation             error
W621  fork-imbalance                   warning
===== ================================ ========

Severity is fixed per code (the leading letter): ``E`` codes are errors —
the workflow cannot enact meaningfully — and ``W`` codes are warnings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Finding", "FINDING_CODES", "render_findings"]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: code -> (short name, one-line description).  The single source of truth
#: for the reference table in the README.
FINDING_CODES: dict[str, tuple[str, str]] = {
    "E101": ("begin-end-count", "not exactly one Begin/End activity"),
    "E102": ("degree-violation", "activity in/out-degree breaks its kind's rule"),
    "E103": ("condition-outside-choice",
             "condition on a transition that does not leave a Choice"),
    "E104": ("not-well-structured",
             "Fork/Join or Choice/Merge pairing cannot be recovered"),
    "W101": ("unreachable-activity", "activity unreachable from Begin"),
    "E105": ("cannot-reach-end", "activity cannot reach End"),
    "E201": ("unsatisfiable-choice", "Choice guard can never hold"),
    "E202": ("overlapping-choice-guards",
             "two guards of one Choice can hold simultaneously"),
    "E301": ("loop-invariant-iterative-condition",
             "iterative condition reads data no loop-body activity writes"),
    "E401": ("undefined-data-use",
             "data read before any path defines it"),
    "W402": ("dead-data-definition",
             "data definition overwritten on every path before any read"),
    "E501": ("unresolvable-service",
             "no Service instance in the knowledge base offers the service"),
    "W502": ("capability-mismatch",
             "service cannot consume/produce the activity's data classes"),
    "E601": ("fork-interference",
             "sibling Fork branches write the same data key"),
    "W602": ("fork-read-write",
             "a Fork branch reads data a sibling branch writes"),
    "E611": ("fork-deadlock",
             "Fork branches form a transfer or lock-order cycle"),
    "E612": ("fork-join-starvation",
             "guard gap inside a Fork branch can starve its Join"),
    "W621": ("fork-imbalance",
             "fork critical path leaves little parallel speedup"),
}


def _severity_for(code: str) -> Severity:
    return Severity.ERROR if code.startswith("E") else Severity.WARNING


@dataclass(frozen=True)
class Finding:
    """One diagnostic: code, locus and explanation.

    *locus* names the activity or transition the finding anchors to (empty
    for whole-process findings such as E101).  *message* is the human
    explanation; ``str(finding)`` renders the conventional one-line form.
    """

    code: str
    locus: str
    message: str

    def __post_init__(self) -> None:
        if self.code not in FINDING_CODES:
            raise ValueError(f"unknown finding code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return _severity_for(self.code)

    @property
    def name(self) -> str:
        """The code's short kebab-case name (e.g. ``unsatisfiable-choice``)."""
        return FINDING_CODES[self.code][0]

    def __str__(self) -> str:
        where = f" at {self.locus}" if self.locus else ""
        return f"{self.code} {self.severity.value}{where}: {self.message}"

    def to_dict(self) -> dict[str, str]:
        """JSON-friendly form (``repro-grid lint --format json``)."""
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "locus": self.locus,
            "message": self.message,
        }


def render_findings(findings: list[Finding]) -> str:
    """Human-readable multi-line rendering, errors first."""
    ordered = sorted(
        findings, key=lambda f: (f.severity is not Severity.ERROR, f.code)
    )
    return "\n".join(str(f) for f in ordered)
