"""Recursive-descent parser for the process-description language.

Concrete grammar (a faithful concretization of the Section-2 BNF; the
published production rules are typeset ambiguously, so we fix delimiters as
follows and document the choice in DESIGN.md):

.. code-block:: text

    process     := "BEGIN" sep stmts "END"
    stmts       := stmt ( sep stmt )* [sep]
    stmt        := NAME                                    -- end-user activity
                 | "{" "FORK" block block+ "JOIN" "}"      -- concurrent
                 | "{" "ITERATIVE" "{" "COND" conditions "}"
                                   "{" stmts "}" "}"       -- do-while loop
                 | "{" "CHOICE" guarded guarded+ "MERGE" "}"
    guarded     := "{" "COND" conditions "}" "{" stmts "}"
    block       := "{" stmts "}"
    conditions  := disj ( sep disj )*                      -- list = conjunction
    disj        := conj ( "or" conj )*
    conj        := unary ( "and" unary )*
    unary       := "not" unary | "true" | atom
    atom        := NAME "." NAME REL value
    REL         := "<" | ">" | "=" | "!=" | "<=" | ">="
    value       := NUMBER | STRING | NAME
    sep         := ";" | ","

:func:`parse_process` returns the AST; :func:`parse_condition` parses a bare
condition expression (used when reading Figure-13 style condition tables).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.process.ast_nodes import (
    ActivityNode,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Node,
    seq,
)
from repro.process.conditions import TRUE, And, Atom, Condition, Not, Or, Relation
from repro.process.lexer import Token, TokenKind, tokenize

__all__ = ["parse_process", "parse_condition"]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------- #
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != TokenKind.EOF:
            self._pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            got = self.current
            raise ParseError(
                f"expected {want!r}, got {got.text or got.kind!r} "
                f"at line {got.line}, column {got.column}",
                got.line,
                got.column,
            )
        return self.advance()

    def skip_seps(self) -> None:
        while self.accept(TokenKind.SEP):
            pass

    # -- grammar ------------------------------------------------------------ #
    def parse_process(self) -> Node:
        self.expect(TokenKind.KEYWORD, "BEGIN")
        self.skip_seps()
        body = self.parse_stmts(stop={"END"})
        self.expect(TokenKind.KEYWORD, "END")
        self.skip_seps()
        self.expect(TokenKind.EOF)
        return body

    def parse_stmts(self, stop: set[str]) -> Node:
        children: list[Node] = [self.parse_stmt()]
        while True:
            self.skip_seps()
            if self.check(TokenKind.EOF) or self.check(TokenKind.RBRACE):
                break
            if self.current.kind == TokenKind.KEYWORD and self.current.text in stop:
                break
            children.append(self.parse_stmt())
        return seq(*children)

    def parse_stmt(self) -> Node:
        if self.check(TokenKind.NAME):
            return ActivityNode(self.advance().text)
        if self.check(TokenKind.LBRACE):
            return self.parse_block_stmt()
        got = self.current
        raise ParseError(
            f"expected an activity or a block, got {got.text or got.kind!r} "
            f"at line {got.line}, column {got.column}",
            got.line,
            got.column,
        )

    def parse_block_stmt(self) -> Node:
        self.expect(TokenKind.LBRACE)
        keyword = self.expect(TokenKind.KEYWORD)
        if keyword.text == "FORK":
            node: Node = self.parse_fork_tail()
        elif keyword.text == "ITERATIVE":
            node = self.parse_iterative_tail()
        elif keyword.text == "CHOICE":
            node = self.parse_choice_tail()
        else:
            raise ParseError(
                f"expected FORK, ITERATIVE or CHOICE after '{{', got "
                f"{keyword.text!r} at line {keyword.line}, column {keyword.column}",
                keyword.line,
                keyword.column,
            )
        self.expect(TokenKind.RBRACE)
        return node

    def parse_fork_tail(self) -> ForkNode:
        branches: list[Node] = []
        while self.check(TokenKind.LBRACE):
            branches.append(self.parse_braced_stmts())
        self.expect(TokenKind.KEYWORD, "JOIN")
        if len(branches) < 2:
            token = self.current
            raise ParseError(
                f"FORK needs at least two branches, got {len(branches)} "
                f"at line {token.line}",
                token.line,
                token.column,
            )
        return ForkNode(tuple(branches))

    def parse_iterative_tail(self) -> IterativeNode:
        self.expect(TokenKind.LBRACE)
        self.expect(TokenKind.KEYWORD, "COND")
        condition = self.parse_conditions()
        self.expect(TokenKind.RBRACE)
        body = self.parse_braced_stmts()
        return IterativeNode(condition, body)

    def parse_choice_tail(self) -> ChoiceNode:
        branches: list[tuple[Condition, Node]] = []
        while self.check(TokenKind.LBRACE):
            self.expect(TokenKind.LBRACE)
            self.expect(TokenKind.KEYWORD, "COND")
            condition = self.parse_conditions()
            self.expect(TokenKind.RBRACE)
            body = self.parse_braced_stmts()
            branches.append((condition, body))
        self.expect(TokenKind.KEYWORD, "MERGE")
        if len(branches) < 2:
            token = self.current
            raise ParseError(
                f"CHOICE needs at least two alternatives, got {len(branches)} "
                f"at line {token.line}",
                token.line,
                token.column,
            )
        return ChoiceNode(tuple(branches))

    def parse_braced_stmts(self) -> Node:
        self.expect(TokenKind.LBRACE)
        self.skip_seps()
        body = self.parse_stmts(stop=set())
        self.expect(TokenKind.RBRACE)
        return body

    # -- conditions ---------------------------------------------------------- #
    def parse_conditions(self) -> Condition:
        """A separator-joined list of conditions denotes their conjunction."""
        parts = [self.parse_disjunction()]
        while self.accept(TokenKind.SEP):
            if self.check(TokenKind.RBRACE):
                break
            parts.append(self.parse_disjunction())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def parse_disjunction(self) -> Condition:
        parts = [self.parse_conjunction()]
        while self.accept(TokenKind.KEYWORD, "or"):
            parts.append(self.parse_conjunction())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def parse_conjunction(self) -> Condition:
        parts = [self.parse_unary()]
        while self.accept(TokenKind.KEYWORD, "and"):
            parts.append(self.parse_unary())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def parse_unary(self) -> Condition:
        if self.accept(TokenKind.KEYWORD, "not"):
            return Not(self.parse_unary())
        if self.accept(TokenKind.KEYWORD, "true"):
            return TRUE
        return self.parse_atom()

    def parse_atom(self) -> Atom:
        data = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.DOT)
        prop_token = self.advance()
        if prop_token.kind not in (TokenKind.NAME, TokenKind.KEYWORD):
            raise ParseError(
                f"expected a property name after '.', got {prop_token.text!r} "
                f"at line {prop_token.line}, column {prop_token.column}",
                prop_token.line,
                prop_token.column,
            )
        relation = Relation(self.expect(TokenKind.REL).text)
        value = self.parse_value()
        return Atom(data, prop_token.text, relation, value)

    def parse_value(self) -> object:
        token = self.advance()
        if token.kind == TokenKind.NUMBER:
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == TokenKind.STRING:
            return token.text
        if token.kind == TokenKind.NAME:
            return token.text
        raise ParseError(
            f"expected a value, got {token.text or token.kind!r} "
            f"at line {token.line}, column {token.column}",
            token.line,
            token.column,
        )


def parse_process(text: str) -> Node:
    """Parse a full ``BEGIN ... END`` process description into an AST."""
    return _Parser(tokenize(text)).parse_process()


def parse_condition(text: str) -> Condition:
    """Parse a bare condition expression (no BEGIN/END wrapper)."""
    parser = _Parser(tokenize(text))
    condition = parser.parse_conditions()
    parser.expect(TokenKind.EOF)
    return condition
