"""Whole-graph structural validation of process descriptions.

Section 3.1 fixes the degree rules for every activity kind; a valid process
description additionally has a unique Begin/End, every activity reachable
from Begin and co-reachable to End, and a well-structured (Fork/Join,
Choice/Merge properly paired) topology — the latter checked by attempting
AST recovery.

Violations are reported as structured :class:`~repro.analysis.findings.Finding`
objects (codes E101-E105, W101) by :func:`check_process_findings`, sharing
one vocabulary and renderer with the semantic passes of
:mod:`repro.analysis`.  :func:`check_process` is the string-compatible shim
for existing callers; :func:`validate_process` raises
:class:`ProcessStructureError` listing every violation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConversionError, ProcessStructureError
from repro.process.model import ActivityKind, ProcessDescription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis -> process)
    from repro.analysis.findings import Finding

__all__ = ["validate_process", "check_process", "check_process_findings"]

# (min_in, max_in, min_out, max_out); None = unbounded.
_DEGREE_RULES: dict[ActivityKind, tuple[int, int | None, int, int | None]] = {
    ActivityKind.BEGIN: (0, 0, 1, 1),
    ActivityKind.END: (1, 1, 0, 0),
    ActivityKind.END_USER: (1, 1, 1, 1),
    ActivityKind.FORK: (1, 1, 2, None),
    ActivityKind.JOIN: (2, None, 1, 1),
    ActivityKind.CHOICE: (1, 1, 2, None),
    ActivityKind.MERGE: (2, None, 1, 1),
}


def check_process_findings(
    pd: ProcessDescription, structured: bool = True
) -> "list[Finding]":
    """Structural findings for *pd* (empty = valid).

    Every violation of Section 3.1's rules becomes one finding anchored to
    the offending activity or transition; aggregate properties (Begin/End
    multiplicity, well-structuredness) anchor to the whole process.
    """
    from repro.analysis.findings import Finding  # lazy: analysis imports process

    findings: list[Finding] = []

    begins = [a for a in pd if a.kind is ActivityKind.BEGIN]
    ends = [a for a in pd if a.kind is ActivityKind.END]
    if len(begins) != 1:
        findings.append(
            Finding(
                "E101", "",
                f"expected exactly one Begin activity, found {len(begins)}",
            )
        )
    if len(ends) != 1:
        findings.append(
            Finding(
                "E101", "",
                f"expected exactly one End activity, found {len(ends)}",
            )
        )

    for activity in pd:
        min_in, max_in, min_out, max_out = _DEGREE_RULES[activity.kind]
        din, dout = pd.in_degree(activity.name), pd.out_degree(activity.name)
        if din < min_in or (max_in is not None and din > max_in):
            findings.append(
                Finding(
                    "E102", activity.name,
                    f"{activity.kind.value} activity {activity.name!r} has "
                    f"in-degree {din} (expected "
                    f"{min_in if max_in == min_in else f'>= {min_in}'})",
                )
            )
        if dout < min_out or (max_out is not None and dout > max_out):
            findings.append(
                Finding(
                    "E102", activity.name,
                    f"{activity.kind.value} activity {activity.name!r} has "
                    f"out-degree {dout} (expected "
                    f"{min_out if max_out == min_out else f'>= {min_out}'})",
                )
            )

    # Conditions may only decorate transitions leaving a Choice.
    for tr in pd.transitions:
        if tr.condition is None:
            continue
        if pd.activity(tr.source).kind is not ActivityKind.CHOICE:
            findings.append(
                Finding(
                    "E103", tr.id,
                    f"transition {tr.id} ({tr.source!r} -> "
                    f"{tr.destination!r}) carries a condition but does not "
                    f"leave a Choice",
                )
            )

    if len(begins) == 1 and len(ends) == 1:
        reachable = _forward_closure(pd, begins[0].name)
        for name in sorted(a.name for a in pd if a.name not in reachable):
            findings.append(
                Finding(
                    "W101", name,
                    f"activity {name!r} is unreachable from Begin",
                )
            )
        coreachable = _backward_closure(pd, ends[0].name)
        for name in sorted(a.name for a in pd if a.name not in coreachable):
            findings.append(
                Finding("E105", name, f"activity {name!r} cannot reach End")
            )

        if structured and not findings:
            from repro.process.structure import process_to_ast

            try:
                process_to_ast(pd)
            except ConversionError as exc:
                findings.append(
                    Finding("E104", "", f"not well-structured: {exc}")
                )

    return findings


def check_process(pd: ProcessDescription, structured: bool = True) -> list[str]:
    """String-compatible shim over :func:`check_process_findings` (empty =
    valid); each entry renders one finding's code, severity and message."""
    return [str(f) for f in check_process_findings(pd, structured=structured)]


def validate_process(pd: ProcessDescription, structured: bool = True) -> None:
    """Raise :class:`ProcessStructureError` if *pd* is invalid."""
    problems = check_process(pd, structured=structured)
    if problems:
        raise ProcessStructureError(
            f"process {pd.name!r} is invalid: " + "; ".join(problems)
        )


def _forward_closure(pd: ProcessDescription, start: str) -> set[str]:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in pd.successors(node):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def _backward_closure(pd: ProcessDescription, start: str) -> set[str]:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for pred in pd.predecessors(node):
            if pred not in seen:
                seen.add(pred)
                stack.append(pred)
    return seen
