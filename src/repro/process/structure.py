"""Bidirectional conversion between ASTs and ATN process graphs.

Two operations:

* :func:`ast_to_process` *elaborates* an AST into a
  :class:`~repro.process.model.ProcessDescription`, synthesizing the paired
  flow-control activities the paper prescribes — each :class:`ForkNode`
  becomes a ``FORKi``/``JOINi`` pair, each :class:`ChoiceNode` a
  ``CHOICEi``/``MERGEi`` pair (choice first), and each
  :class:`IterativeNode` a ``MERGEi``/``CHOICEi`` pair with a back edge
  (merge first), exactly as in Figures 4-7 and the Figure-10 case study.

* :func:`process_to_ast` *recovers* the AST from a well-structured graph.
  Loops are identified by DFS back-edge analysis (a back edge must run from
  a latch ``Choice`` to its loop-head ``Merge``), after which a single
  recursive region parser handles all four constructs.  Graphs that are not
  well-structured (unmatched Fork/Join, branches converging on different
  merges, multi-exit loops...) raise :class:`ConversionError` with a
  description of the offending region.

Round-tripping ``process_to_ast(ast_to_process(ast))`` returns an AST equal
to the normalized original — a property test in the suite.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import ConversionError
from repro.process.ast_nodes import (
    ActivityNode,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Node,
    SequenceNode,
    seq,
)
from repro.process.conditions import TRUE, Condition
from repro.process.model import Activity, ActivityKind, ProcessDescription

__all__ = ["ast_to_process", "process_to_ast", "find_back_edges"]

BEGIN_NAME = "BEGIN"
END_NAME = "END"

ActivityFactory = Callable[[str], Activity]


def _default_factory(name: str) -> Activity:
    return Activity(name, ActivityKind.END_USER)


def _factory_from(
    library: Mapping[str, Activity] | ActivityFactory | None,
) -> ActivityFactory:
    if library is None:
        return _default_factory
    if callable(library):
        return library

    def lookup(name: str) -> Activity:
        activity = library.get(name)
        if activity is None:
            return _default_factory(name)
        if activity.kind is not ActivityKind.END_USER:
            raise ConversionError(
                f"library entry {name!r} is not an end-user activity"
            )
        return activity

    return lookup


class _Elaborator:
    """AST -> graph, generating FORKi/JOINi/CHOICEi/MERGEi names."""

    def __init__(self, name: str, factory: ActivityFactory) -> None:
        self.pd = ProcessDescription(name)
        self.factory = factory
        self._counters = {"FORK": 0, "JOIN": 0, "CHOICE": 0, "MERGE": 0}

    def fresh(self, kind: str) -> str:
        self._counters[kind] += 1
        candidate = f"{kind}{self._counters[kind]}"
        while self.pd.has_activity(candidate):
            self._counters[kind] += 1
            candidate = f"{kind}{self._counters[kind]}"
        return candidate

    def run(self, ast: Node) -> ProcessDescription:
        self.pd.add(BEGIN_NAME, ActivityKind.BEGIN)
        self.pd.add(END_NAME, ActivityKind.END)
        first, last = self.emit(ast)
        self.pd.connect(BEGIN_NAME, first)
        self.pd.connect(last, END_NAME)
        return self.pd

    def emit(self, node: Node) -> tuple[str, str]:
        """Add *node*'s activities; return (entry, exit) activity names."""
        if isinstance(node, ActivityNode):
            if self.pd.has_activity(node.name):
                raise ConversionError(
                    f"activity {node.name!r} occurs more than once; graph "
                    f"activity names must be unique (use P3DR1/P3DR2-style "
                    f"names sharing one service)"
                )
            self.pd.add_activity(self.factory(node.name))
            return node.name, node.name

        if isinstance(node, SequenceNode):
            first, last = self.emit(node.children[0])
            for child in node.children[1:]:
                entry, exit_ = self.emit(child)
                self.pd.connect(last, entry)
                last = exit_
            return first, last

        if isinstance(node, ForkNode):
            fork = self.pd.add(self.fresh("FORK"), ActivityKind.FORK).name
            join = self.pd.add(self.fresh("JOIN"), ActivityKind.JOIN).name
            for branch in node.branches:
                entry, exit_ = self.emit(branch)
                self.pd.connect(fork, entry)
                self.pd.connect(exit_, join)
            return fork, join

        if isinstance(node, ChoiceNode):
            choice = self.pd.add(self.fresh("CHOICE"), ActivityKind.CHOICE).name
            merge = self.pd.add(self.fresh("MERGE"), ActivityKind.MERGE).name
            for condition, branch in node.branches:
                entry, exit_ = self.emit(branch)
                self.pd.connect(choice, entry, condition=condition)
                self.pd.connect(exit_, merge)
            return choice, merge

        if isinstance(node, IterativeNode):
            merge = self.pd.add(self.fresh("MERGE"), ActivityKind.MERGE).name
            choice = self.pd.add(self.fresh("CHOICE"), ActivityKind.CHOICE).name
            entry, exit_ = self.emit(node.body)
            self.pd.connect(merge, entry)
            self.pd.connect(exit_, choice)
            # Back edge (continue looping) carries the iterative condition;
            # the forward edge to whatever follows is wired by the caller via
            # the returned exit (= the choice), with the negated condition.
            self.pd.connect(choice, merge, condition=node.condition)
            return merge, choice

        raise ConversionError(f"cannot elaborate node type {type(node).__name__}")


def ast_to_process(
    ast: Node,
    name: str = "process",
    library: Mapping[str, Activity] | ActivityFactory | None = None,
) -> ProcessDescription:
    """Elaborate *ast* into a process-description graph.

    *library* (mapping or factory) supplies full :class:`Activity` records
    — service bindings, input/output data sets — for the activity names in
    the AST; names not covered get bare end-user activities.
    """
    return _Elaborator(name, _factory_from(library)).run(ast)


def find_back_edges(pd: ProcessDescription) -> list[tuple[str, str]]:
    """DFS back edges reachable from BEGIN, in discovery order.

    In a well-structured process description every back edge runs from a
    loop-latch ``Choice`` to its loop-head ``Merge``.
    """
    begin = pd.begin().name
    color: dict[str, int] = {}  # 1 = on stack (gray), 2 = done (black)
    back: list[tuple[str, str]] = []
    # Iterative DFS that preserves successor order and tracks gray nodes.
    stack: list[tuple[str, int]] = [(begin, 0)]
    color[begin] = 1
    while stack:
        node, idx = stack[-1]
        successors = pd.successors(node)
        if idx < len(successors):
            stack[-1] = (node, idx + 1)
            nxt = successors[idx]
            state = color.get(nxt, 0)
            if state == 0:
                color[nxt] = 1
                stack.append((nxt, 0))
            elif state == 1:
                back.append((node, nxt))
        else:
            color[node] = 2
            stack.pop()
    return back


class _Recoverer:
    """Graph -> AST region parser."""

    def __init__(self, pd: ProcessDescription) -> None:
        self.pd = pd
        back = find_back_edges(pd)
        self.latch_of: dict[str, str] = {}  # latch choice -> loop-head merge
        self.loop_heads: set[str] = set()
        for source, target in back:
            src_kind = pd.activity(source).kind
            dst_kind = pd.activity(target).kind
            if src_kind is not ActivityKind.CHOICE or dst_kind is not ActivityKind.MERGE:
                raise ConversionError(
                    f"back edge {source!r} -> {target!r} does not run from a "
                    f"Choice latch to a Merge loop head; graph is unstructured"
                )
            if source in self.latch_of:
                raise ConversionError(
                    f"choice {source!r} latches more than one loop"
                )
            self.latch_of[source] = target
            self.loop_heads.add(target)

    def run(self) -> Node:
        begin = self.pd.begin().name
        end = self.pd.end().name
        successors = self.pd.successors(begin)
        if len(successors) != 1:
            raise ConversionError(
                f"BEGIN must have exactly one successor, has {len(successors)}"
            )
        body, stop = self.parse_region(successors[0])
        if stop != end:
            raise ConversionError(
                f"top-level region ended at {stop!r} instead of END"
            )
        if body is None:
            raise ConversionError("process description has an empty body")
        return body

    # The region parser walks forward from *start*, consuming structured
    # constructs, and returns (ast-or-None, sentinel) where the sentinel is
    # the activity that terminated the region: END, an unopened Join, an
    # unopened (non-loop-head) Merge, or a loop-latch Choice.
    def parse_region(self, start: str) -> tuple[Node | None, str]:
        items: list[Node] = []
        current = start
        while True:
            activity = self.pd.activity(current)
            kind = activity.kind
            if kind is ActivityKind.END:
                return self._finish(items), current
            if kind is ActivityKind.JOIN:
                return self._finish(items), current
            if kind is ActivityKind.BEGIN:
                raise ConversionError("BEGIN reached mid-region")
            if kind is ActivityKind.MERGE:
                if current in self.loop_heads:
                    node, current = self.parse_loop(current)
                    items.append(node)
                    continue
                return self._finish(items), current
            if kind is ActivityKind.CHOICE:
                if current in self.latch_of:
                    return self._finish(items), current
                node, current = self.parse_selective(current)
                items.append(node)
                continue
            if kind is ActivityKind.FORK:
                node, current = self.parse_fork(current)
                items.append(node)
                continue
            # End-user activity.
            items.append(ActivityNode(current))
            current = self._sole_successor(current)

    def _finish(self, items: list[Node]) -> Node | None:
        if not items:
            return None
        return seq(*items)

    def _sole_successor(self, name: str) -> str:
        successors = self.pd.successors(name)
        if len(successors) != 1:
            raise ConversionError(
                f"activity {name!r} must have exactly one successor, "
                f"has {len(successors)}"
            )
        return successors[0]

    def parse_loop(self, head: str) -> tuple[IterativeNode, str]:
        """Parse an iterative region whose loop-head Merge is *head*."""
        body_start = self._sole_successor(head)
        body, latch = self.parse_region(body_start)
        latch_activity = self.pd.activity(latch)
        if latch_activity.kind is not ActivityKind.CHOICE or self.latch_of.get(latch) != head:
            raise ConversionError(
                f"loop at merge {head!r} does not close at a matching "
                f"Choice latch (region ended at {latch!r})"
            )
        if body is None:
            raise ConversionError(f"loop at merge {head!r} has an empty body")
        successors = self.pd.successors(latch)
        if len(successors) != 2:
            raise ConversionError(
                f"loop latch {latch!r} must have exactly two successors "
                f"(back edge + exit), has {len(successors)}"
            )
        exits = [s for s in successors if s != head]
        if len(exits) != 1:
            raise ConversionError(f"loop latch {latch!r} has no exit edge")
        back_tr = self.pd.transition_between(latch, head)
        condition = back_tr.condition if back_tr.condition is not None else TRUE
        return IterativeNode(condition, body), exits[0]

    def parse_fork(self, fork: str) -> tuple[ForkNode, str]:
        """Parse a Fork/Join concurrent region starting at *fork*."""
        successors = self.pd.successors(fork)
        if len(successors) < 2:
            raise ConversionError(
                f"fork {fork!r} must have at least two successors"
            )
        branches: list[Node] = []
        joins: set[str] = set()
        for succ in successors:
            branch, sentinel = self.parse_region(succ)
            if self.pd.activity(sentinel).kind is not ActivityKind.JOIN:
                raise ConversionError(
                    f"branch of fork {fork!r} ended at {sentinel!r} "
                    f"instead of a Join"
                )
            if branch is None:
                raise ConversionError(
                    f"fork {fork!r} has an empty branch to {sentinel!r}"
                )
            joins.add(sentinel)
            branches.append(branch)
        if len(joins) != 1:
            raise ConversionError(
                f"branches of fork {fork!r} converge on different joins: "
                f"{sorted(joins)}"
            )
        join = joins.pop()
        return ForkNode(tuple(branches)), self._sole_successor(join)

    def parse_selective(self, choice: str) -> tuple[ChoiceNode, str]:
        """Parse a Choice/Merge selective region starting at *choice*."""
        successors = self.pd.successors(choice)
        if len(successors) < 2:
            raise ConversionError(
                f"choice {choice!r} must have at least two successors"
            )
        branches: list[tuple[Condition, Node]] = []
        merges: set[str] = set()
        for succ in successors:
            tr = self.pd.transition_between(choice, succ)
            condition = tr.condition if tr.condition is not None else TRUE
            branch, sentinel = self.parse_region(succ)
            sentinel_kind = self.pd.activity(sentinel).kind
            if sentinel_kind is not ActivityKind.MERGE or sentinel in self.loop_heads:
                raise ConversionError(
                    f"branch of choice {choice!r} ended at {sentinel!r} "
                    f"({sentinel_kind.value}) instead of a selective Merge"
                )
            if branch is None:
                raise ConversionError(
                    f"choice {choice!r} has an empty branch to {sentinel!r}"
                )
            merges.add(sentinel)
            branches.append((condition, branch))
        if len(merges) != 1:
            raise ConversionError(
                f"branches of choice {choice!r} converge on different merges: "
                f"{sorted(merges)}"
            )
        merge = merges.pop()
        return ChoiceNode(tuple(branches)), self._sole_successor(merge)


def process_to_ast(pd: ProcessDescription) -> Node:
    """Recover the AST of a well-structured process description.

    Raises :class:`ConversionError` when the graph cannot be expressed in
    the Section-2 language (which is exactly the paper's notion of a
    well-formed plan).
    """
    return _Recoverer(pd).run()
