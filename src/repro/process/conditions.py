"""The condition language of the Section-2 grammar.

The BNF defines conditions as comparisons on data properties::

    <condition>   ::= <propertyref> <relation> <value>
    <propertyref> ::= <dataname> . <property>
    <property>    ::= Classification | Size | Location | ...
    <relation>    ::= < | > | =

Conditions guard Choice transitions and iterative stopping rules; Figure 13
also uses conjunctions ("C1: A.Classification = "POD-Parameter" and
B.Classification = "2D Image""), so we support ``and`` / ``or`` / ``not``
composition.

Evaluation is performed against any *property source* — an object with a
``lookup(data_name, property) -> value`` method.  Both the planner's
symbolic world state and the coordination service's live case data
implement it.  A lookup miss makes an atom evaluate to False (the paper's
semantics: a condition over absent data cannot hold).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Callable, Iterator
from typing import Any, Protocol

from repro.errors import ConditionError

__all__ = [
    "Relation",
    "PropertySource",
    "Condition",
    "Atom",
    "And",
    "Or",
    "Not",
    "TRUE",
    "MappingSource",
    "compile_condition",
]


class Relation(enum.Enum):
    LT = "<"
    GT = ">"
    EQ = "="
    NE = "!="
    LE = "<="
    GE = ">="

    def apply(self, left: Any, right: Any) -> bool:
        if self is Relation.EQ:
            return left == right
        if self is Relation.NE:
            return left != right
        try:
            if self is Relation.LT:
                return left < right
            if self is Relation.GT:
                return left > right
            if self is Relation.LE:
                return left <= right
            return left >= right
        except TypeError:
            return False


class PropertySource(Protocol):
    """Anything that can answer 'what is property P of data item D?'."""

    def lookup(self, data_name: str, prop: str) -> Any: ...


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


MISSING = _Missing()


class Condition:
    """Abstract base of condition expressions."""

    def evaluate(self, source: PropertySource) -> bool:
        raise NotImplementedError

    def atoms(self) -> Iterator["Atom"]:
        raise NotImplementedError

    def data_names(self) -> set[str]:
        """All data names referenced anywhere in the expression."""
        return {atom.data for atom in self.atoms()}

    # Composition sugar.
    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True)
class Atom(Condition):
    """One comparison: ``data.property RELATION value``."""

    data: str
    property: str
    relation: Relation
    value: Any

    def __post_init__(self) -> None:
        if not self.data or not self.property:
            raise ConditionError("atom needs both a data name and a property")
        if isinstance(self.relation, str):
            object.__setattr__(self, "relation", Relation(self.relation))

    def evaluate(self, source: PropertySource) -> bool:
        # Fast path: sources exposing a non-raising `peek` (WorldState does)
        # avoid KeyError overhead — absent data is the common case while
        # candidate plans are still invalid.
        peek = getattr(source, "peek", None)
        if peek is not None:
            actual = peek(self.data, self.property)
        else:
            try:
                actual = source.lookup(self.data, self.property)
            except KeyError:
                return False
        if actual is MISSING or actual is None:
            return False
        return self.relation.apply(actual, self.value)

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def __str__(self) -> str:
        value = f'"{self.value}"' if isinstance(self.value, str) else str(self.value)
        return f"{self.data}.{self.property} {self.relation.value} {value}"


@dataclass(frozen=True)
class And(Condition):
    parts: tuple[Condition, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ConditionError("And needs at least one part")
        object.__setattr__(self, "parts", tuple(self.parts))

    def evaluate(self, source: PropertySource) -> bool:
        return all(part.evaluate(source) for part in self.parts)

    def atoms(self) -> Iterator[Atom]:
        for part in self.parts:
            yield from part.atoms()

    def __str__(self) -> str:
        return " and ".join(_substr(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Condition):
    parts: tuple[Condition, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ConditionError("Or needs at least one part")
        object.__setattr__(self, "parts", tuple(self.parts))

    def evaluate(self, source: PropertySource) -> bool:
        return any(part.evaluate(source) for part in self.parts)

    def atoms(self) -> Iterator[Atom]:
        for part in self.parts:
            yield from part.atoms()

    def __str__(self) -> str:
        return " or ".join(_substr(p) for p in self.parts)


@dataclass(frozen=True)
class Not(Condition):
    part: Condition

    def evaluate(self, source: PropertySource) -> bool:
        return not self.part.evaluate(source)

    def atoms(self) -> Iterator[Atom]:
        yield from self.part.atoms()

    def __str__(self) -> str:
        return f"not {_substr(self.part)}"


class _True(Condition):
    """The always-true condition (default/else branches)."""

    def evaluate(self, source: PropertySource) -> bool:
        return True

    def atoms(self) -> Iterator[Atom]:
        return iter(())

    def __str__(self) -> str:
        return "true"


TRUE = _True()


def _substr(cond: Condition) -> str:
    text = str(cond)
    if isinstance(cond, (And, Or)):
        return f"({text})"
    return text


def _conjunctive_atoms(condition: Condition) -> tuple[Atom, ...] | None:
    """Flatten a pure conjunction (arbitrarily nested Ands of Atoms) into
    its atom tuple; None when the condition contains Or/Not/True parts."""
    if isinstance(condition, Atom):
        return (condition,)
    if isinstance(condition, And):
        out: list[Atom] = []
        for part in condition.parts:
            flat = _conjunctive_atoms(part)
            if flat is None:
                return None
            out.extend(flat)
        return tuple(out)
    return None


def compile_condition(condition: Condition) -> Callable[[Any], bool]:
    """Compile *condition* into a fast ``state -> bool`` closure.

    Conjunctions of atoms (the overwhelmingly common case — every
    activity precondition and goal spec in the case study is one) compile
    to a flat loop over ``(data, property, relation, value)`` tuples using
    the source's non-raising ``peek``; anything else falls back to the
    interpreted :meth:`Condition.evaluate`.  The planner evaluates
    preconditions hundreds of thousands of times per GP run, which is why
    this exists.
    """
    if isinstance(condition, _True):
        return lambda state: True
    flat = _conjunctive_atoms(condition)
    if flat is None:
        return condition.evaluate
    atoms = flat

    eq_checks = tuple(
        (a.data, a.property, a.value) for a in atoms if a.relation is Relation.EQ
    )
    other = tuple(
        (a.data, a.property, a.relation.apply, a.value)
        for a in atoms
        if a.relation is not Relation.EQ
    )

    def check(state: Any) -> bool:
        peek = state.peek
        for data, prop, value in eq_checks:
            actual = peek(data, prop)
            if actual is MISSING or actual is None or actual != value:
                return False
        for data, prop, rel, value in other:
            actual = peek(data, prop)
            if actual is MISSING or actual is None or not rel(actual, value):
                return False
        return True

    return check


@dataclass
class MappingSource:
    """PropertySource over a plain ``{data: {property: value}}`` mapping.

    Handy in tests and for evaluating Figure-13 style conditions against
    literal tables.
    """

    table: dict[str, dict[str, Any]]

    def lookup(self, data_name: str, prop: str) -> Any:
        return self.table[data_name][prop]

    def peek(self, data_name: str, prop: str) -> Any:
        item = self.table.get(data_name)
        if item is None:
            return MISSING
        return item.get(prop, MISSING)
