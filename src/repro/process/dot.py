"""Graphviz DOT export for process descriptions and plan trees.

The paper presents its workflows as diagrams (Figures 4-11); these
renderers regenerate them: ``dot -Tpng`` on the output of
:func:`process_to_dot` draws the Figure-10 ATN, and
:func:`plan_tree_to_dot` draws the Figure-11 tree.  Pure string
generation — no graphviz dependency; the output is standard DOT.
"""

from __future__ import annotations

from repro.plan.tree import Controller, PlanNode, Terminal
from repro.process.model import ActivityKind, ProcessDescription

__all__ = ["process_to_dot", "plan_tree_to_dot"]

#: Node shapes per activity kind, echoing the paper's figure style
#: (boxes for end-user work, distinct glyphs for flow control).
_SHAPES = {
    ActivityKind.BEGIN: "circle",
    ActivityKind.END: "doublecircle",
    ActivityKind.END_USER: "box",
    ActivityKind.FORK: "triangle",
    ActivityKind.JOIN: "invtriangle",
    ActivityKind.CHOICE: "diamond",
    ActivityKind.MERGE: "trapezium",
}


def _quote(text: str) -> str:
    # Escape quotes only: identifiers/conditions never contain backslashes,
    # and labels use DOT's own \n escape which must pass through intact.
    return '"' + text.replace('"', '\\"') + '"'


def process_to_dot(pd: ProcessDescription, name: str | None = None) -> str:
    """Render an ATN graph as DOT (conditions label their transitions)."""
    lines = [f"digraph {_quote(name or pd.name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica", fontsize=10];')
    for activity in pd.activities:
        attrs = [f"shape={_SHAPES[activity.kind]}"]
        if (
            activity.kind is ActivityKind.END_USER
            and activity.service != activity.name
        ):
            label = activity.name + "\\n(" + str(activity.service) + ")"
            attrs.append(f"label={_quote(label)}")
        lines.append(f"  {_quote(activity.name)} [{', '.join(attrs)}];")
    for tr in pd.transitions:
        attrs = [f"label={_quote(tr.id)}"]
        if tr.condition is not None:
            attrs = [f"label={_quote(f'{tr.id}: {tr.condition}')}", "style=dashed"]
        lines.append(
            f"  {_quote(tr.source)} -> {_quote(tr.destination)} "
            f"[{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def plan_tree_to_dot(tree: PlanNode, name: str = "plan") -> str:
    """Render a plan tree as DOT (Figure-11 style)."""
    lines = [f"digraph {_quote(name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica", fontsize=10];')
    counter = [0]

    def emit(node: PlanNode) -> str:
        node_id = f"n{counter[0]}"
        counter[0] += 1
        if isinstance(node, Terminal):
            lines.append(
                f"  {node_id} [shape=box, label={_quote(node.activity)}];"
            )
        else:
            assert isinstance(node, Controller)
            lines.append(
                f"  {node_id} [shape=ellipse, label={_quote(node.kind.value)}];"
            )
            for child in node.children:
                child_id = emit(child)
                lines.append(f"  {node_id} -> {child_id};")
        return node_id

    emit(tree)
    lines.append("}")
    return "\n".join(lines)
