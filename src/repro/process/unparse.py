"""AST -> text rendering of process descriptions.

``unparse(parse_process(text))`` produces a canonical form that re-parses to
an equal AST (round-trip property tested with hypothesis).  Two styles are
offered: compact single-line (the default, matching the paper's inline
examples) and an indented pretty form for human inspection.
"""

from __future__ import annotations

from repro._util import indent
from repro.errors import ProcessError
from repro.process.ast_nodes import (
    ActivityNode,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Node,
    SequenceNode,
)
from repro.process.conditions import Condition

__all__ = ["unparse", "unparse_pretty"]


def unparse(node: Node) -> str:
    """Render an AST as a compact one-line process description."""
    return f"BEGIN; {_stmt(node)}; END"


def _stmt(node: Node) -> str:
    if isinstance(node, ActivityNode):
        return node.name
    if isinstance(node, SequenceNode):
        return "; ".join(_stmt(child) for child in node.children)
    if isinstance(node, ForkNode):
        branches = " ".join("{" + _stmt(b) + "}" for b in node.branches)
        return "{FORK " + branches + " JOIN}"
    if isinstance(node, IterativeNode):
        return (
            "{ITERATIVE {COND " + _cond(node.condition) + "} "
            "{" + _stmt(node.body) + "}}"
        )
    if isinstance(node, ChoiceNode):
        branches = " ".join(
            "{COND " + _cond(cond) + "} {" + _stmt(body) + "}"
            for cond, body in node.branches
        )
        return "{CHOICE " + branches + " MERGE}"
    raise ProcessError(f"cannot unparse node of type {type(node).__name__}")


def _cond(condition: Condition) -> str:
    return str(condition)


def unparse_pretty(node: Node) -> str:
    """Render an AST as an indented multi-line process description."""
    return "BEGIN;\n" + _pretty(node) + ";\nEND"


def _pretty(node: Node) -> str:
    if isinstance(node, ActivityNode):
        return node.name
    if isinstance(node, SequenceNode):
        return ";\n".join(_pretty(child) for child in node.children)
    if isinstance(node, ForkNode):
        branches = "\n".join(
            "{\n" + indent(_pretty(b)) + "\n}" for b in node.branches
        )
        return "{FORK\n" + indent(branches) + "\nJOIN}"
    if isinstance(node, IterativeNode):
        return (
            "{ITERATIVE {COND " + _cond(node.condition) + "}\n"
            + indent("{\n" + indent(_pretty(node.body)) + "\n}")
            + "\n}"
        )
    if isinstance(node, ChoiceNode):
        branches = "\n".join(
            "{COND " + _cond(cond) + "}\n{\n" + indent(_pretty(body)) + "\n}"
            for cond, body in node.branches
        )
        return "{CHOICE\n" + indent(branches) + "\nMERGE}"
    raise ProcessError(f"cannot unparse node of type {type(node).__name__}")
