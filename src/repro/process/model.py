"""Graph (ATN) model of process descriptions.

Section 2 of the paper describes a process description as "a formal
description of the complex problem the user wishes to solve", using a
formalism similar to Augmented Transition Networks: *activities* (states)
connected by *transitions* (arcs).  Section 3.1 fixes the activity taxonomy:

* **end-user activities** — correspond to end-user computing services, have
  preconditions and postconditions, exactly one predecessor and successor;
* **flow-control activities** — ``Begin``, ``End``, ``Choice``, ``Fork``,
  ``Join``, ``Merge`` with the in/out-degree rules of Section 3.1.

This module holds the pure data model; structural rules live in
:mod:`repro.process.validate`, the textual syntax in
:mod:`repro.process.parser` / :mod:`repro.process.unparse`, and conversion
to plan trees in :mod:`repro.plan.convert`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from collections.abc import Iterable, Iterator

import networkx as nx

from repro._util import valid_identifier
from repro.errors import ProcessStructureError
from repro.process.conditions import Condition

__all__ = ["ActivityKind", "Activity", "Transition", "ProcessDescription"]


class ActivityKind(enum.Enum):
    """The seven activity types of Section 3.1 / Figure 13."""

    BEGIN = "Begin"
    END = "End"
    END_USER = "End-user"
    FORK = "Fork"
    JOIN = "Join"
    CHOICE = "Choice"
    MERGE = "Merge"

    @property
    def is_flow_control(self) -> bool:
        return self is not ActivityKind.END_USER


@dataclass(frozen=True)
class Activity:
    """One node of the ATN.

    *name* is unique within its process description.  For END_USER
    activities, *service* names the end-user computing service the activity
    invokes (defaults to the activity name, matching Figure 13 where e.g.
    activities P3DR1..P3DR4 all use service P3DR).  *inputs* / *outputs*
    are data names consumed/produced (the case-description binding);
    *constraint* names a constraint (e.g. ``Cons1``) consulted by a paired
    Choice activity.
    """

    name: str
    kind: ActivityKind = ActivityKind.END_USER
    service: str | None = None
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    constraint: str | None = None

    def __post_init__(self) -> None:
        if not valid_identifier(self.name):
            raise ProcessStructureError(f"invalid activity name {self.name!r}")
        if self.kind is ActivityKind.END_USER and self.service is None:
            object.__setattr__(self, "service", self.name)
        if self.kind is not ActivityKind.END_USER and (self.inputs or self.outputs):
            raise ProcessStructureError(
                f"flow-control activity {self.name!r} cannot have data sets"
            )

    @property
    def service_name(self) -> str:
        """The end-user service this activity invokes (END_USER only)."""
        if self.kind is not ActivityKind.END_USER:
            raise ProcessStructureError(
                f"activity {self.name!r} ({self.kind.value}) has no service"
            )
        assert self.service is not None
        return self.service


@dataclass(frozen=True)
class Transition:
    """A directed arc between two activities (Figure 12's Transition frame).

    Transitions out of a ``Choice`` activity may carry a *condition*; the
    coordination service evaluates these to pick the unique successor that
    gains control.  At most one outgoing transition of a Choice may leave
    the condition empty — it then acts as the default (else) branch.
    """

    id: str
    source: str
    destination: str
    condition: Condition | None = None

    def with_condition(self, condition: Condition | None) -> "Transition":
        return replace(self, condition=condition)


class ProcessDescription:
    """A mutable ATN: named activities plus directed transitions.

    The class enforces only *local* integrity (unique names, endpoints
    exist, no duplicate arcs); whole-graph rules (single Begin/End, degree
    constraints, reachability, well-structuredness) are checked by
    :func:`repro.process.validate.validate_process`.
    """

    def __init__(self, name: str = "process") -> None:
        self.name = name
        self._activities: dict[str, Activity] = {}
        self._transitions: dict[str, Transition] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}
        self._next_tr = 1

    # -- construction ------------------------------------------------------ #
    def add_activity(self, activity: Activity) -> Activity:
        if activity.name in self._activities:
            raise ProcessStructureError(f"duplicate activity {activity.name!r}")
        self._activities[activity.name] = activity
        self._succ[activity.name] = []
        self._pred[activity.name] = []
        return activity

    def add(
        self,
        name: str,
        kind: ActivityKind = ActivityKind.END_USER,
        service: str | None = None,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        constraint: str | None = None,
    ) -> Activity:
        """Convenience wrapper around :meth:`add_activity`."""
        return self.add_activity(
            Activity(name, kind, service, tuple(inputs), tuple(outputs), constraint)
        )

    def connect(
        self,
        source: str,
        destination: str,
        condition: Condition | None = None,
        id: str | None = None,
    ) -> Transition:
        """Add a transition; ids are generated as TR1, TR2, ... if omitted."""
        for endpoint in (source, destination):
            if endpoint not in self._activities:
                raise ProcessStructureError(f"unknown activity {endpoint!r}")
        if destination in self._succ[source]:
            raise ProcessStructureError(
                f"duplicate transition {source!r} -> {destination!r}"
            )
        if id is None:
            id = f"TR{self._next_tr}"
            self._next_tr += 1
        if id in self._transitions:
            raise ProcessStructureError(f"duplicate transition id {id!r}")
        tr = Transition(id, source, destination, condition)
        self._transitions[id] = tr
        self._succ[source].append(destination)
        self._pred[destination].append(source)
        return tr

    def remove_transition(self, id: str) -> Transition:
        tr = self._transitions.pop(id, None)
        if tr is None:
            raise ProcessStructureError(f"unknown transition id {id!r}")
        self._succ[tr.source].remove(tr.destination)
        self._pred[tr.destination].remove(tr.source)
        return tr

    # -- access ------------------------------------------------------------ #
    def activity(self, name: str) -> Activity:
        try:
            return self._activities[name]
        except KeyError:
            raise ProcessStructureError(f"unknown activity {name!r}") from None

    def has_activity(self, name: str) -> bool:
        return name in self._activities

    @property
    def activities(self) -> tuple[Activity, ...]:
        return tuple(self._activities.values())

    @property
    def transitions(self) -> tuple[Transition, ...]:
        return tuple(self._transitions.values())

    def transition(self, id: str) -> Transition:
        try:
            return self._transitions[id]
        except KeyError:
            raise ProcessStructureError(f"unknown transition id {id!r}") from None

    def transition_between(self, source: str, destination: str) -> Transition:
        for tr in self._transitions.values():
            if tr.source == source and tr.destination == destination:
                return tr
        raise ProcessStructureError(
            f"no transition {source!r} -> {destination!r}"
        )

    def set_condition(
        self, source: str, destination: str, condition: Condition | None
    ) -> Transition:
        """Replace the condition on an existing transition."""
        old = self.transition_between(source, destination)
        new = old.with_condition(condition)
        self._transitions[old.id] = new
        return new

    def successors(self, name: str) -> tuple[str, ...]:
        self.activity(name)
        return tuple(self._succ[name])

    def predecessors(self, name: str) -> tuple[str, ...]:
        self.activity(name)
        return tuple(self._pred[name])

    def out_degree(self, name: str) -> int:
        return len(self.successors(name))

    def in_degree(self, name: str) -> int:
        return len(self.predecessors(name))

    def end_user_activities(self) -> tuple[Activity, ...]:
        return tuple(
            a for a in self._activities.values() if a.kind is ActivityKind.END_USER
        )

    def flow_control_activities(self) -> tuple[Activity, ...]:
        return tuple(
            a for a in self._activities.values() if a.kind.is_flow_control
        )

    def begin(self) -> Activity:
        return self._only(ActivityKind.BEGIN)

    def end(self) -> Activity:
        return self._only(ActivityKind.END)

    def _only(self, kind: ActivityKind) -> Activity:
        found = [a for a in self._activities.values() if a.kind is kind]
        if len(found) != 1:
            raise ProcessStructureError(
                f"expected exactly one {kind.value} activity, found {len(found)}"
            )
        return found[0]

    def __iter__(self) -> Iterator[Activity]:
        return iter(self._activities.values())

    def __len__(self) -> int:
        return len(self._activities)

    def __repr__(self) -> str:
        return (
            f"ProcessDescription({self.name!r}, activities={len(self)}, "
            f"transitions={len(self._transitions)})"
        )

    # -- export ------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Export as a networkx digraph (nodes carry the Activity objects)."""
        g = nx.DiGraph(name=self.name)
        for activity in self._activities.values():
            g.add_node(activity.name, activity=activity, kind=activity.kind.value)
        for tr in self._transitions.values():
            g.add_edge(tr.source, tr.destination, id=tr.id, condition=tr.condition)
        return g

    def copy(self, name: str | None = None) -> "ProcessDescription":
        out = ProcessDescription(name or self.name)
        for activity in self._activities.values():
            out.add_activity(activity)
        for tr in self._transitions.values():
            out.connect(tr.source, tr.destination, tr.condition, id=tr.id)
        out._next_tr = self._next_tr
        return out
