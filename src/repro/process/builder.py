"""Fluent builder for process-description ASTs.

A thin convenience layer over :mod:`repro.process.ast_nodes` used by the
examples and the case study: build nested workflow structure without
spelling out tuples, then elaborate to a graph in one call.

Example (the shape of the paper's Figure 10)::

    wf = (
        WorkflowBuilder("3DSD")
        .activity("POD")
        .activity("P3DR1")
        .loop(
            parse_condition('D10.Value > 8'),
            lambda b: b.activity("POR")
                       .fork(lambda f: f.activity("P3DR2"),
                             lambda f: f.activity("P3DR3"),
                             lambda f: f.activity("P3DR4"))
                       .activity("PSF"),
        )
        .build()
    )
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import ProcessError
from repro.process.ast_nodes import (
    ActivityNode,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Node,
    seq,
)
from repro.process.conditions import TRUE, Condition
from repro.process.model import Activity, ProcessDescription
from repro.process.structure import ast_to_process

__all__ = ["WorkflowBuilder"]

SubBuild = Callable[["WorkflowBuilder"], "WorkflowBuilder"]


class WorkflowBuilder:
    """Accumulates a sequence of steps; sub-builders express nesting."""

    def __init__(self, name: str = "process") -> None:
        self.name = name
        self._steps: list[Node] = []

    # -- steps --------------------------------------------------------------- #
    def activity(self, name: str) -> "WorkflowBuilder":
        """Append one end-user activity."""
        self._steps.append(ActivityNode(name))
        return self

    def activities(self, *names: str) -> "WorkflowBuilder":
        for name in names:
            self.activity(name)
        return self

    def fork(self, *branches: SubBuild) -> "WorkflowBuilder":
        """Append a FORK/JOIN block; each callable builds one branch."""
        if len(branches) < 2:
            raise ProcessError("fork needs at least two branches")
        self._steps.append(ForkNode(tuple(self._sub(b) for b in branches)))
        return self

    def loop(self, condition: Condition, body: SubBuild) -> "WorkflowBuilder":
        """Append an ITERATIVE block (do-while on *condition*)."""
        self._steps.append(IterativeNode(condition, self._sub(body)))
        return self

    def choice(
        self, *branches: tuple[Condition | None, SubBuild]
    ) -> "WorkflowBuilder":
        """Append a CHOICE/MERGE block of (condition, branch) pairs.

        A ``None`` condition marks the default branch.
        """
        if len(branches) < 2:
            raise ProcessError("choice needs at least two alternatives")
        resolved = tuple(
            (cond if cond is not None else TRUE, self._sub(build))
            for cond, build in branches
        )
        self._steps.append(ChoiceNode(resolved))
        return self

    def node(self, node: Node) -> "WorkflowBuilder":
        """Append a pre-built AST node."""
        self._steps.append(node)
        return self

    def _sub(self, build: SubBuild) -> Node:
        inner = WorkflowBuilder(self.name)
        result = build(inner)
        if result is not inner:
            raise ProcessError("sub-builders must return the builder they receive")
        return inner.ast()

    # -- output --------------------------------------------------------------- #
    def ast(self) -> Node:
        if not self._steps:
            raise ProcessError(f"workflow {self.name!r} has no steps")
        return seq(*self._steps)

    def build(
        self, library: Mapping[str, Activity] | None = None
    ) -> ProcessDescription:
        """Elaborate the accumulated AST into a process-description graph."""
        return ast_to_process(self.ast(), name=self.name, library=library)
