"""Process descriptions: the ATN workflow language of paper Section 2.

Layers (each usable on its own):

* graph model — :class:`~repro.process.model.ProcessDescription`,
  :class:`~repro.process.model.Activity`,
  :class:`~repro.process.model.Transition`;
* condition language — :mod:`repro.process.conditions`;
* text syntax — :func:`~repro.process.parser.parse_process` /
  :func:`~repro.process.unparse.unparse`;
* AST <-> graph — :func:`~repro.process.structure.ast_to_process` /
  :func:`~repro.process.structure.process_to_ast`;
* validation — :func:`~repro.process.validate.validate_process`;
* fluent construction — :class:`~repro.process.builder.WorkflowBuilder`.
"""

from repro.process.ast_nodes import (
    ActivityNode,
    ChoiceNode,
    ForkNode,
    IterativeNode,
    Node,
    SequenceNode,
    normalize_ast,
    seq,
)
from repro.process.builder import WorkflowBuilder
from repro.process.dot import plan_tree_to_dot, process_to_dot
from repro.process.conditions import (
    TRUE,
    And,
    Atom,
    Condition,
    MappingSource,
    Not,
    Or,
    PropertySource,
    Relation,
)
from repro.process.model import Activity, ActivityKind, ProcessDescription, Transition
from repro.process.parser import parse_condition, parse_process
from repro.process.structure import ast_to_process, find_back_edges, process_to_ast
from repro.process.unparse import unparse, unparse_pretty
from repro.process.validate import check_process, validate_process

__all__ = [
    "Activity",
    "ActivityKind",
    "ProcessDescription",
    "Transition",
    "Node",
    "ActivityNode",
    "SequenceNode",
    "ForkNode",
    "ChoiceNode",
    "IterativeNode",
    "seq",
    "normalize_ast",
    "Condition",
    "Atom",
    "And",
    "Or",
    "Not",
    "TRUE",
    "Relation",
    "PropertySource",
    "MappingSource",
    "parse_process",
    "parse_condition",
    "unparse",
    "unparse_pretty",
    "ast_to_process",
    "process_to_ast",
    "find_back_edges",
    "validate_process",
    "check_process",
    "WorkflowBuilder",
    "process_to_dot",
    "plan_tree_to_dot",
]
