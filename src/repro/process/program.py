"""Compiled enactment programs.

The coordination service is "a proxy for the end-user" that usually enacts
*many* cases of the *same* process description concurrently (the paper's
case study is one workflow every virology user runs over their own data).
Re-doing structure recovery, condition interpretation and activity-table
lookups per case is pure waste, so — following the precompile-and-index
playbook of DAG workflow engines — a :class:`EnactmentProgram` captures
everything about a process description that is case-independent:

* the recovered AST (``process_to_ast`` runs exactly once, which also
  front-loads the well-structuredness check);
* one :class:`ActivityStep` per end-user activity with the service name
  and input/output orders pre-resolved (the per-dispatch payload-key and
  input tables are built from these pre-split tuples);
* every Choice guard and Iterative stopping condition pre-compiled via
  :func:`repro.process.conditions.compile_condition` into a flat closure,
  keyed by AST node identity (the program owns its AST, so ids are
  stable), with the original :class:`Condition` objects retained so
  enactment records log exactly the same ``str(condition)`` text.

Programs are immutable once built and safe to share across concurrent
cases; :func:`process_fingerprint` provides the structural cache key the
coordination service uses so N cases of one workflow share a single
compilation.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Hashable

from repro.process.ast_nodes import ChoiceNode, IterativeNode, Node
from repro.process.conditions import Condition, compile_condition
from repro.process.model import ProcessDescription
from repro.process.structure import process_to_ast

__all__ = [
    "ActivityStep",
    "EnactmentProgram",
    "process_digest",
    "process_fingerprint",
]


class ActivityStep:
    """Pre-resolved dispatch table entry for one end-user activity."""

    __slots__ = ("name", "service", "inputs", "input_order", "output_order")

    def __init__(
        self, name: str, service: str, inputs: tuple[str, ...], outputs: tuple[str, ...]
    ) -> None:
        self.name = name
        self.service = service
        self.inputs = inputs
        self.input_order = list(inputs)
        self.output_order = list(outputs)


class EnactmentProgram:
    """A process description compiled for repeated enactment.

    Raises :class:`repro.errors.ConversionError` when the process graph is
    not well-structured — the same failure mode (and the same exception)
    callers got from calling ``process_to_ast`` themselves.
    """

    __slots__ = ("process", "ast", "steps", "_checks", "_choices")

    def __init__(self, process: ProcessDescription) -> None:
        self.process = process
        self.ast = process_to_ast(process)
        self.steps: dict[str, ActivityStep] = {}
        for activity in process.end_user_activities():
            self.steps[activity.name] = ActivityStep(
                activity.name,
                activity.service_name,
                activity.inputs,
                activity.outputs,
            )
        #: id(IterativeNode) -> compiled stopping condition.
        self._checks: dict[int, Callable[..., bool]] = {}
        #: id(ChoiceNode) -> ((check, condition, branch), ...).
        self._choices: dict[
            int, tuple[tuple[Callable[..., bool], Condition, Node], ...]
        ] = {}
        for node in self.ast.walk():
            if isinstance(node, IterativeNode):
                self._checks[id(node)] = compile_condition(node.condition)
            elif isinstance(node, ChoiceNode):
                self._choices[id(node)] = tuple(
                    (compile_condition(condition), condition, branch)
                    for condition, branch in node.branches
                )

    def stats(self) -> dict[str, int]:
        """Structural counts (span/telemetry attributes for the compile
        step): end-user activities, Choice nodes, Iterative nodes."""
        return {
            "activities": len(self.steps),
            "choices": len(self._choices),
            "loops": len(self._checks),
        }

    def step(self, name: str) -> ActivityStep:
        """The dispatch entry for activity *name* (same KeyError contract as
        ``ProcessDescription.activity`` for unknown names)."""
        try:
            return self.steps[name]
        except KeyError:
            # Defer to the process for its richer error message.
            activity = self.process.activity(name)
            raise KeyError(activity.name) from None  # pragma: no cover

    def check(self, node: IterativeNode) -> Callable[..., bool]:
        """The compiled stopping condition of *node* (a node of this
        program's own AST)."""
        return self._checks[id(node)]

    def branches(
        self, node: ChoiceNode
    ) -> tuple[tuple[Callable[..., bool], Condition, Node], ...]:
        """The compiled guard table of *node*: (check, original condition,
        branch) triples in declaration order."""
        return self._choices[id(node)]


def process_fingerprint(process: ProcessDescription) -> Hashable:
    """A structural cache key for *process*.

    Two process descriptions with the same fingerprint enact identically:
    the key covers the name, every activity's kind/service/data signature,
    and every transition with its condition text.  ProcessDescription is
    mutable (so identity alone is unsafe as a key) and unhashable (so it
    cannot key a dict itself); this fingerprint is what the coordination
    service's program cache hashes instead.
    """
    activities = tuple(
        sorted(
            (
                activity.name,
                activity.kind.value,
                activity.service or "",
                activity.inputs,
                activity.outputs,
            )
            for activity in process
        )
    )
    transitions = tuple(
        sorted(
            (
                transition.source,
                transition.destination,
                "" if transition.condition is None else str(transition.condition),
            )
            for transition in process.transitions
        )
    )
    return (process.name, activities, transitions)


def process_digest(process: ProcessDescription) -> str:
    """A *stable* hex digest of the same canonical structure.

    :func:`process_fingerprint` is the right key for in-memory caches —
    cheap, hashable, never serialized — but its tuple form is not a value
    you can store in the persistent-storage service or compare across
    sessions.  ``process_digest`` hashes the canonical fingerprint (sorted
    tuples of plain strings, so its ``repr`` is deterministic) with
    keyed-nothing blake2b into a 32-hex-char string that is identical for
    structurally-equal processes across processes and sessions.  The plan
    library (:mod:`repro.planner.library`) keys its persistent entries on
    it; in-memory caches keep using the tuple fingerprint.
    """
    canonical = repr(process_fingerprint(process))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()
