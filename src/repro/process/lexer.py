"""Tokenizer for the process-description language.

Token classes:

* keywords — ``BEGIN END FORK JOIN ITERATIVE CHOICE MERGE COND`` plus the
  boolean connectives ``and or not true``
* ``NAME`` — identifiers (activity and data names): letter followed by
  letters/digits/underscore/hyphen, per the paper's <string> production
* ``NUMBER`` — integer or decimal literals (<value>)
* ``STRING`` — double-quoted literals (Figure 13 writes classifications as
  quoted strings)
* punctuation — ``{ } ; , .`` and relations ``< > = != <= >=``

Comments run from ``#`` to end of line.  ``,`` and ``;`` are interchangeable
separators (the paper's top production uses commas, the rest semicolons).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import LexError

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "BEGIN",
        "END",
        "FORK",
        "JOIN",
        "ITERATIVE",
        "CHOICE",
        "MERGE",
        "COND",
        "and",
        "or",
        "not",
        "true",
    }
)


@dataclass(frozen=True)
class Token:
    kind: str  # one of TokenKind values
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class TokenKind:
    KEYWORD = "KEYWORD"
    NAME = "NAME"
    NUMBER = "NUMBER"
    STRING = "STRING"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    SEP = "SEP"  # ; or ,
    DOT = "DOT"
    REL = "REL"  # < > = != <= >=
    EOF = "EOF"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<name>[A-Za-z][A-Za-z0-9_\-]*)
  | (?P<string>"[^"\n]*")
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<sep>[;,])
  | (?P<dot>\.)
  | (?P<rel><=|>=|!=|<|>|=)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`LexError` on any unrecognized input.

    The returned list always ends with an EOF token, which simplifies the
    recursive-descent parser.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise LexError(
                f"unexpected character {text[pos]!r} at line {line}, column {column}",
                line,
                column,
            )
        kind = match.lastgroup
        value = match.group()
        column = pos - line_start + 1
        if kind == "ws" or kind == "comment":
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos + value.rfind("\n") + 1
        elif kind == "number":
            tokens.append(Token(TokenKind.NUMBER, value, line, column))
        elif kind == "name":
            tkind = TokenKind.KEYWORD if value in KEYWORDS else TokenKind.NAME
            tokens.append(Token(tkind, value, line, column))
        elif kind == "string":
            tokens.append(Token(TokenKind.STRING, value[1:-1], line, column))
        elif kind == "lbrace":
            tokens.append(Token(TokenKind.LBRACE, value, line, column))
        elif kind == "rbrace":
            tokens.append(Token(TokenKind.RBRACE, value, line, column))
        elif kind == "sep":
            tokens.append(Token(TokenKind.SEP, value, line, column))
        elif kind == "dot":
            tokens.append(Token(TokenKind.DOT, value, line, column))
        elif kind == "rel":
            tokens.append(Token(TokenKind.REL, value, line, column))
        pos = match.end()
    tokens.append(Token(TokenKind.EOF, "", line, n - line_start + 1))
    return tokens


def token_stream(text: str) -> Iterator[Token]:
    """Iterator form of :func:`tokenize` (materializes internally)."""
    return iter(tokenize(text))
