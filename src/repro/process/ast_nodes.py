"""Abstract syntax of the Section-2 process-description language.

The textual grammar (see :mod:`repro.process.parser`) parses into this small
AST; the same AST is what the structured-region recovery algorithm
(:mod:`repro.process.structure`) produces from an ATN graph.  It mirrors the
paper's four composite constructs:

* :class:`SequenceNode` — ``A; B; C``
* :class:`ForkNode` — ``{FORK {..} {..} JOIN}``    (concurrent branches)
* :class:`ChoiceNode` — ``{CHOICE {COND ..} {..} ... MERGE}`` (guarded
  alternatives; exactly one executes)
* :class:`IterativeNode` — ``{ITERATIVE {COND ..} {..}}`` (do-while loop:
  the body runs once, then repeats while the condition holds)

plus :class:`ActivityNode` leaves naming end-user activities.  The AST is
deliberately isomorphic to the planner's plan trees (Section 3.4.1) modulo
conditions, which plan trees do not carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import ProcessError
from repro.process.conditions import TRUE, Condition

__all__ = [
    "Node",
    "ActivityNode",
    "SequenceNode",
    "ForkNode",
    "ChoiceNode",
    "IterativeNode",
    "seq",
    "normalize_ast",
]


class Node:
    """Base class of AST nodes."""

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self

    def activity_names(self) -> list[str]:
        """Names of all activity leaves, in left-to-right order."""
        return [n.name for n in self.walk() if isinstance(n, ActivityNode)]

    @property
    def size(self) -> int:
        """Total node count (leaves + composites)."""
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class ActivityNode(Node):
    """A reference to one end-user activity."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ProcessError("activity node needs a name")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SequenceNode(Node):
    """Children execute left to right."""

    children: tuple[Node, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))
        if not self.children:
            raise ProcessError("sequence needs at least one child")

    def walk(self) -> Iterator[Node]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class ForkNode(Node):
    """Branches may execute concurrently; all must complete (Fork/Join)."""

    branches: tuple[Node, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "branches", tuple(self.branches))
        if len(self.branches) < 2:
            raise ProcessError("fork needs at least two branches")

    def walk(self) -> Iterator[Node]:
        yield self
        for branch in self.branches:
            yield from branch.walk()


@dataclass(frozen=True)
class ChoiceNode(Node):
    """Guarded alternatives; exactly one branch executes (Choice/Merge).

    Each element of *branches* is a ``(condition, node)`` pair.  The
    coordination service executes the first branch whose condition holds;
    a TRUE condition acts as the default branch.
    """

    branches: tuple[tuple[Condition, Node], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "branches", tuple(tuple(b) for b in self.branches))
        if len(self.branches) < 2:
            raise ProcessError("choice needs at least two alternatives")

    def walk(self) -> Iterator[Node]:
        yield self
        for _, branch in self.branches:
            yield from branch.walk()


@dataclass(frozen=True)
class IterativeNode(Node):
    """Do-while loop: run *body*, repeat while *condition* evaluates true."""

    condition: Condition
    body: Node

    def __post_init__(self) -> None:
        if self.condition is None:
            object.__setattr__(self, "condition", TRUE)

    def walk(self) -> Iterator[Node]:
        yield self
        yield from self.body.walk()


def normalize_ast(node: Node) -> Node:
    """Canonical form: directly-nested sequences spliced into their parent.

    The textual syntax cannot distinguish ``A; (B; C)`` from ``A; B; C``
    (they have identical semantics), so parse/unparse round-trips are exact
    only on normalized ASTs.
    """
    if isinstance(node, ActivityNode):
        return node
    if isinstance(node, SequenceNode):
        flat: list[Node] = []
        for child in node.children:
            normalized = normalize_ast(child)
            if isinstance(normalized, SequenceNode):
                flat.extend(normalized.children)
            else:
                flat.append(normalized)
        return seq(*flat)
    if isinstance(node, ForkNode):
        return ForkNode(tuple(normalize_ast(b) for b in node.branches))
    if isinstance(node, ChoiceNode):
        return ChoiceNode(
            tuple((cond, normalize_ast(b)) for cond, b in node.branches)
        )
    if isinstance(node, IterativeNode):
        return IterativeNode(node.condition, normalize_ast(node.body))
    raise ProcessError(f"cannot normalize node type {type(node).__name__}")


def seq(*nodes: Node | str) -> Node:
    """Build a sequence, accepting bare strings as activity names.

    A single element collapses to itself (no redundant SequenceNode), which
    keeps ASTs in the normal form the structure-recovery algorithm emits.
    """
    resolved = tuple(
        ActivityNode(n) if isinstance(n, str) else n for n in nodes
    )
    if not resolved:
        raise ProcessError("seq() needs at least one element")
    if len(resolved) == 1:
        return resolved[0]
    return SequenceNode(resolved)
