"""Lightweight metric collection for simulations and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Tally", "TimeSeries", "MetricSet"]


@dataclass
class Tally:
    """Streaming count/mean/variance (Welford) of scalar observations."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


@dataclass
class TimeSeries:
    """Timestamped observations, e.g. queue lengths over simulated time."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def observe(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def time_average(self, horizon: float | None = None) -> float:
        """Piecewise-constant time average up to *horizon* (default: last
        observation time)."""
        if not self.times:
            return 0.0
        times = np.asarray(self.times)
        values = np.asarray(self.values)
        end = horizon if horizon is not None else times[-1]
        if end <= times[0]:
            # Zero-length (or pre-first-observation) horizon: no time has
            # accumulated, so the average degenerates to the value in
            # effect at *end* — the last observation at or before it, not
            # unconditionally the first (observations may share one
            # timestamp, e.g. gauges sampled at t=0).
            at_or_before = int(np.searchsorted(times, end, side="right"))
            return float(values[at_or_before - 1]) if at_or_before else float(values[0])
        spans = np.diff(np.append(times, end))
        spans = np.clip(spans, 0.0, None)
        total = float(spans.sum())
        if total == 0.0:
            return float(values[-1])
        return float((values * spans).sum() / total)


class MetricSet:
    """A named bag of tallies and time series."""

    def __init__(self) -> None:
        self.tallies: dict[str, Tally] = {}
        self.series: dict[str, TimeSeries] = {}

    def tally(self, name: str) -> Tally:
        return self.tallies.setdefault(name, Tally())

    def timeseries(self, name: str) -> TimeSeries:
        return self.series.setdefault(name, TimeSeries())

    def observe(self, name: str, value: float) -> None:
        self.tally(name).observe(value)

    def observe_at(self, name: str, time: float, value: float) -> None:
        self.timeseries(name).observe(time, value)

    def as_dict(self) -> dict:
        return {name: tally.as_dict() for name, tally in self.tallies.items()}
